"""repro — a reproduction of Turbine, Facebook's service management
platform for stream processing (Mei et al., ICDE 2020).

The public API is re-exported here; see README.md for a quickstart and
DESIGN.md for the architecture and the experiment index.
"""

from repro.cluster.resources import ResourceVector
from repro.jobs.configs import ConfigLevel, layer_configs
from repro.jobs.model import JobSpec
from repro.obs import Telemetry, TraceEvent, Tracer
from repro.platform import PlatformConfig, Turbine
from repro.types import SLO, Priority

__version__ = "1.1.0"

__all__ = [
    "Turbine",
    "PlatformConfig",
    "JobSpec",
    "ResourceVector",
    "ConfigLevel",
    "layer_configs",
    "SLO",
    "Priority",
    "Tracer",
    "TraceEvent",
    "Telemetry",
    "__version__",
]
