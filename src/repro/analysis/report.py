"""Plain-text tables and series for benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.metrics.aggregate import cdf_points


class Table:
    """A simple fixed-width text table."""

    def __init__(self, headers: Sequence[str]) -> None:
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            "  ".join(
                header.ljust(width)
                for header, width in zip(self.headers, widths)
            ),
            "  ".join("-" * width for width in widths),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def format_series(
    name: str, points: Iterable[Tuple[float, float]], time_unit: str = "h"
) -> str:
    """A ``time value`` listing for one figure series."""
    divisor = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}[time_unit]
    lines = [f"# series: {name} (time in {time_unit})"]
    for t, value in points:
        lines.append(f"{t / divisor:10.3f}  {value:.4f}")
    return "\n".join(lines)


def format_cdf(name: str, values: Sequence[float], points: int = 20) -> str:
    """A down-sampled empirical CDF listing (value, fraction)."""
    cdf = cdf_points(values)
    if not cdf:
        return f"# cdf: {name} (empty)"
    step = max(1, len(cdf) // points)
    sampled = cdf[::step]
    if sampled[-1] != cdf[-1]:
        sampled.append(cdf[-1])
    lines = [f"# cdf: {name}"]
    for value, fraction in sampled:
        lines.append(f"{value:12.4f}  {fraction:.4f}")
    return "\n".join(lines)
