"""Analysis and reporting helpers for experiments.

The benchmark harnesses use these to print the same rows and series the
paper's tables and figures report, as plain text (no plotting dependency).
"""

from repro.analysis.report import Table, format_cdf, format_series

__all__ = ["Table", "format_series", "format_cdf"]
