"""Storm drills — datacenter traffic redirection.

"Facebook periodically practices disaster recovery drills, known as storms,
that involve disconnecting an entire data center from the rest of the
world. During a storm, the traffic from the affected data center is
redirected to other available data centers." (paper section VI-B2). Fig. 9
shows the receiving cluster's traffic rising ~16 % at peak.
"""

from __future__ import annotations

from repro.types import Seconds
from repro.workloads.diurnal import RateFn


class StormSchedule:
    """A rate function that absorbs redirected traffic during a storm.

    During ``[start, end)`` the rate is multiplied by ``1 + surge`` —
    the share of the disconnected datacenter's traffic this cluster
    absorbs (Fig. 9's peak increase is ~0.16).
    """

    def __init__(
        self,
        inner: RateFn,
        start: Seconds,
        end: Seconds,
        surge: float = 0.16,
    ) -> None:
        if end <= start:
            raise ValueError("storm end must be after start")
        if surge < 0:
            raise ValueError("surge must be non-negative")
        self._inner = inner
        self.start = start
        self.end = end
        self.surge = surge

    def active(self, t: Seconds) -> bool:
        """True while the storm is in progress."""
        return self.start <= t < self.end

    def rate(self, t: Seconds) -> float:
        value = self._inner(t)
        if self.active(t):
            value *= 1.0 + self.surge
        return value

    def __call__(self, t: Seconds) -> float:
        return self.rate(t)
