"""The Scuba Tailer fleet model.

Scuba Tailer is "the largest stream processing service managed by Turbine"
(paper section VI). The published workload characteristics the model is
calibrated to:

* Fig. 5a — over 80 % of tasks consume less than one CPU thread; a small
  percentage need over four;
* Fig. 5b — every task consumes at least ~400 MB; over 99 % stay under
  2 GB;
* "For each task, CPU overhead has a near-linear relationship with the
  traffic volume, while memory consumption is proportional to the average
  message size."

Per-job input rates are log-normal (most tables are tiny, a few are huge);
the message-size-driven memory overhead is an independent log-normal. Both
draws come from a seeded stream, so a fleet is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.jobs.model import JobSpec
from repro.sim.rng import SeededRng
from repro.tasks.runtime import BASE_MEMORY_GB, BUFFER_SECONDS
from repro.types import SLO

#: Per-thread max stable processing rate of the tailer binary (MB/s).
#: One saturated thread ≈ one CPU core.
TAILER_RATE_PER_THREAD_MB = 2.0

#: Log-normal parameters for per-job input rate (MB/s): median 0.5,
#: sigma 1.2 ⇒ P(rate < 2 MB/s) ≈ 0.88 (Fig. 5a's ">80 % under one core")
#: and P(rate > 8 MB/s) ≈ 1 % (the ">4 threads" tail).
RATE_LOG_MEDIAN = 0.5
RATE_LOG_SIGMA = 1.2

#: Log-normal parameters for the message-size memory overhead (GB):
#: median 0.1, sigma 1.0 ⇒ total memory ≥ 0.4 GB always, ≈99 % < 2 GB
#: (Fig. 5b).
MEM_LOG_MEDIAN = 0.1
MEM_LOG_SIGMA = 1.0


#: Heaviest per-task rate before a table is split into more tasks. At
#: P = 2 MB/s this corresponds to a ~6-thread task — the right edge of
#: Fig. 5a's CPU axis.
MAX_TASK_RATE_MB = 12.0


@dataclass(frozen=True)
class ScubaJobProfile:
    """One Scuba table's tailer job: its true workload characteristics."""

    job_id: str
    #: Steady-state input rate of the table's category (MB/s).
    base_rate_mb: float
    #: Message-size-driven constant memory per task (GB).
    memory_overhead_gb: float
    #: Tasks the job is provisioned with.
    task_count: int
    #: Threads per task; heavy tables run multi-threaded tasks (the Fig. 5a
    #: tail of tasks needing over four CPU threads) rather than splitting
    #: into many single-thread tasks.
    threads_per_task: int = 1

    # ------------------------------------------------------------------
    # Analytic footprints (Fig. 5)
    # ------------------------------------------------------------------
    @property
    def per_task_rate_mb(self) -> float:
        return self.base_rate_mb / self.task_count

    @property
    def task_cpu_cores(self) -> float:
        """Cores one task burns at steady state (CPU ∝ traffic)."""
        return self.per_task_rate_mb / TAILER_RATE_PER_THREAD_MB

    @property
    def task_memory_gb(self) -> float:
        """Memory one task holds at steady state."""
        return (
            BASE_MEMORY_GB
            + self.memory_overhead_gb
            + self.per_task_rate_mb * BUFFER_SECONDS / 1000.0
        )

    # ------------------------------------------------------------------
    # Conversion to a provisionable spec
    # ------------------------------------------------------------------
    def to_job_spec(
        self,
        reservation_headroom: float = 0.3,
        task_count_limit: int = 32,
    ) -> JobSpec:
        """A :class:`JobSpec` whose reservations cover the true footprint."""
        memory = self.task_memory_gb * (1.0 + reservation_headroom)
        cpu = max(0.1, self.task_cpu_cores * (1.0 + reservation_headroom))
        return JobSpec(
            job_id=self.job_id,
            input_category=f"scuba/{self.job_id.rsplit('/', 1)[-1]}",
            task_count=self.task_count,
            threads_per_task=self.threads_per_task,
            resources_per_task=ResourceVector(
                cpu=round(cpu, 3), memory_gb=round(memory, 3)
            ),
            rate_per_thread_mb=TAILER_RATE_PER_THREAD_MB,
            memory_overhead_gb=round(self.memory_overhead_gb, 3),
            task_count_limit=task_count_limit,
            slo=SLO(max_lag_seconds=90.0),
        )


class ScubaFleet:
    """A reproducible fleet of Scuba tailer jobs."""

    def __init__(self, num_jobs: int, seed: int = 0) -> None:
        if num_jobs <= 0:
            raise ValueError(f"num_jobs must be positive: {num_jobs}")
        self.num_jobs = num_jobs
        self.seed = seed
        self.profiles: List[ScubaJobProfile] = self._generate()

    def _generate(self) -> List[ScubaJobProfile]:
        rng = SeededRng(self.seed).fork("scuba-fleet")
        profiles = []
        for index in range(self.num_jobs):
            rate = RATE_LOG_MEDIAN * math.exp(
                rng.gauss(0.0, RATE_LOG_SIGMA)
            )
            overhead = MEM_LOG_MEDIAN * math.exp(
                rng.gauss(0.0, MEM_LOG_SIGMA)
            )
            # Heavy tables first grow threads within one task (the
            # multi-threaded tail of Fig. 5a); only tables beyond the
            # per-task ceiling are split into more tasks.
            task_count = max(1, math.ceil(rate / MAX_TASK_RATE_MB))
            per_task_rate = rate / task_count
            threads = max(
                1,
                math.ceil(per_task_rate / (TAILER_RATE_PER_THREAD_MB * 0.8)),
            )
            profiles.append(
                ScubaJobProfile(
                    job_id=f"scuba/table-{index:05d}",
                    base_rate_mb=rate,
                    memory_overhead_gb=overhead,
                    task_count=task_count,
                    threads_per_task=threads,
                )
            )
        return profiles

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_rate_mb(self) -> float:
        """Fleet-wide input traffic (MB/s)."""
        return sum(profile.base_rate_mb for profile in self.profiles)

    def total_tasks(self) -> int:
        return sum(profile.task_count for profile in self.profiles)

    def task_footprints(self) -> Tuple[List[float], List[float]]:
        """Per-task ``(cpu_cores, memory_gb)`` samples for the Fig. 5 CDFs."""
        cpus: List[float] = []
        memories: List[float] = []
        for profile in self.profiles:
            cpus.extend([profile.task_cpu_cores] * profile.task_count)
            memories.extend([profile.task_memory_gb] * profile.task_count)
        return cpus, memories

    def job_specs(
        self, task_count_limit: int = 32, reservation_headroom: float = 0.3
    ) -> List[JobSpec]:
        """Provisionable specs for the whole fleet."""
        return [
            profile.to_job_spec(
                reservation_headroom=reservation_headroom,
                task_count_limit=task_count_limit,
            )
            for profile in self.profiles
        ]
