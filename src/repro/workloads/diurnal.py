"""Diurnal traffic patterns and growth trends.

"Most stream processing jobs at Facebook exhibit diurnal load patterns:
while the workload varies during a given day, it is normally similar —
within 1% variation on aggregate — to the workload at the same time in
prior days." (paper section V-C).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.sim.rng import SeededRng
from repro.types import Seconds

DAY: Seconds = 86400.0

#: Rate functions map simulated time to MB/s.
RateFn = Callable[[Seconds], float]


class DiurnalPattern:
    """A smooth daily curve with small deterministic day-over-day noise.

    ``rate(t) = base · (1 + amplitude · sin(2π(t − phase)/day)) · day_noise``

    ``day_noise`` is a per-calendar-day multiplier within ``±daily_variation``
    drawn from a seeded stream, so two runs with the same seed see the same
    traffic and the "same time yesterday" really is within ~1 %.
    """

    def __init__(
        self,
        base_rate_mb: float,
        amplitude: float = 0.3,
        phase: Seconds = 0.0,
        daily_variation: float = 0.01,
        rng: Optional[SeededRng] = None,
    ) -> None:
        if base_rate_mb < 0:
            raise ValueError(f"base rate must be non-negative: {base_rate_mb}")
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1): {amplitude}")
        self.base_rate_mb = base_rate_mb
        self.amplitude = amplitude
        self.phase = phase
        self.daily_variation = daily_variation
        self._rng = rng or SeededRng(0)
        self._day_noise: dict = {}

    def _noise_for_day(self, day: int) -> float:
        if day not in self._day_noise:
            fork = self._rng.fork(f"day-{day}")
            self._day_noise[day] = 1.0 + fork.uniform(
                -self.daily_variation, self.daily_variation
            )
        return self._day_noise[day]

    def rate(self, t: Seconds) -> float:
        """MB/s at simulated time ``t``."""
        curve = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / DAY
        )
        return self.base_rate_mb * curve * self._noise_for_day(int(t // DAY))

    def peak_rate(self) -> float:
        """The deterministic curve maximum (ignoring daily noise)."""
        return self.base_rate_mb * (1.0 + self.amplitude)

    def __call__(self, t: Seconds) -> float:
        return self.rate(t)


class GrowthTrend:
    """Exponential long-term growth layered over another rate function.

    Fig. 1 shows the Scuba Tailer service's traffic doubling over a year;
    ``GrowthTrend(inner, doubling_seconds=365 days)`` reproduces that shape.
    """

    def __init__(self, inner: RateFn, doubling_seconds: Seconds) -> None:
        if doubling_seconds <= 0:
            raise ValueError("doubling period must be positive")
        self._inner = inner
        self.doubling_seconds = doubling_seconds

    def rate(self, t: Seconds) -> float:
        return self._inner(t) * (2.0 ** (t / self.doubling_seconds))

    def __call__(self, t: Seconds) -> float:
        return self.rate(t)


def constant(rate_mb: float) -> RateFn:
    """A flat rate function."""
    if rate_mb < 0:
        raise ValueError(f"rate must be non-negative: {rate_mb}")
    return lambda __: rate_mb


def scaled(inner: RateFn, factor: float) -> RateFn:
    """``inner`` multiplied by a constant factor."""
    return lambda t: inner(t) * factor
