"""Workload generators.

The paper evaluates Turbine on production traffic; these generators produce
the synthetic equivalents each experiment needs:

* :mod:`repro.workloads.diurnal` — daily traffic curves with ~1 %
  day-over-day variation (the pattern analyzer's bread and butter,
  section V-C) plus long-term growth trends (Fig. 1);
* :mod:`repro.workloads.spikes` — transient traffic spikes and input skew
  (Fig. 7's trigger);
* :mod:`repro.workloads.storm` — disaster-drill traffic redirection
  (Fig. 9: +16 % at peak);
* :mod:`repro.workloads.scuba` — a Scuba Tailer fleet whose per-task
  CPU/memory footprints match the published distributions (Fig. 5);
* :mod:`repro.workloads.driver` — the traffic driver that pushes generated
  bytes into Scribe categories on the simulation clock.
"""

from repro.workloads.diurnal import DiurnalPattern, GrowthTrend
from repro.workloads.driver import TrafficDriver
from repro.workloads.scuba import ScubaFleet, ScubaJobProfile
from repro.workloads.spikes import SpikeSchedule, SkewSchedule
from repro.workloads.storm import StormSchedule
from repro.workloads.weekly import WeeklyPattern

__all__ = [
    "DiurnalPattern",
    "GrowthTrend",
    "WeeklyPattern",
    "TrafficDriver",
    "SpikeSchedule",
    "SkewSchedule",
    "StormSchedule",
    "ScubaFleet",
    "ScubaJobProfile",
]
