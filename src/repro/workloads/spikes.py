"""Traffic spikes and input skew.

Fig. 7's instability is "caused by traffic spikes in the input of some
jobs"; imbalanced input (section V-A) is producer skew across partitions.
Both are modelled as time-windowed modifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.types import Seconds
from repro.workloads.diurnal import RateFn


@dataclass(frozen=True)
class Spike:
    """One multiplicative traffic spike over ``[start, end)``."""

    start: Seconds
    end: Seconds
    factor: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("spike end must be after start")
        if self.factor < 0:
            raise ValueError("spike factor must be non-negative")

    def active(self, t: Seconds) -> bool:
        return self.start <= t < self.end


class SpikeSchedule:
    """A rate function with scheduled multiplicative spikes."""

    def __init__(self, inner: RateFn, spikes: Sequence[Spike] = ()) -> None:
        self._inner = inner
        self.spikes: List[Spike] = list(spikes)

    def add(self, start: Seconds, end: Seconds, factor: float) -> None:
        """Schedule another spike."""
        self.spikes.append(Spike(start, end, factor))

    def rate(self, t: Seconds) -> float:
        value = self._inner(t)
        for spike in self.spikes:
            if spike.active(t):
                value *= spike.factor
        return value

    def __call__(self, t: Seconds) -> float:
        return self.rate(t)


class SkewSchedule:
    """Time-windowed partition-weight skew for a category.

    Outside the window the split is uniform; inside it, the supplied
    weights apply. The traffic driver consults :meth:`weights_at` each
    tick and pushes the result into the category.
    """

    def __init__(
        self,
        num_partitions: int,
        skewed_weights: Sequence[float],
        start: Seconds,
        end: Seconds,
    ) -> None:
        if len(skewed_weights) != num_partitions:
            raise ValueError(
                f"need {num_partitions} weights, got {len(skewed_weights)}"
            )
        if end <= start:
            raise ValueError("skew end must be after start")
        self.num_partitions = num_partitions
        self.skewed_weights = list(skewed_weights)
        self.start = start
        self.end = end

    def weights_at(self, t: Seconds) -> Optional[List[float]]:
        """The weights in force at ``t`` (``None`` = uniform)."""
        if self.start <= t < self.end:
            return list(self.skewed_weights)
        return None
