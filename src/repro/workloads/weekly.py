"""Weekly traffic modulation.

Production traffic dips at weekends; the pattern analyzer's 14-day
lookback (rather than, say, 2 days) exists precisely so weekly structure
is part of "the same time in prior days". This wrapper layers a
day-of-week factor over any rate function.
"""

from __future__ import annotations

from typing import Sequence

from repro.types import Seconds
from repro.workloads.diurnal import DAY, RateFn

#: Default factors Monday..Sunday: flat weekdays, a weekend dip.
DEFAULT_WEEK = (1.0, 1.0, 1.0, 1.0, 1.0, 0.7, 0.65)


class WeeklyPattern:
    """A rate function multiplied by a day-of-week factor.

    Day 0 of simulated time is a Monday.
    """

    def __init__(
        self, inner: RateFn, factors: Sequence[float] = DEFAULT_WEEK
    ) -> None:
        if len(factors) != 7:
            raise ValueError(f"need 7 day factors, got {len(factors)}")
        if any(factor < 0 for factor in factors):
            raise ValueError("day factors must be non-negative")
        self._inner = inner
        self.factors = tuple(factors)

    def day_of_week(self, t: Seconds) -> int:
        """0 = Monday … 6 = Sunday."""
        return int(t // DAY) % 7

    def rate(self, t: Seconds) -> float:
        return self._inner(t) * self.factors[self.day_of_week(t)]

    def __call__(self, t: Seconds) -> float:
        return self.rate(t)
