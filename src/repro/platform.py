"""The Turbine platform: wiring of all three layers over the substrate.

This is the top-level façade a user of the library instantiates. It owns:

* the discrete-event engine, the Tupperware cluster, the Scribe bus, and
  the metric store (the substrate);
* Job Management: Job Store, Job Service, State Syncer;
* Task Management: Task Service, Shard Manager, per-container Task
  Managers, job stats collection;
* Resource Management: the Auto Scaler and Capacity Manager (optional —
  the Fig. 8 baseline runs without them).

Typical use::

    turbine = Turbine.create(num_hosts=10, seed=42)
    turbine.provision(JobSpec(job_id="scuba/ads", input_category="ads",
                              task_count=4))
    turbine.scribe.ensure_category("ads", 32)
    turbine.run_for(hours=1)
    print(turbine.job_lag("scuba/ads"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.failures import FailureInjector
from repro.cluster.resources import ResourceVector
from repro.cluster.tupperware import TupperwareCluster
from repro.jobs.model import JobSpec
from repro.jobs.service import JobService
from repro.jobs.store import JobStore
from repro.jobs.syncer import SYNC_INTERVAL, StateSyncer
from repro.metrics.store import MetricStore
from repro.obs.telemetry import EngineInstrumentation, Telemetry
from repro.obs.trace import Tracer
from repro.scribe.bus import ScribeBus
from repro.sim.engine import Engine
from repro.tasks.actuator import TurbineActuator
from repro.tasks.manager import (
    CONNECTION_TIMEOUT,
    HEARTBEAT_INTERVAL,
    LOAD_REPORT_INTERVAL,
    REFRESH_INTERVAL,
    STEP_INTERVAL,
    TaskManager,
)
from repro.tasks.service import CACHE_TTL, TaskService
from repro.tasks.shard import DEFAULT_NUM_SHARDS
from repro.tasks.shard_manager import (
    FAILOVER_INTERVAL,
    REBALANCE_INTERVAL,
    ShardManager,
)
from repro.tasks.stats import COLLECT_INTERVAL, JobStatsCollector
from repro.types import JobId, Seconds, TaskState


@dataclass
class PlatformConfig:
    """Tunable intervals and sizes for a Turbine deployment.

    Defaults match the paper's production values; long-horizon benchmarks
    scale them up (coarser data-plane steps) to keep runs fast.
    """

    num_shards: int = DEFAULT_NUM_SHARDS
    containers_per_host: int = 4
    container_capacity: Optional[ResourceVector] = None
    sync_interval: Seconds = SYNC_INTERVAL
    cache_ttl: Seconds = CACHE_TTL
    refresh_interval: Seconds = REFRESH_INTERVAL
    heartbeat_interval: Seconds = HEARTBEAT_INTERVAL
    connection_timeout: Seconds = CONNECTION_TIMEOUT
    failover_interval: Seconds = FAILOVER_INTERVAL
    rebalance_interval: Seconds = REBALANCE_INTERVAL
    step_interval: Seconds = STEP_INTERVAL
    load_report_interval: Seconds = LOAD_REPORT_INTERVAL
    stats_interval: Seconds = COLLECT_INTERVAL
    record_task_metrics: bool = False
    #: Streaming metrics engine (incremental window aggregates, rollup
    #: tiers). Reads are byte-identical either way; the toggle exists for
    #: the golden on/off determinism suite and A/B benchmarks.
    metrics_streaming: bool = True
    #: Partition count for the sharded parallel substrate
    #: (:meth:`Turbine.parallel_substrate`). 1 is the single event loop;
    #: N > 1 slices the fleet by the MD5 shard mapping into N engines
    #: whose merged exports stay byte-identical to the single loop.
    parallel_partitions: int = 1
    #: Parallel data plane for the *full platform* (not just the
    #: substrate): ``None`` keeps the legacy per-manager step timers;
    #: N >= 1 moves stepping onto one plane tick that fans per-task
    #: planning out over N partition slices (see
    #: :mod:`repro.sim.parallel.plane`). Exports are byte-identical at
    #: every N (the goldens compare 1 vs 4).
    data_plane_partitions: Optional[int] = None
    #: Fork worker processes for the plane's remote slices (otherwise
    #: the slices run in-process — same mirror code, no fork).
    data_plane_processes: bool = False
    #: Plane ticks measured before the load-aware LPT replan.
    data_plane_warmup_ticks: int = 30
    #: Data-plane resiliency toggles (all off by default — with every
    #: toggle off the platform is byte-identical to one built before
    #: these features existed; the transparency suite asserts it).
    durable_checkpoints: bool = False
    checkpoint_interval: Seconds = 30.0
    checkpoint_retention: int = 16
    hot_standby: bool = False
    slow_node_detection: bool = False


class Turbine:
    """A fully wired Turbine deployment over a simulated cluster."""

    def __init__(
        self,
        engine: Engine,
        cluster: TupperwareCluster,
        config: Optional[PlatformConfig] = None,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.config = config or PlatformConfig()
        self.scribe = ScribeBus()
        self.metrics = MetricStore(streaming=self.config.metrics_streaming)
        self.failures = FailureInjector(engine, cluster)

        # --- Observability (off by default; see enable_tracing) -------
        self.tracer = Tracer(clock=lambda: engine.now)
        self.telemetry = Telemetry(enabled=False)
        self.metrics.set_telemetry(self.telemetry)

        # --- Job Management -------------------------------------------
        self.job_store = JobStore()
        self.job_service = JobService(self.job_store, tracer=self.tracer)

        # --- Task Management ------------------------------------------
        self.task_service = TaskService(engine, cache_ttl=self.config.cache_ttl)
        self.shard_manager = ShardManager(
            engine,
            num_shards=self.config.num_shards,
            failover_interval=self.config.failover_interval,
            rebalance_interval=self.config.rebalance_interval,
            tracer=self.tracer,
            telemetry=self.telemetry,
        )
        self.actuator = TurbineActuator(
            self.task_service, self.shard_manager, self.scribe,
            tracer=self.tracer,
        )
        self.syncer = StateSyncer(
            self.job_store, self.actuator, engine=engine,
            interval=self.config.sync_interval,
            tracer=self.tracer, telemetry=self.telemetry,
        )
        self.task_managers: Dict[str, TaskManager] = {}
        self.stats = JobStatsCollector(
            engine, self.task_service, self.shard_manager, self.scribe,
            self.metrics, interval=self.config.stats_interval,
        )
        #: Filled in by :meth:`attach_scaler` / :meth:`attach_capacity_manager`
        #: / :meth:`attach_health_reporter` / :meth:`attach_chaos` /
        #: :meth:`attach_slo` / :meth:`attach_replication`.
        self.scaler = None
        self.capacity_manager = None
        self.health = None
        self.chaos = None
        self.sli = None
        self.slo = None
        self.replication = None
        #: Data-plane resiliency planes (see :meth:`attach_checkpoints`,
        #: :meth:`attach_standby`, :meth:`attach_slow_node_detector`).
        self.checkpoint_plane = None
        self.standby = None
        self.slow_nodes = None
        #: Parallel data plane (see :meth:`attach_data_plane`).
        self.data_plane = None
        self._started = False
        cluster.on_host_failure.append(self._on_host_failure)

    # ------------------------------------------------------------------
    # Resource Management attachment
    # ------------------------------------------------------------------
    def attach_scaler(self, scaler_config=None):
        """Attach the proactive Auto Scaler (optional third layer).

        Imported lazily so deployments without auto scaling (the Fig. 8
        baseline cluster) never construct scaler state.
        """
        from repro.scaler.proactive import AutoScaler, AutoScalerConfig

        if scaler_config is None:
            scaler_config = AutoScalerConfig(
                container_capacity=self.config.container_capacity
                if self.config.container_capacity is not None
                else AutoScalerConfig().container_capacity
            )
        self.scaler = AutoScaler(
            self.engine, self.job_service, self.metrics, self.scribe,
            config=scaler_config, tracer=self.tracer,
        )
        if self._started:
            self.scaler.start()
        return self.scaler

    def attach_health_reporter(self, thresholds=None, interval=300.0):
        """Attach the operations health reporter (paper section VII)."""
        from repro.ops.health import HealthReporter

        self.health = HealthReporter(
            self.engine, self.job_service, self.task_service,
            self.shard_manager, self.metrics,
            thresholds=thresholds, interval=interval,
            sli=self._sli_evaluator(),
        )
        if self._started:
            self.health.start()
        return self.health

    def _sli_evaluator(self):
        """The one shared SLI evaluator (health + SLO plane agree)."""
        if self.sli is None:
            from repro.obs.sli import SliEvaluator

            self.sli = SliEvaluator(self.job_service, self.metrics)
        return self.sli

    def attach_slo(self, specs=None, rules=None, interval=60.0):
        """Attach the SLO plane: SLI judgements, error budgets, alerts.

        Evaluation is passive (reads metrics, writes its own private
        bookkeeping store) so attaching it never perturbs the
        simulation; like the other optional subsystems it is imported
        lazily and started with the platform.
        """
        from repro.obs.slo import DEFAULT_BURN_RULES, SloTracker

        self.slo = SloTracker(
            self.engine, self._sli_evaluator(),
            specs=specs,
            rules=rules if rules is not None else DEFAULT_BURN_RULES,
            interval=interval,
            telemetry=self.telemetry,
            streaming=self.config.metrics_streaming,
        )
        if self._started:
            self.slo.start()
        return self.slo

    def attach_chaos(self):
        """Attach the deterministic control-plane chaos engine.

        Imported lazily like the other optional subsystems; scenarios are
        scheduled with :meth:`repro.chaos.ChaosEngine.schedule`.
        """
        from repro.chaos import ChaosEngine

        self.chaos = ChaosEngine(self)
        return self.chaos

    def attach_replication(
        self,
        replicas=None,
        heartbeat_interval=None,
        lease_timeout=None,
        catchup_interval=None,
        log_retention=None,
    ):
        """Attach Job Store state-machine replication over Scribe.

        Mutations of the Job Store endpoint are serialized onto a
        dedicated Scribe command log and applied in log order by shadow
        replicas; a sim-time lease elects the leader and a follower is
        promoted in place on leader loss. Fault-free behavior is
        byte-identical to an unreplicated platform (the golden
        transparency suite in tests/integration proves it).
        """
        from repro.replication import (
            CATCHUP_INTERVAL,
            DEFAULT_REPLICAS,
            HEARTBEAT_INTERVAL as REPL_HEARTBEAT_INTERVAL,
            LEASE_TIMEOUT,
            ReplicationGroup,
        )

        self.replication = ReplicationGroup(
            self.engine,
            self.job_store,
            self.scribe,
            replicas=replicas if replicas is not None else DEFAULT_REPLICAS,
            heartbeat_interval=heartbeat_interval
            if heartbeat_interval is not None
            else REPL_HEARTBEAT_INTERVAL,
            lease_timeout=lease_timeout
            if lease_timeout is not None
            else LEASE_TIMEOUT,
            catchup_interval=catchup_interval
            if catchup_interval is not None
            else CATCHUP_INTERVAL,
            log_retention=log_retention,
            telemetry=self.telemetry,
        )
        if self._started:
            self.replication.start()
        return self.replication

    def attach_checkpoints(self, interval=None, retention=None):
        """Attach the durable checkpoint plane (Scribe-backed snapshots).

        Periodically snapshots every job's committed offsets into a
        per-job command log and rolls the live cursors forward when they
        regress (a cursor wipe, or a task restarting from scratch).
        Fault-free behavior is byte-identical to a platform without it.
        """
        from repro.tasks.checkpoint import (
            CHECKPOINT_INTERVAL,
            CHECKPOINT_RETENTION,
            CheckpointPlane,
        )

        if interval is None:
            interval = (
                self.config.checkpoint_interval
                if self.config.checkpoint_interval is not None
                else CHECKPOINT_INTERVAL
            )
        if retention is None:
            retention = (
                self.config.checkpoint_retention
                if self.config.checkpoint_retention is not None
                else CHECKPOINT_RETENTION
            )
        self.checkpoint_plane = CheckpointPlane(
            self.engine, self.scribe, self.task_service,
            interval=interval, retention=retention,
            telemetry=self.telemetry,
        )
        for manager in self.task_managers.values():
            manager.checkpoint_plane = self.checkpoint_plane
        if self._started:
            self.checkpoint_plane.start()
        return self.checkpoint_plane

    def attach_standby(self, interval=None):
        """Attach the hot-standby plane (passive replicas, fast takeover).

        Only jobs provisioned with ``hot_standby=True`` get replicas; a
        platform with the plane attached but no opted-in jobs behaves
        byte-identically to one without the plane.
        """
        from repro.tasks.standby import STANDBY_INTERVAL, StandbyPlane

        self.standby = StandbyPlane(
            self.engine, self,
            interval=interval if interval is not None else STANDBY_INTERVAL,
            telemetry=self.telemetry,
        )
        for manager in self.task_managers.values():
            manager.standby_plane = self.standby
        if self._started:
            self.standby.start()
        return self.standby

    def attach_slow_node_detector(self, **kwargs):
        """Attach the gray-failure (slow-node) detector.

        Compares per-task rates against the job median and drains
        containers that stay persistently slow; see
        :mod:`repro.tasks.slow_node` for thresholds.
        """
        from repro.tasks.slow_node import SlowNodeDetector

        self.slow_nodes = SlowNodeDetector(
            self.engine, self, telemetry=self.telemetry, **kwargs
        )
        if self._started:
            self.slow_nodes.start()
        return self.slow_nodes

    def attach_data_plane(
        self, partitions=None, use_processes=None, warmup_ticks=None,
    ):
        """Attach the parallel data plane (platform-wide step fan-out).

        Every Task Manager's per-container step timer is replaced by the
        plane's single tick, which routes per-task step *planning* to
        partition slices (optionally fork workers) and applies every
        plan centrally in canonical order — exports stay byte-identical
        at any partition count. Must be attached before :meth:`start`
        spawns the managers (config-driven attachment does this).
        """
        from repro.sim.parallel.plane import PlatformDataPlane

        if self._started:
            raise RuntimeError(
                "attach_data_plane must be called before start() — "
                "managers arm their own step timers otherwise"
            )
        self.data_plane = PlatformDataPlane(
            self,
            partitions=(
                partitions if partitions is not None
                else self.config.data_plane_partitions or 1
            ),
            use_processes=(
                use_processes if use_processes is not None
                else self.config.data_plane_processes
            ),
            warmup_ticks=(
                warmup_ticks if warmup_ticks is not None
                else self.config.data_plane_warmup_ticks
            ),
        )
        return self.data_plane

    def attach_capacity_manager(self, capacity_config=None):
        """Attach the Capacity Manager (requires an attached scaler)."""
        from repro.scaler.capacity import CapacityManager

        if self.scaler is None:
            raise RuntimeError("attach_scaler must be called first")
        self.capacity_manager = CapacityManager(
            self.engine, self.cluster, self.job_service, self.scaler,
            self.actuator, config=capacity_config,
        )
        if self._started:
            self.capacity_manager.start()
        return self.capacity_manager

    def parallel_substrate(self, spec=None, use_processes: bool = False):
        """Run a fleet on the sharded parallel substrate.

        ``spec`` is a :class:`~repro.sim.parallel.FleetSpec`; when omitted
        one is derived from the deployment's running jobs (task counts and
        per-job resources become the fleet's jobs) with the deployment's
        shard count and seed-keyed workload parameters. The partition
        count comes from :attr:`PlatformConfig.parallel_partitions`, and
        the merged exports are byte-identical for every value of it (see
        ``repro.sim.parallel``). Returns a
        :class:`~repro.sim.parallel.ParallelResult`.
        """
        from repro.sim.parallel import run_fleet, standard_fleet

        if spec is None:
            from repro.jobs.model import KEY_TASK_COUNT

            job_ids = self.job_store.job_ids()
            total_tasks = sum(
                int(self.job_store.merged_expected(job_id).get(
                    KEY_TASK_COUNT, 1
                ))
                for job_id in job_ids
            )
            spec = standard_fleet(
                seed=self.engine.rng.seed,
                total_tasks=max(total_tasks, len(job_ids) or 1),
                num_jobs=max(len(job_ids), 1),
                num_shards=self.config.num_shards,
            )
        return run_fleet(
            spec,
            partitions=self.config.parallel_partitions,
            use_processes=use_processes,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        num_hosts: int,
        seed: int = 0,
        config: Optional[PlatformConfig] = None,
        host_capacity: Optional[ResourceVector] = None,
    ) -> "Turbine":
        """Build a deployment with ``num_hosts`` identical hosts."""
        engine = Engine(seed=seed)
        cluster = TupperwareCluster()
        for index in range(num_hosts):
            cluster.add_host(f"host-{index}", host_capacity)
        return cls(engine, cluster, config)

    def start(self) -> None:
        """Allocate containers, start every service, place all shards."""
        if self._started:
            return
        # Config-driven resiliency planes attach before the managers
        # spawn, so every manager is wired to them from the first task.
        if self.config.durable_checkpoints and self.checkpoint_plane is None:
            self.attach_checkpoints()
        if self.config.hot_standby and self.standby is None:
            self.attach_standby()
        if self.config.slow_node_detection and self.slow_nodes is None:
            self.attach_slow_node_detector()
        if (
            self.config.data_plane_partitions is not None
            and self.data_plane is None
        ):
            self.attach_data_plane()
        self._started = True
        containers = self.cluster.allocate_fleet(
            self.config.containers_per_host, self.config.container_capacity
        )
        for container in containers:
            self._spawn_manager(container)
        self.shard_manager.initial_placement()
        self.shard_manager.start()
        self.syncer.start()
        self.stats.start()
        if self.scaler is not None:
            self.scaler.start()
        if self.capacity_manager is not None:
            self.capacity_manager.start()
        if self.health is not None:
            self.health.start()
        if self.slo is not None:
            self.slo.start()
        if self.replication is not None:
            self.replication.start()
        if self.checkpoint_plane is not None:
            self.checkpoint_plane.start()
        if self.standby is not None:
            self.standby.start()
        if self.slow_nodes is not None:
            self.slow_nodes.start()
        if self.data_plane is not None:
            self.data_plane.start()

    def _spawn_manager(self, container) -> TaskManager:
        manager = TaskManager(
            self.engine,
            container,
            self.task_service,
            self.shard_manager,
            self.scribe,
            metrics=self.metrics,
            refresh_interval=self.config.refresh_interval,
            heartbeat_interval=self.config.heartbeat_interval,
            connection_timeout=self.config.connection_timeout,
            step_interval=self.config.step_interval,
            load_report_interval=self.config.load_report_interval,
            record_task_metrics=self.config.record_task_metrics,
            tracer=self.tracer,
            telemetry=self.telemetry,
        )
        manager.standby_plane = self.standby
        manager.checkpoint_plane = self.checkpoint_plane
        manager.data_plane = self.data_plane
        self.task_managers[container.container_id] = manager
        manager.start()
        return manager

    # ------------------------------------------------------------------
    # Host lifecycle
    # ------------------------------------------------------------------
    def _on_host_failure(self, host_id: str) -> None:
        """Drop Task Manager objects whose containers died with the host.

        The Shard Manager discovers the loss through missing heartbeats
        (it is not told directly — that is the point of the protocol).
        """
        dead = [
            container_id
            for container_id, manager in self.task_managers.items()
            if not manager.alive
        ]
        for container_id in dead:
            manager = self.task_managers.pop(container_id)
            manager.shutdown()

    def add_host(self, host_id: str) -> None:
        """Hot-add a host: allocate containers and managers on it.

        "The procedure to add or remove hosts is fully automated"
        (paper section V-F).
        """
        self.cluster.add_host(host_id)
        for __ in range(self.config.containers_per_host):
            container = self.cluster.allocate_container(
                self.config.container_capacity, host_id=host_id
            )
            self._spawn_manager(container)

    def recover_host(self, host_id: str) -> None:
        """Bring a failed host back and repopulate its containers."""
        self.cluster.recover_host(host_id)
        for __ in range(self.config.containers_per_host):
            container = self.cluster.allocate_container(
                self.config.container_capacity, host_id=host_id
            )
            self._spawn_manager(container)

    # ------------------------------------------------------------------
    # Job operations
    # ------------------------------------------------------------------
    def provision(self, spec: JobSpec, partitions: Optional[int] = None) -> None:
        """Provision a job and make sure its input category exists."""
        if partitions is None:
            partitions = max(spec.task_count_limit, spec.task_count)
        self.scribe.ensure_category(spec.input_category, partitions)
        self.job_service.provision(spec)

    def deprovision(self, job_id: JobId) -> None:
        """Tear a job down completely: tasks, specs, checkpoints, metrics.

        The input category is left in place — other jobs may read it, and
        Scribe data is persistent by design.
        """
        self.actuator.stop_tasks(job_id)
        self.job_service.deprovision(job_id)
        self.scribe.checkpoints.drop_job(job_id)
        if self.data_plane is not None:
            # Worker mirrors still hold the dropped job's offsets.
            self.data_plane.mark_job_dirty(job_id)
        self.metrics.drop_entity(job_id)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_for(
        self, seconds: float = 0.0, minutes: float = 0.0, hours: float = 0.0,
        days: float = 0.0,
    ) -> None:
        """Advance the simulation by the given amount of time."""
        duration = seconds + minutes * 60 + hours * 3600 + days * 86400
        self.engine.run_for(duration)

    @property
    def now(self) -> Seconds:
        return self.engine.now

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def enable_tracing(self) -> Tracer:
        """Turn on causal decision traces across every layer.

        The tracer is threaded through all services at construction, so
        this only flips the enabled bit — recording starts immediately and
        the simulation itself is unaffected (tracing draws no randomness
        and schedules no events).
        """
        self.tracer.enable()
        return self.tracer

    def enable_instrumentation(self) -> Telemetry:
        """Turn on control-plane telemetry, including the per-event
        engine hook (timer firing stats and callback wall-clock cost)."""
        self.telemetry.enabled = True
        if self.engine.instrumentation is None:
            self.engine.instrumentation = EngineInstrumentation(self.telemetry)
        return self.telemetry

    def running_tasks(self) -> List[str]:
        """Every task currently running, across all live managers."""
        return sorted(
            task_id
            for manager in self.task_managers.values()
            if manager.alive
            for task_id in manager.running_task_ids()
        )

    def running_task_count(self) -> int:
        return sum(
            len(manager.running_task_ids())
            for manager in self.task_managers.values()
            if manager.alive
        )

    def tasks_of_job(self, job_id: JobId) -> List[str]:
        """Running task ids of one job (promoted standbys included)."""
        running = {
            task.spec.task_id
            for manager in self.task_managers.values()
            if manager.alive
            for task in list(manager.tasks.values())
            + list(manager.standbys.values())
            if task.spec.job_id == job_id and task.state == TaskState.RUNNING
        }
        return sorted(running)

    def job_lag_mb(self, job_id: JobId) -> float:
        """Unprocessed bytes (MB) in the job's input category.

        Reads the category from the job's expected configuration (not its
        task specs) so a stopped job still reports its growing backlog.
        """
        config = self.job_service.expected_config(job_id)
        category_name = config.get("input", {}).get("category", "")
        if not category_name or category_name not in self.scribe.categories:
            return 0.0
        category = self.scribe.get_category(category_name)
        checkpoints = self.scribe.checkpoints
        return sum(
            partition.available(checkpoints.get(job_id, partition.partition_id))
            for partition in category.partitions
        )

    def host_utilization(self) -> Dict[str, Dict[str, float]]:
        """Per-host CPU and memory utilization from live task usage."""
        usage: Dict[str, Dict[str, float]] = {}
        for manager in self.task_managers.values():
            if not manager.alive or manager.container.host_id is None:
                continue
            host_id = manager.container.host_id
            host = self.cluster.hosts.get(host_id)
            if host is None or not host.alive:
                continue
            entry = usage.setdefault(
                host_id, {"cpu": 0.0, "memory_gb": 0.0, "tasks": 0.0}
            )
            for task in manager.tasks.values():
                if task.state != TaskState.RUNNING:
                    continue
                entry["cpu"] += task.last_cpu_used
                entry["memory_gb"] += task.memory_needed_gb()
                entry["tasks"] += 1
        for host_id, entry in usage.items():
            capacity = self.cluster.hosts[host_id].capacity
            entry["cpu_util"] = entry["cpu"] / capacity.cpu if capacity.cpu else 0.0
            entry["mem_util"] = (
                entry["memory_gb"] / capacity.memory_gb
                if capacity.memory_gb else 0.0
            )
        return usage

    def __repr__(self) -> str:
        return (
            f"Turbine(hosts={len(self.cluster.hosts)}, "
            f"jobs={len(self.job_store.job_ids())}, "
            f"tasks={self.running_task_count()})"
        )
