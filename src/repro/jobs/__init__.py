"""Job Management layer — *what to run*.

Implements the paper's section III: the Job Store with its hierarchical
expected-configuration tables (Table I), the Algorithm 1 JSON merge, the
Job Service's versioned read-modify-write updates, and the State Syncer
that drives running state toward expected state with ACIDF guarantees
(atomic, consistent, isolated, durable, fault-tolerant).
"""

from repro.jobs.configs import (
    ConfigLevel,
    layer_configs,
    merge_levels,
    validate_config,
)
from repro.jobs.model import JobSpec
from repro.jobs.plan import Action, ExecutionPlan, TaskActuator
from repro.jobs.service import JobService
from repro.jobs.store import ChangeCursor, JobStore, VersionedConfig
from repro.jobs.syncer import StateSyncer, SyncReport

__all__ = [
    "ChangeCursor",
    "ConfigLevel",
    "layer_configs",
    "merge_levels",
    "validate_config",
    "JobSpec",
    "JobStore",
    "VersionedConfig",
    "JobService",
    "Action",
    "ExecutionPlan",
    "TaskActuator",
    "StateSyncer",
    "SyncReport",
]
