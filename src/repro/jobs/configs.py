"""Hierarchical job configurations and the Algorithm 1 merge.

"Turbine organizes job configurations in a hierarchical structure ...
Multiple configurations can be layered over each other, by merging the JSON
configuration. We then employ a general JSON merging algorithm, that
recursively traverses nested JSON structure while overriding values of the
bottom layer with the top layer of configuration." (paper section III-A).

The four levels and their precedence are given in Table I: Base <
Provisioner < Scaler < Oncall. The oncall layer always wins so human
mitigation is never overwritten by a broken automation service.
"""

from __future__ import annotations

import enum
import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import JobStoreError

#: A job configuration: a JSON-style nested dict.
Config = Dict[str, Any]


class ConfigLevel(enum.IntEnum):
    """Expected-configuration levels, lowest precedence first (Table I)."""

    BASE = 0
    PROVISIONER = 1
    SCALER = 2
    ONCALL = 3

    @classmethod
    def in_precedence_order(cls) -> "list[ConfigLevel]":
        """Levels from lowest to highest precedence."""
        return sorted(cls)


#: Config keys whose change requires a multi-phase ("complex")
#: synchronization rather than a plain copy. Changing parallelism involves
#: stopping tasks and redistributing checkpoints (paper section III-B).
COMPLEX_KEYS = frozenset({"task_count"})


def validate_config(config: Mapping[str, Any]) -> None:
    """Reject configurations that are not JSON-representable.

    The paper uses Thrift for compile-time type checking and then converts
    to JSON; in Python the equivalent guard is a round-trip check plus a
    string-key requirement on every nesting level.
    """
    _require_string_keys(config, path="")
    try:
        json.dumps(config)
    except (TypeError, ValueError) as exc:
        raise JobStoreError(f"config is not JSON-serializable: {exc}") from exc


def _require_string_keys(node: Any, path: str) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            if not isinstance(key, str):
                raise JobStoreError(
                    f"non-string key {key!r} at config path {path or '<root>'}"
                )
            _require_string_keys(value, f"{path}.{key}" if path else key)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            _require_string_keys(value, f"{path}[{index}]")


def layer_configs(bottom_config: Config, top_config: Config) -> Config:
    """Merge two configs, the top layer overriding the bottom (Algorithm 1).

    Nested maps merge recursively; any other value type (including lists)
    replaces the bottom value wholesale. Inputs are never mutated.
    """
    layered_config = dict(bottom_config)
    for key, top_value in top_config.items():
        bottom_value = bottom_config.get(key)
        if isinstance(top_value, dict) and isinstance(bottom_value, dict):
            layered_config[key] = layer_configs(bottom_value, top_value)
        else:
            layered_config[key] = _copy_value(top_value)
    return layered_config


def _copy_value(value: Any) -> Any:
    """Deep-copy JSON values so layers never alias each other's state."""
    if isinstance(value, dict):
        return {key: _copy_value(inner) for key, inner in value.items()}
    if isinstance(value, list):
        return [_copy_value(inner) for inner in value]
    return value


def merge_levels(levels: Mapping[ConfigLevel, Optional[Config]]) -> Config:
    """Merge all expected-config levels according to precedence.

    Missing levels are skipped. The result "provides a consistent view of
    expected job states" (paper section III-A).
    """
    merged: Config = {}
    for level in ConfigLevel.in_precedence_order():
        config = levels.get(level)
        if config:
            merged = layer_configs(merged, config)
    return merged


def config_diff(running: Config, expected: Config) -> Dict[str, Any]:
    """Top-level keys whose expected value differs from the running value.

    Returns ``{key: expected_value}`` for each difference, including keys
    missing from the running config. Keys present only in the running config
    map to ``None`` (they must be unset).
    """
    diff: Dict[str, Any] = {}
    for key, expected_value in expected.items():
        if running.get(key) != expected_value:
            diff[key] = expected_value
    for key in running:
        if key not in expected:
            diff[key] = None
    return diff


def requires_complex_sync(diff: Mapping[str, Any]) -> bool:
    """True when the diff touches a key that needs multi-phase coordination."""
    return any(key in COMPLEX_KEYS for key in diff)
