"""The State Syncer.

"The State Syncer performs synchronization between the expected and running
job configurations every 30 seconds. In each round for every job, it merges
all levels of the expected configurations according to their precedence,
compares the result with the running job configurations, generates an
Execution Plan if any difference is detected, and carries out the plan."
(paper section III-B).

ACIDF properties and where they live here:

* **Atomicity** — :meth:`_sync_job` commits the running config only after
  the whole plan executed.
* **Consistency** — the expected view is the precedence merge, and writers
  went through the Job Service's CAS.
* **Isolation** — one plan per job per round; complex syncs serialize a
  job's structural changes.
* **Durability** — committed running configs survive syncer crashes
  (the store outlives the syncer; see the crash tests).
* **Fault-tolerance** — a failed plan is aborted and retried next round;
  after ``quarantine_after`` consecutive failures the job is quarantined
  and an alert is raised for the oncall.

Incremental synchronization
---------------------------

Rescanning tens of thousands of converged jobs every 30 seconds is the
control plane's hottest path, and almost all of that work is wasted: in a
quiescent fleet nothing changed since the last round. The syncer therefore
maintains a *dirty set* via the Job Store's change feed
(:meth:`~repro.jobs.store.JobStore.change_cursor`) and examines only jobs
whose expected config, running config, lifecycle state, or torn-plan flag
changed — plus its own retry backlog (failed plans re-enter the dirty set
through ``mark_dirty``; orphaned deletions are kept in a retry set).

A periodic **full scan** (every ``full_scan_interval`` rounds) remains as
a safety net against any mutation path the feed might miss, mirroring the
production pattern of pairing deltas with periodic anti-entropy sweeps.
Correctness does not depend on the net: the change feed is complete by
construction, and the equivalence property tests in
``tests/jobs/test_incremental_equivalence.py`` drive both modes through
random chaos and require identical outcomes. Determinism is preserved:
an incremental round examines the sorted dirty set, so the jobs that
produce plans are visited in exactly the order a full scan would visit
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.errors import DegradedModeError, SyncError
from repro.jobs.configs import config_diff
from repro.jobs.plan import ExecutionPlan, TaskActuator, build_plan
from repro.jobs.store import ChangeCursor, JobStore
from repro.obs.bounded import BoundedList
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    SLOT_CONFIG,
    SLOT_SYNC,
    TraceEvent,
    Tracer,
)
from repro.resilience import CircuitBreaker, Dependency, RetryPolicy
from repro.sim.engine import Engine, Timer
from repro.types import JobId, JobState, Seconds

#: "The State Syncer performs synchronization ... every 30 seconds."
SYNC_INTERVAL: Seconds = 30.0

#: Consecutive failures before a job is quarantined ("If it fails for
#: multiple times, the State Syncer quarantines the job and creates an
#: alert for the oncall to investigate").
DEFAULT_QUARANTINE_AFTER = 3

#: Retained :class:`SyncReport` history (a week of 30-second rounds); the
#: syncer runs forever in soak tests, so the audit trail must be bounded.
DEFAULT_ROUND_RETENTION = 20_160

#: Incremental rounds between anti-entropy full scans (the safety net).
#: At the default 30-second sync interval this is one full fleet rescan
#: every ten minutes.
DEFAULT_FULL_SCAN_INTERVAL = 20


@dataclass
class SyncReport:
    """What one synchronization round did (for tests and dashboards)."""

    time: Seconds
    simple_synced: List[JobId] = field(default_factory=list)
    complex_synced: List[JobId] = field(default_factory=list)
    failed: List[JobId] = field(default_factory=list)
    quarantined: List[JobId] = field(default_factory=list)
    #: Whether this round rescanned the whole fleet (False = dirty-set only).
    full_scan: bool = True
    #: True when the round did nothing because the Job Store was
    #: unavailable (the syncer runs on last-known-good running state and
    #: retries next round).
    skipped: bool = False
    #: How many live jobs the round examined (dirty-set size for
    #: incremental rounds, fleet size for full scans).
    examined: int = 0

    @property
    def total_synced(self) -> int:
        return len(self.simple_synced) + len(self.complex_synced)


class StateSyncer:
    """Drives running configs toward expected configs, ACIDF-style."""

    def __init__(
        self,
        store: JobStore,
        actuator: TaskActuator,
        engine: Optional[Engine] = None,
        interval: Seconds = SYNC_INTERVAL,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        tracer: Optional[Tracer] = None,
        telemetry: Optional[Telemetry] = None,
        round_retention: int = DEFAULT_ROUND_RETENTION,
        incremental: bool = True,
        full_scan_interval: int = DEFAULT_FULL_SCAN_INTERVAL,
    ) -> None:
        self._store = store
        self._actuator = actuator
        self._engine = engine
        self._interval = interval
        self._quarantine_after = quarantine_after
        self._tracer = tracer or NULL_TRACER
        self._telemetry = telemetry or NULL_TELEMETRY
        self._failure_counts: Dict[JobId, int] = {}
        self._timer: Optional[Timer] = None
        if full_scan_interval < 1:
            raise SyncError(
                f"full_scan_interval must be >= 1: {full_scan_interval}"
            )
        self._incremental = incremental
        self._full_scan_interval = full_scan_interval
        # Start saturated so the very first round is a full scan: it
        # sweeps cluster orphans that predate this syncer (and its
        # cursor), which no change feed can know about.
        self._rounds_since_full = full_scan_interval
        #: Dirty-set source; None when running in full-scan-only mode.
        self._cursor: Optional[ChangeCursor] = (
            store.change_cursor() if incremental else None
        )
        #: Deleted jobs whose cluster-side GC failed and must be retried.
        self._orphan_retry: set = set()
        self.rounds: List[SyncReport] = BoundedList(maxlen=round_retention)
        #: Oncall alerts raised on quarantine, as ``(time, job_id, reason)``.
        self.alerts: List[tuple] = []
        #: Callbacks invoked with (job_id, reason) when a job is quarantined.
        self.on_quarantine: List[Callable[[JobId, str], None]] = []
        #: Resilience edges. The store edge carries a breaker whose reset
        #: timeout equals the sync interval, so every round is a probe and
        #: recovery is detected with no extra latency; the actuator edge
        #: is count-and-classify only — a failed plan already has
        #: retry-next-round semantics, and auto-retrying inside a round
        #: would change the quarantine accounting.
        self._store_dep = Dependency(
            "syncer.job-store",
            clock=lambda: self.now,
            telemetry=self._telemetry,
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=interval),
        )
        self._actuator_dep = Dependency(
            "syncer.actuator",
            clock=lambda: self.now,
            telemetry=self._telemetry,
            retry=RetryPolicy(max_attempts=1, retry_on=()),
        )

    # ------------------------------------------------------------------
    # Periodic operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic 30-second synchronization timer."""
        if self._engine is None:
            raise SyncError("cannot start a syncer without an engine")
        if self._timer is not None:
            return
        self._timer = self._engine.every(
            self._interval, self.sync_once, name="state-syncer"
        )

    def stop(self) -> None:
        """Stop the periodic timer (simulates a syncer crash)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def crash(self) -> None:
        """Simulate a hard crash: the process dies with all in-memory
        state — the dirty-set cursor, consecutive-failure counts, and the
        orphan retry set. Durable state (the Job Store) is untouched.
        """
        self.stop()
        if self._cursor is not None:
            self._cursor.close()
            self._cursor = None
        self._failure_counts.clear()
        self._orphan_retry.clear()
        self._telemetry.inc("syncer.crashes")

    def restart(self) -> None:
        """Restart after :meth:`crash`: anti-entropy recovery.

        A fresh change cursor is subscribed (backfilled with every live
        job) and the full-scan counter is saturated, so the first round
        rescans the whole fleet — exactly how a new syncer process makes
        up for the deltas its predecessor lost.
        """
        if self._incremental and self._cursor is None:
            self._cursor = self._store.change_cursor()
        self._rounds_since_full = self._full_scan_interval
        self._telemetry.inc("syncer.restarts")
        if self._engine is not None and self._timer is None:
            self.start()

    @property
    def now(self) -> Seconds:
        return self._engine.now if self._engine is not None else 0.0

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def sync_once(self) -> SyncReport:
        """Run one synchronization round over every non-quarantined job
        that might need work.

        In incremental mode only the dirty set (jobs the change feed
        reported since the previous round) is examined; every
        ``full_scan_interval`` rounds — and always when incremental mode
        is off — the whole fleet is rescanned as an anti-entropy safety
        net. Either way, simple synchronizations are batched (collected
        first, committed together); complex ones run individually. This
        mirrors the paper's "batches the simple synchronizations and
        parallelize[s] the complex ones".
        """
        started_wall = perf_counter() if self._telemetry.enabled else 0.0
        try:
            self._store_dep.call(self._store.ping)
        except DegradedModeError:
            # Job Store outage: skip the round — the cluster keeps running
            # on last-known-good state, and everything that changes in the
            # meantime accumulates in the change feed for the next round.
            report = SyncReport(time=self.now, full_scan=False, skipped=True)
            self.rounds.append(report)
            self._telemetry.inc("syncer.rounds_skipped")
            return report
        full_scan = (
            self._cursor is None
            or self._rounds_since_full >= self._full_scan_interval
        )
        report = SyncReport(time=self.now, full_scan=full_scan)
        simple_plans: List[ExecutionPlan] = []
        complex_plans: List[ExecutionPlan] = []

        dirty_size = 0
        if full_scan:
            self._rounds_since_full = 0
            if self._cursor is not None:
                # The scan supersedes every pending delta.
                self._cursor.poll()
            self._collect_deleted_jobs(report)
            candidates = self._store.job_ids()
        else:
            self._rounds_since_full += 1
            changed = self._cursor.poll()
            dirty_size = len(changed)
            candidates = self._collect_feed_deletions(changed, report)
        report.examined = len(candidates)
        for job_id in candidates:
            if self._store.state_of(job_id) == JobState.QUARANTINED:
                continue
            plan = self._plan_for(job_id)
            if plan.is_empty:
                continue
            if plan.complex:
                complex_plans.append(plan)
            else:
                simple_plans.append(plan)

        # A round trace event only when the round does work: an idle
        # 30-second tick would otherwise bloat every trace export.
        round_event: Optional[TraceEvent] = None
        if simple_plans or complex_plans:
            round_event = self._tracer.record(
                "state-syncer", "sync-round",
                simple=len(simple_plans), complex=len(complex_plans),
            )
        for plan in simple_plans:
            self._run_plan(plan, report, round_event)
        for plan in complex_plans:
            self._run_plan(plan, report, round_event)

        self.rounds.append(report)
        if self._telemetry.enabled:
            self._telemetry.inc("syncer.rounds")
            if simple_plans or complex_plans:
                self._telemetry.observe(
                    "syncer.batch.simple", float(len(simple_plans))
                )
                self._telemetry.observe(
                    "syncer.batch.complex", float(len(complex_plans))
                )
            if report.failed:
                self._telemetry.inc(
                    "syncer.plan_failures", float(len(report.failed))
                )
            wall_ms = (perf_counter() - started_wall) * 1000.0
            self._telemetry.observe("syncer.round_wall_ms", wall_ms)
            # ``cache.*`` instruments describe how the round was computed,
            # not what it decided; deterministic telemetry exports skip
            # them (see Telemetry.snapshot).
            if full_scan:
                self._telemetry.inc("cache.syncer.full_scans")
                self._telemetry.observe("syncer.full_round_wall_ms", wall_ms)
            else:
                self._telemetry.inc("cache.syncer.incremental_rounds")
                self._telemetry.observe(
                    "syncer.incremental_round_wall_ms", wall_ms
                )
                self._telemetry.observe(
                    "cache.syncer.dirty_set", float(dirty_size)
                )
            self._telemetry.observe(
                "cache.syncer.examined", float(report.examined)
            )
        return report

    def _collect_deleted_jobs(self, report: SyncReport) -> None:
        """Garbage-collect cluster state of jobs deleted from the store.

        A defensive sweep: even if a deprovision call died between
        deleting the store entry and stopping the tasks, the next round
        converges the cluster to "job gone" — the same eventual-delivery
        guarantee configuration changes get.
        """
        live = set(self._store.job_ids())
        orphaned = [
            job_id
            for job_id in self._known_running_jobs()
            if job_id not in live
        ]
        for job_id in orphaned:
            self._stop_orphan(job_id, report)

    def _collect_feed_deletions(
        self, changed: List[JobId], report: SyncReport
    ) -> List[JobId]:
        """Split a dirty set into live candidates and deletions to GC.

        Deleted jobs reach the dirty set through the change feed (the
        store notifies on ``delete_job``); jobs whose GC failed earlier
        sit in the retry set until a round succeeds or a full scan finds
        them gone from the cluster. Returns the live candidates in the
        same sorted order a full scan would visit them.
        """
        candidates: List[JobId] = []
        deleted = set(self._orphan_retry)
        for job_id in changed:
            if self._store.exists(job_id):
                candidates.append(job_id)
            else:
                deleted.add(job_id)
        if deleted:
            known = set(self._known_running_jobs())
            for job_id in sorted(deleted):
                if job_id not in known or self._store.exists(job_id):
                    self._orphan_retry.discard(job_id)
                    continue
                self._stop_orphan(job_id, report)
        return candidates

    def _stop_orphan(self, job_id: JobId, report: SyncReport) -> None:
        """GC the cluster state of one store-deleted job (best effort)."""
        try:
            self._actuator_dep.call(self._actuator.stop_tasks, job_id)
            report.simple_synced.append(job_id)
            self._orphan_retry.discard(job_id)
        except Exception:  # noqa: BLE001 — retried next round
            report.failed.append(job_id)
            self._orphan_retry.add(job_id)

    def _known_running_jobs(self) -> List[JobId]:
        """Jobs the actuator side still knows about (best effort)."""
        job_ids = getattr(self._actuator, "known_job_ids", None)
        if callable(job_ids):
            return job_ids()
        return []

    def _plan_for(self, job_id: JobId) -> ExecutionPlan:
        expected = self._store.merged_expected(job_id)
        running = self._store.read_running(job_id).config
        diff = config_diff(running, expected)
        if not diff and self._store.is_dirty(job_id):
            # A previous plan aborted mid-flight: the running config may
            # not match cluster reality even though it equals the expected
            # config. Force a full (complex) resynchronization.
            diff = {"task_count": expected.get("task_count", 1)}
        return build_plan(job_id, running, expected, diff)

    def _run_plan(
        self,
        plan: ExecutionPlan,
        report: SyncReport,
        round_event: Optional[TraceEvent] = None,
    ) -> None:
        job_id = plan.job_id
        # Link the plan to the config write that created the divergence
        # (claimed exactly once); a re-sync of the same divergence falls
        # back to the round event.
        parent = self._tracer.claim_context(job_id, SLOT_CONFIG) or round_event
        plan_event = self._tracer.record(
            "state-syncer", "sync-plan", job_id=job_id, parent=parent,
            complex=plan.complex,
            actions=[action.name for action in plan.actions],
        )
        # Published (not claimed) so every task-spec change and task start
        # the plan causes can link back to it while the plan is current.
        self._tracer.set_context(job_id, SLOT_SYNC, plan_event)
        try:
            self._actuator_dep.call(plan.execute, self._actuator)
        except Exception as exc:  # noqa: BLE001 — any actuator failure aborts
            # The aborted plan may have already acted on the cluster
            # (e.g. stopped tasks): mark the job so a later round resyncs
            # even if the expected config is reverted in the meantime.
            self._store.mark_dirty(job_id)
            self._tracer.record(
                "state-syncer", "sync-fail", job_id=job_id,
                parent=plan_event, error=str(exc),
            )
            self._record_failure(job_id, str(exc), report, plan_event)
            return
        # Atomic commit: only reached when every action succeeded. Quiet:
        # the job is converged, so the change feed must not re-dirty it.
        self._store.commit_running(job_id, plan.target_config, quiet=True)
        self._failure_counts.pop(job_id, None)
        if plan.complex:
            report.complex_synced.append(job_id)
        else:
            report.simple_synced.append(job_id)

    def _record_failure(
        self,
        job_id: JobId,
        reason: str,
        report: SyncReport,
        plan_event: Optional[TraceEvent] = None,
    ) -> None:
        count = self._failure_counts.get(job_id, 0) + 1
        self._failure_counts[job_id] = count
        report.failed.append(job_id)
        if count >= self._quarantine_after:
            self._store.set_state(job_id, JobState.QUARANTINED)
            report.quarantined.append(job_id)
            self.alerts.append((self.now, job_id, reason))
            self._tracer.record(
                "state-syncer", "job-quarantined", job_id=job_id,
                parent=plan_event, reason=reason, failures=count,
            )
            self._telemetry.inc("syncer.quarantines")
            for callback in self.on_quarantine:
                callback(job_id, reason)

    # ------------------------------------------------------------------
    # Oncall operations
    # ------------------------------------------------------------------
    def release_quarantine(self, job_id: JobId) -> None:
        """Oncall action: put a quarantined job back under management."""
        if self._store.state_of(job_id) != JobState.QUARANTINED:
            raise SyncError(f"job {job_id} is not quarantined")
        self._store.set_state(job_id, JobState.RUNNING)
        self._failure_counts.pop(job_id, None)

    def failure_count(self, job_id: JobId) -> int:
        """Consecutive plan failures for a job (0 when healthy)."""
        return self._failure_counts.get(job_id, 0)
