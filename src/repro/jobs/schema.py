"""Typed validation of job configurations.

"The configuration management utilizes Thrift to enforce compile-time type
checking. This is then converted to a JSON representation" (paper section
III-A). The Python equivalent: a declarative type schema for the canonical
keys, enforced on every Job Service write. Type errors are caught at write
time, exactly like Thrift would; *semantic* validity (e.g. a task count
that is positive) remains the State Syncer's concern, since an arbitrary
combination of layered configs is only meaningful once merged.

Unknown keys are deliberately allowed: "a new component can be added to
the system by introducing a new configuration at the right level of
precedence without affecting the existing components" — a closed schema
would break exactly that extensibility.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.errors import JobStoreError

#: Expected types of the canonical top-level keys. A value of ``dict``
#: with a nested mapping constrains the sub-keys too (again leaving
#: unknown sub-keys open).
_SCHEMA: Dict[str, Any] = {
    "package": {"name": str, "version": str},
    "task_count": int,
    "task_count_limit": int,
    "threads_per_task": int,
    "resources": {
        "cpu": (int, float),
        "memory_gb": (int, float),
        "disk_gb": (int, float),
        "network_mbps": (int, float),
    },
    "input": {"category": str},
    "output": {"category": str, "ratio": (int, float)},
    "checkpoint_dir": str,
    "stateful": bool,
    "priority": int,
    "slo": {
        "max_lag_seconds": (int, float),
        "recovery_seconds": (int, float),
    },
    "state_key_cardinality": int,
    "memory_overhead_gb": (int, float),
    "perf": {"rate_per_thread_mb": (int, float)},
}


def validate_typed(config: Mapping[str, Any], path: str = "") -> None:
    """Raise :class:`JobStoreError` when a known key has the wrong type."""
    _check_node(config, _SCHEMA, path)


def _check_node(
    node: Mapping[str, Any], schema: Mapping[str, Any], path: str
) -> None:
    for key, value in node.items():
        expected = schema.get(key)
        if expected is None:
            continue  # unknown keys are open for extension
        key_path = f"{path}.{key}" if path else key
        if isinstance(expected, dict):
            if not isinstance(value, dict):
                raise JobStoreError(
                    f"config key {key_path!r} must be a mapping, "
                    f"got {type(value).__name__}"
                )
            _check_node(value, expected, key_path)
            continue
        if isinstance(value, bool) and expected is int:
            # bool is a subclass of int in Python; Thrift would not
            # accept a bool where an i32 is declared.
            raise JobStoreError(
                f"config key {key_path!r} must be int, got bool"
            )
        if not isinstance(value, expected):
            expected_names = (
                expected.__name__
                if isinstance(expected, type)
                else "/".join(t.__name__ for t in expected)
            )
            raise JobStoreError(
                f"config key {key_path!r} must be {expected_names}, "
                f"got {type(value).__name__}"
            )
