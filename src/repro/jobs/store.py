"""The Job Store: expected and running configuration tables (Table I).

The store keeps, for every job:

* four *expected* configuration levels (Base, Provisioner, Scaler, Oncall),
  each independently versioned so writers can do optimistic
  read-modify-write ("the write operation compares the version of the
  expected job configuration to make sure the configuration is the same
  version based on which the update decision is made", section III-A);
* one *running* configuration — the settings the cluster is actually
  executing, committed only by the State Syncer after a plan succeeds.

Durability is modelled with JSON snapshots: :meth:`dump_snapshot` /
:meth:`load_snapshot` round-trip the entire store, which the crash-recovery
tests use to prove committed state survives a restart.

The store also exposes a *change feed* (:meth:`change_cursor`): a
drainable set of job ids whose stored state changed since the cursor was
last polled. The State Syncer uses it to sync only the jobs that could
possibly need work instead of rescanning the whole fleet every round.
Every mutation path notifies the feed except :meth:`commit_running` with
``quiet=True`` — the syncer's own commit, which by construction leaves
the job converged and must not re-dirty it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    JobStoreError,
    ServiceUnavailableError,
    VersionConflictError,
)
from repro.jobs.configs import Config, ConfigLevel, merge_levels, validate_config
from repro.types import JobId, JobState


@dataclass
class VersionedConfig:
    """A configuration dict plus its optimistic-concurrency version."""

    config: Config = field(default_factory=dict)
    version: int = 0


class ChangeCursor:
    """A drainable feed of job ids whose store state changed.

    Created via :meth:`JobStore.change_cursor`; pre-seeded with every job
    that exists at creation time, so a consumer that processes everything
    the cursor yields sees each job at least once — divergences that
    predate the cursor are not lost. :meth:`poll` returns the pending ids
    (sorted, for deterministic iteration) and clears them.
    """

    def __init__(self, store: "JobStore", backfill) -> None:
        self._store = store
        self._pending: set = set(backfill)

    def push(self, job_id: JobId) -> None:
        self._pending.add(job_id)

    def poll(self) -> List[JobId]:
        """All job ids changed since the last poll (sorted); drains."""
        pending = sorted(self._pending)
        self._pending.clear()
        return pending

    def __len__(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        """Detach from the store (no further notifications)."""
        self._store._cursors = [
            cursor for cursor in self._store._cursors if cursor is not self
        ]


class JobStore:
    """In-memory versioned store of expected and running job configurations."""

    def __init__(self) -> None:
        self._expected: Dict[JobId, Dict[ConfigLevel, VersionedConfig]] = {}
        self._running: Dict[JobId, VersionedConfig] = {}
        self._states: Dict[JobId, JobState] = {}
        #: Jobs whose running config may not reflect cluster reality: a
        #: plan failed after taking actions. The syncer must re-execute a
        #: full synchronization even when expected == running.
        self._dirty: set = set()
        #: Live change-feed cursors (see :meth:`change_cursor`).
        self._cursors: List[ChangeCursor] = []
        #: When False the store is in an availability window: every data
        #: operation raises :class:`ServiceUnavailableError` and clients
        #: run on last-known-good state (the production store is MySQL;
        #: this models a primary outage). Snapshot durability helpers are
        #: exempt — they model the disk, not the service.
        self.available = True
        #: Command tap for state-machine replication (see
        #: :mod:`repro.replication`): called with ``(op, args)`` *after*
        #: every successful mutation, in execution order. Because the
        #: store serializes mutations, the emitted command sequence *is*
        #: the store's history — replaying it into a fresh store yields
        #: a byte-identical snapshot (the log-equivalence suite).
        self._command_sink: Optional[Callable[[str, Dict[str, Any]], None]] = None

    # ------------------------------------------------------------------
    # Replication tap
    # ------------------------------------------------------------------
    def set_command_sink(
        self, sink: Optional[Callable[[str, Dict[str, Any]], None]]
    ) -> None:
        """Install (or clear) the replication command tap."""
        self._command_sink = sink

    def _emit(self, op: str, **args: Any) -> None:
        if self._command_sink is not None:
            self._command_sink(op, args)

    # ------------------------------------------------------------------
    # Availability (chaos hooks)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Begin an availability window (all data operations raise)."""
        self.available = False

    def recover(self) -> None:
        """End the availability window."""
        self.available = True

    def ping(self) -> None:
        """Cheap liveness probe: raises when unavailable, else a no-op.

        O(1) — periodic callers use it to decide whether to skip a round
        without paying for a fleet scan.
        """
        self._check_available()

    def _check_available(self) -> None:
        if not self.available:
            raise ServiceUnavailableError("Job Store is unavailable")

    # ------------------------------------------------------------------
    # Change feed
    # ------------------------------------------------------------------
    def change_cursor(self) -> ChangeCursor:
        """Subscribe a new :class:`ChangeCursor` to this store's mutations.

        The cursor is backfilled with every currently-live job, so the
        first poll covers the whole fleet.
        """
        cursor = ChangeCursor(self, self._expected)
        self._cursors.append(cursor)
        return cursor

    def _notify_change(self, job_id: JobId) -> None:
        for cursor in self._cursors:
            cursor.push(job_id)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def create_job(self, job_id: JobId) -> None:
        """Register a job with empty config levels."""
        self._check_available()
        if job_id in self._expected:
            raise JobStoreError(f"job {job_id} already exists")
        self._expected[job_id] = {
            level: VersionedConfig() for level in ConfigLevel
        }
        self._running[job_id] = VersionedConfig()
        self._states[job_id] = JobState.RUNNING
        self._notify_change(job_id)
        self._emit("create_job", job_id=job_id)

    def delete_job(self, job_id: JobId) -> None:
        """Remove a job entirely."""
        self._check_available()
        self._require_job(job_id)
        del self._expected[job_id]
        del self._running[job_id]
        self._states[job_id] = JobState.DELETED
        self._notify_change(job_id)
        self._emit("delete_job", job_id=job_id)

    def job_ids(self) -> List[JobId]:
        """All live jobs, sorted for deterministic iteration."""
        self._check_available()
        return sorted(self._expected)

    def exists(self, job_id: JobId) -> bool:
        self._check_available()
        return job_id in self._expected

    def state_of(self, job_id: JobId) -> JobState:
        """Lifecycle state; DELETED jobs are remembered for audit."""
        self._check_available()
        try:
            return self._states[job_id]
        except KeyError:
            raise JobStoreError(f"unknown job {job_id}") from None

    def set_state(self, job_id: JobId, state: JobState) -> None:
        self._check_available()
        self._require_job(job_id)
        self._states[job_id] = state
        self._notify_change(job_id)
        self._emit("set_state", job_id=job_id, state=state.value)

    # ------------------------------------------------------------------
    # Expected configurations
    # ------------------------------------------------------------------
    def read_expected(
        self, job_id: JobId, level: ConfigLevel
    ) -> VersionedConfig:
        """A copy of one expected level (config + version)."""
        self._check_available()
        self._require_job(job_id)
        stored = self._expected[job_id][level]
        return VersionedConfig(dict(stored.config), stored.version)

    def write_expected(
        self,
        job_id: JobId,
        level: ConfigLevel,
        config: Config,
        expected_version: int,
    ) -> int:
        """Compare-and-swap write of one expected level.

        Succeeds only when ``expected_version`` matches the stored version;
        returns the new version. This serializes concurrent writers to the
        same level (e.g. two oncalls editing the oncall config).
        """
        self._check_available()
        self._require_job(job_id)
        validate_config(config)
        stored = self._expected[job_id][level]
        if stored.version != expected_version:
            raise VersionConflictError(
                f"job {job_id} level {level.name}: expected version "
                f"{expected_version}, found {stored.version}"
            )
        stored.config = json.loads(json.dumps(config))
        stored.version += 1
        self._notify_change(job_id)
        self._emit(
            "write_expected", job_id=job_id, level=level.name,
            config=stored.config, expected_version=expected_version,
        )
        return stored.version

    def merged_expected(self, job_id: JobId) -> Config:
        """All expected levels merged by precedence (Algorithm 1)."""
        self._check_available()
        self._require_job(job_id)
        return merge_levels(
            {level: vc.config for level, vc in self._expected[job_id].items()}
        )

    # ------------------------------------------------------------------
    # Running configuration
    # ------------------------------------------------------------------
    def read_running(self, job_id: JobId) -> VersionedConfig:
        """A copy of the running configuration."""
        self._check_available()
        self._require_job(job_id)
        stored = self._running[job_id]
        return VersionedConfig(dict(stored.config), stored.version)

    def commit_running(
        self, job_id: JobId, config: Config, quiet: bool = False
    ) -> int:
        """Replace the running configuration.

        Commit is the *last* step of a synchronization: it happens "only
        after the plan is successfully executed" (section III-B), which is
        what makes updates atomic from the cluster's point of view.

        ``quiet=True`` is reserved for the State Syncer's own commits: the
        job is converged by construction, so notifying the change feed
        would only make the next incremental round re-examine it for
        nothing. Every other caller (e.g. the Capacity Manager invalidating
        a running config to force a restart) uses the default and wakes the
        syncer up.
        """
        self._check_available()
        self._require_job(job_id)
        validate_config(config)
        stored = self._running[job_id]
        stored.config = json.loads(json.dumps(config))
        stored.version += 1
        self._dirty.discard(job_id)
        if not quiet:
            self._notify_change(job_id)
        self._emit(
            "commit_running", job_id=job_id, config=stored.config, quiet=quiet
        )
        return stored.version

    # ------------------------------------------------------------------
    # Dirtiness (torn-plan) tracking
    # ------------------------------------------------------------------
    def mark_dirty(self, job_id: JobId) -> None:
        """Flag that the running config may not match cluster reality.

        Set by the State Syncer when a plan fails *after* performing
        actions: the aborted plan may have stopped tasks, so even a
        reverted expected config must trigger a full resynchronization.
        """
        self._check_available()
        self._require_job(job_id)
        self._dirty.add(job_id)
        self._notify_change(job_id)
        self._emit("mark_dirty", job_id=job_id)

    def is_dirty(self, job_id: JobId) -> bool:
        self._check_available()
        self._require_job(job_id)
        return job_id in self._dirty

    # ------------------------------------------------------------------
    # Durability snapshots
    # ------------------------------------------------------------------
    def dump_snapshot(self) -> str:
        """Serialize the whole store to a JSON string."""
        payload = {
            "expected": {
                job_id: {
                    level.name: {"config": vc.config, "version": vc.version}
                    for level, vc in levels.items()
                }
                for job_id, levels in self._expected.items()
            },
            "running": {
                job_id: {"config": vc.config, "version": vc.version}
                for job_id, vc in self._running.items()
            },
            "states": {
                job_id: state.value for job_id, state in self._states.items()
            },
            "dirty": sorted(self._dirty),
        }
        # Canonical form (sorted keys): two stores with the same logical
        # state dump the same bytes, which is what lets the replication
        # equivalence suite compare replicas byte-for-byte.
        return json.dumps(payload, sort_keys=True)

    def save(self, path) -> None:
        """Write a durable snapshot to ``path`` (the production Job Store
        is MySQL-backed; a JSON file plays that role here)."""
        from pathlib import Path

        Path(path).write_text(self.dump_snapshot(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "JobStore":
        """Restore a store from a :meth:`save` file."""
        from pathlib import Path

        return cls.load_snapshot(Path(path).read_text(encoding="utf-8"))

    @classmethod
    def load_snapshot(cls, snapshot: str) -> "JobStore":
        """Reconstruct a store from :meth:`dump_snapshot` output."""
        payload = json.loads(snapshot)
        store = cls()
        for job_id, levels in payload["expected"].items():
            store._expected[job_id] = {
                ConfigLevel[name]: VersionedConfig(
                    entry["config"], entry["version"]
                )
                for name, entry in levels.items()
            }
        for job_id, entry in payload["running"].items():
            store._running[job_id] = VersionedConfig(
                entry["config"], entry["version"]
            )
        for job_id, value in payload["states"].items():
            store._states[job_id] = JobState(value)
        store._dirty = set(payload.get("dirty", []))
        return store

    # ------------------------------------------------------------------
    # Replication takeover
    # ------------------------------------------------------------------
    def install_state(self, source: "JobStore") -> None:
        """Adopt ``source``'s tables in place (leader promotion).

        The store object is the *service endpoint* — every client holds a
        reference to it — so a failover cannot replace the object, only
        its state. The promoted replica's tables are moved in (not
        copied: the replica hands them over and is rebuilt from scratch
        if it ever rejoins), live change cursors are kept, and every job
        is pushed into them: a new leader cannot trust deltas queued
        against its predecessor, so the next incremental sync round
        re-examines the whole fleet (anti-entropy, exactly like a syncer
        restart).
        """
        self._expected = source._expected
        self._running = source._running
        self._states = source._states
        self._dirty = source._dirty
        for job_id in sorted(self._expected):
            self._notify_change(job_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_job(self, job_id: JobId) -> None:
        if job_id not in self._expected:
            raise JobStoreError(f"unknown job {job_id}")

    def __repr__(self) -> str:
        return f"JobStore(jobs={len(self._expected)})"
