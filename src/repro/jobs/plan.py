"""Execution plans: the idempotent action sequences the State Syncer runs.

"An Execution Plan is an optimal sequence of idempotent actions whose goal
is to transition the running job configuration to the expected job
configuration." (paper section III-B).

Actions act on a :class:`TaskActuator` — the narrow interface the Task
Management layer exposes to the syncer. Keeping the interface abstract
decouples *what to run* from *where to run* exactly as the paper's
architecture does, and lets tests drive plans against fakes (including
fault-injecting ones).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.jobs.configs import Config
from repro.types import JobId


class TaskActuator(abc.ABC):
    """What the syncer can do to the cluster.

    Implementations must make every method idempotent: a plan that failed
    half-way is re-run from the start on the next synchronization round.
    """

    @abc.abstractmethod
    def apply_settings(self, job_id: JobId, config: Config) -> None:
        """Push non-structural settings (package version, resources, ...).

        This is the "simple synchronization" path: the new settings
        propagate to tasks via the Task Service snapshot refresh.
        """

    @abc.abstractmethod
    def stop_tasks(self, job_id: JobId) -> None:
        """Stop all tasks of the job and wait for them to be fully stopped."""

    @abc.abstractmethod
    def redistribute_checkpoints(
        self, job_id: JobId, old_task_count: int, new_task_count: int
    ) -> None:
        """Re-map partition checkpoints from the old to the new task layout."""

    @abc.abstractmethod
    def start_tasks(self, job_id: JobId, task_count: int, config: Config) -> None:
        """Start ``task_count`` tasks with the given configuration."""


@dataclass
class Action:
    """One idempotent step of an execution plan."""

    name: str
    run: Any = field(repr=False)  # Callable[[TaskActuator], None]

    def execute(self, actuator: TaskActuator) -> None:
        self.run(actuator)


@dataclass
class ExecutionPlan:
    """An ordered list of actions that realizes a config transition.

    ``target_config`` is what gets committed to the running table after —
    and only after — every action succeeds.
    """

    job_id: JobId
    target_config: Config
    actions: List[Action] = field(default_factory=list)
    #: Whether this plan needs multi-phase coordination (parallelism change)
    #: or is a batched single-copy (package release etc.).
    complex: bool = False

    @property
    def is_empty(self) -> bool:
        """An empty plan means running already matches expected."""
        return not self.actions

    def execute(self, actuator: TaskActuator) -> None:
        """Run every action in order; raises on the first failure."""
        for action in self.actions:
            action.execute(actuator)


def build_plan(
    job_id: JobId,
    running: Config,
    expected: Config,
    diff: Dict[str, Any],
) -> ExecutionPlan:
    """Construct the plan that moves ``running`` to ``expected``.

    * No difference → empty plan.
    * Difference only in simple keys → one ``apply_settings`` action
      ("Package release falls into this category: once the corresponding
      package setting is copied ... the setting will eventually propagate
      to the impacted tasks").
    * Parallelism change → the paper's three-phase complex sync: stop the
      old tasks, redistribute checkpoints, start the new tasks.
    """
    from repro.jobs.configs import requires_complex_sync

    plan = ExecutionPlan(job_id=job_id, target_config=dict(expected))
    if not diff:
        return plan

    if requires_complex_sync(diff):
        old_count = int(running.get("task_count", 0) or 0)
        new_count = int(expected.get("task_count", 1))
        plan.complex = True
        plan.actions = [
            Action(
                "stop_old_tasks",
                lambda actuator: actuator.stop_tasks(job_id),
            ),
            Action(
                "redistribute_checkpoints",
                lambda actuator: actuator.redistribute_checkpoints(
                    job_id, old_count, new_count
                ),
            ),
            Action(
                "start_new_tasks",
                lambda actuator: actuator.start_tasks(
                    job_id, new_count, dict(expected)
                ),
            ),
        ]
    else:
        plan.actions = [
            Action(
                "apply_settings",
                lambda actuator: actuator.apply_settings(job_id, dict(expected)),
            )
        ]
    return plan
