"""The Job Service: the write API in front of the Job Store.

"The Job Service [is] a service to guarantee job changes are committed to
the Job Store atomically ... The Job Service also guarantees
read-modify-write consistency when updating the same expected
configuration" (paper sections III and III-A).

Writers never touch the store directly: the provisioner writes the
PROVISIONER level, the auto scaler the SCALER level, oncalls the ONCALL
level — each through :meth:`update`, which retries the optimistic CAS loop
on conflicts. Isolation between components falls out of the level
hierarchy: no writer needs to know about any other.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import DegradedModeError, JobStoreError, VersionConflictError
from repro.jobs.configs import Config, ConfigLevel
from repro.jobs.model import JobSpec, base_config
from repro.jobs.schema import validate_typed
from repro.jobs.store import JobStore
from repro.obs.trace import (
    NULL_TRACER,
    SLOT_CONFIG,
    SLOT_WRITE_ORIGIN,
    Tracer,
)
from repro.types import JobId, JobState

#: How many CAS retries :meth:`update` attempts before giving up. Conflicts
#: are transient (another writer won the race), so a handful of retries is
#: always enough in practice.
DEFAULT_MAX_RETRIES = 16


class JobService:
    """Validated, serialized access to the Job Store."""

    def __init__(
        self, store: JobStore, tracer: Optional[Tracer] = None
    ) -> None:
        self._store = store
        self._tracer = tracer or NULL_TRACER
        #: When False, new jobs are rejected — the degraded mode in which
        #: Turbine "keep[s] jobs running but not admitting new jobs"
        #: (paper section II).
        self.admitting = True

    @property
    def store(self) -> JobStore:
        """The underlying store (read-only use by other services)."""
        return self._store

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def provision(self, spec: JobSpec) -> None:
        """Admit a new job: create it and write base + provisioner levels."""
        if not self.admitting:
            raise DegradedModeError(
                "job admission is disabled (degraded mode)"
            )
        self._store.create_job(spec.job_id)
        provision_event = self._tracer.record(
            "job-service", "provision", job_id=spec.job_id,
            task_count=spec.task_count,
        )
        self._tracer.set_context(
            spec.job_id, SLOT_WRITE_ORIGIN, provision_event
        )
        self.update(spec.job_id, ConfigLevel.BASE, lambda __: base_config())
        self._tracer.set_context(
            spec.job_id, SLOT_WRITE_ORIGIN, provision_event
        )
        self.update(
            spec.job_id,
            ConfigLevel.PROVISIONER,
            lambda __: spec.to_provisioner_config(),
        )

    def deprovision(self, job_id: JobId) -> None:
        """Remove a job from management."""
        self._store.delete_job(job_id)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(
        self,
        job_id: JobId,
        level: ConfigLevel,
        modify: Callable[[Config], Config],
        max_retries: int = DEFAULT_MAX_RETRIES,
    ) -> Config:
        """Read-modify-write one expected level with CAS retries.

        ``modify`` receives a copy of the current level config and returns
        the new config (it may mutate and return its argument). On a version
        conflict the cycle re-reads and re-applies ``modify`` to the fresh
        config, so concurrent writers to the same level serialize cleanly.
        Returns the config that was committed.

        Every committed write records a ``config-write`` trace event,
        parented onto whatever decision caused it (the writer publishes
        its event in the write-origin slot beforehand), and publishes that
        event for the State Syncer — so the sync round that realizes the
        change links back to the decision that requested it.
        """
        last_conflict: Optional[VersionConflictError] = None
        for __ in range(max_retries):
            current = self._store.read_expected(job_id, level)
            new_config = modify(dict(current.config))
            if new_config is None:
                raise JobStoreError(
                    f"modify callback returned None for {job_id}/{level.name}"
                )
            # Thrift-equivalent type checking at the write boundary.
            validate_typed(new_config)
            try:
                version = self._store.write_expected(
                    job_id, level, new_config, current.version
                )
                if self._tracer.enabled:
                    self._trace_write(job_id, level, new_config, version)
                return new_config
            except VersionConflictError as conflict:
                last_conflict = conflict
        raise JobStoreError(
            f"update of {job_id}/{level.name} failed after {max_retries} "
            f"retries: {last_conflict}"
        )

    def _trace_write(
        self, job_id: JobId, level: ConfigLevel, config: Config, version: int
    ) -> None:
        parent = self._tracer.claim_context(job_id, SLOT_WRITE_ORIGIN)
        event = self._tracer.record(
            "job-store", "config-write", job_id=job_id, parent=parent,
            level=level.name, version=version,
            keys=sorted(config),
        )
        self._tracer.set_context(job_id, SLOT_CONFIG, event)

    def patch(
        self, job_id: JobId, level: ConfigLevel, changes: Config
    ) -> Config:
        """Shallow-merge ``changes`` into one expected level."""
        def apply(config: Config) -> Config:
            config.update(changes)
            return config

        return self.update(job_id, level, apply)

    def clear_level(self, job_id: JobId, level: ConfigLevel) -> None:
        """Empty one expected level (e.g. lifting an oncall override)."""
        self.update(job_id, level, lambda __: {})

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def expected_config(self, job_id: JobId) -> Config:
        """The merged expected configuration (consistent view)."""
        return self._store.merged_expected(job_id)

    def running_config(self, job_id: JobId) -> Config:
        """The configuration the cluster is currently executing."""
        return self._store.read_running(job_id).config

    def job_ids(self) -> "list[JobId]":
        """All managed jobs (sorted)."""
        return self._store.job_ids()

    def active_job_ids(self) -> "list[JobId]":
        """Jobs that should have tasks running (not stopped/quarantined)."""
        return [
            job_id
            for job_id in self._store.job_ids()
            if self._store.state_of(job_id) == JobState.RUNNING
        ]
