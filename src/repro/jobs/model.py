"""Job specifications.

A :class:`JobSpec` is the typed view of what a user provisions: it compiles
down to the Provisioner-level configuration dict stored in the Job Store.
Canonical config keys are defined here so every layer (syncer, task service,
scaler) reads the same names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.cluster.resources import ResourceVector
from repro.errors import JobStoreError
from repro.types import SLO, JobId, Priority

# ----------------------------------------------------------------------
# Canonical configuration keys
# ----------------------------------------------------------------------
KEY_PACKAGE = "package"              # {"name": str, "version": str}
KEY_TASK_COUNT = "task_count"        # int — job parallelism
KEY_TASK_COUNT_LIMIT = "task_count_limit"  # int — scaler upper bound
KEY_THREADS = "threads_per_task"     # int — k in equation (2)
KEY_RESOURCES = "resources"          # per-task ResourceVector as dict
KEY_INPUT = "input"                  # {"category": str}
KEY_OUTPUT = "output"                # {"category": str, "ratio": float}
KEY_CHECKPOINT_DIR = "checkpoint_dir"
KEY_STATEFUL = "stateful"            # bool
KEY_PRIORITY = "priority"            # int (types.Priority)
KEY_SLO = "slo"                      # {"max_lag_seconds": float, ...}
KEY_STATE_KEY_CARDINALITY = "state_key_cardinality"  # stateful memory model
KEY_PERF = "perf"                    # {"rate_per_thread_mb": float} — true P
KEY_MEMORY_OVERHEAD = "memory_overhead_gb"  # per-task constant buffer extra
KEY_HOT_STANDBY = "hot_standby"      # bool — keep a passive replica warm

#: Byte quantities across the library are expressed in megabytes (MB) and
#: rates in MB/s; the paper reports GB/s at cluster level, which is MB/s
#: times one thousand.

#: Default per-job task-count cap: "32 is the default upper limit for a
#: job's task count for unprivileged Scuba tailers" (paper section VI-B1).
DEFAULT_TASK_COUNT_LIMIT = 32


@dataclass
class JobSpec:
    """A user-facing job definition, convertible to a provisioner config.

    Attributes:
        job_id: unique job name, e.g. ``"scuba/ads_metrics"``.
        input_category: Scribe category the job reads.
        task_count: initial parallelism.
        threads_per_task: worker threads per task (``k`` in equation 2).
        resources_per_task: reservation for each task.
        package_name / package_version: the binary to run.
        stateful: whether tasks keep state beyond checkpoints.
        priority: business priority (capacity manager preemption order).
        slo: processing-lag objective.
        task_count_limit: scaler's upper bound on parallelism.
        state_key_cardinality: for stateful jobs, the number of distinct
            keys held in memory (drives the memory estimator).
    """

    job_id: JobId
    input_category: str
    task_count: int = 1
    threads_per_task: int = 1
    resources_per_task: ResourceVector = field(
        default_factory=lambda: ResourceVector(cpu=0.5, memory_gb=0.5)
    )
    package_name: str = "stream_engine"
    package_version: str = "1.0"
    stateful: bool = False
    priority: Priority = Priority.NORMAL
    slo: SLO = field(default_factory=SLO)
    task_count_limit: int = DEFAULT_TASK_COUNT_LIMIT
    output_category: str = ""
    #: Output bytes per input byte (selectivity/aggregation reduction of
    #: the job's operator chain); only meaningful with an output category.
    output_ratio: float = 1.0
    state_key_cardinality: int = 0
    #: True maximum stable processing rate of one thread, in MB/s — the
    #: ground-truth ``P`` of equation (2). The simulated runtime enforces
    #: it; the scaler only ever sees its own (adjustable) estimate.
    rate_per_thread_mb: float = 2.0
    #: Extra constant per-task memory (GB) modelling message-size-driven
    #: buffering: "memory consumption is proportional to the average
    #: message size" (paper section VI).
    memory_overhead_gb: float = 0.0
    #: Opt into hot-standby replicas: a passive copy of every task stays
    #: warm on a different host for sub-second takeover (at the cost of
    #: the replicas' reservations). Requires the platform's standby
    #: plane to be attached; a plain platform ignores the flag.
    hot_standby: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_thread_mb <= 0:
            raise JobStoreError(
                f"rate_per_thread_mb must be positive: {self.rate_per_thread_mb}"
            )
        if self.output_ratio < 0:
            raise JobStoreError(
                f"output_ratio must be non-negative: {self.output_ratio}"
            )
        if self.output_category and self.output_category == self.input_category:
            raise JobStoreError(
                f"job {self.job_id} would write to its own input category"
            )
        if not self.job_id:
            raise JobStoreError("job_id must be non-empty")
        if self.task_count < 1:
            raise JobStoreError(f"task_count must be >= 1: {self.task_count}")
        if self.threads_per_task < 1:
            raise JobStoreError(
                f"threads_per_task must be >= 1: {self.threads_per_task}"
            )
        if self.task_count_limit < 1:
            raise JobStoreError(
                f"task_count_limit must be >= 1: {self.task_count_limit}"
            )
        if self.stateful and self.state_key_cardinality < 0:
            raise JobStoreError("state_key_cardinality must be non-negative")

    def to_provisioner_config(self) -> Dict[str, Any]:
        """The Provisioner-level configuration dict for this spec."""
        config: Dict[str, Any] = {
            KEY_PACKAGE: {
                "name": self.package_name,
                "version": self.package_version,
            },
            KEY_TASK_COUNT: self.task_count,
            KEY_TASK_COUNT_LIMIT: self.task_count_limit,
            KEY_THREADS: self.threads_per_task,
            KEY_RESOURCES: self.resources_per_task.as_dict(),
            KEY_INPUT: {"category": self.input_category},
            KEY_CHECKPOINT_DIR: f"/checkpoints/{self.job_id}",
            KEY_STATEFUL: self.stateful,
            KEY_PRIORITY: int(self.priority),
            KEY_SLO: {
                "max_lag_seconds": self.slo.max_lag_seconds,
                "recovery_seconds": self.slo.recovery_seconds,
            },
            KEY_PERF: {"rate_per_thread_mb": self.rate_per_thread_mb},
        }
        if self.memory_overhead_gb:
            config[KEY_MEMORY_OVERHEAD] = self.memory_overhead_gb
        if self.output_category:
            config[KEY_OUTPUT] = {
                "category": self.output_category,
                "ratio": self.output_ratio,
            }
        if self.stateful:
            config[KEY_STATE_KEY_CARDINALITY] = self.state_key_cardinality
        if self.hot_standby:
            # Emitted only when set, so configs of jobs that never opt in
            # stay byte-identical to their pre-standby form.
            config[KEY_HOT_STANDBY] = True
        return config


def base_config() -> Dict[str, Any]:
    """The Base-level configuration shared by all jobs (Table I).

    "The Base Configuration defines a collection of common settings — e.g.,
    package name, version number, and checkpoint directory."
    """
    return {
        KEY_PACKAGE: {"name": "stream_engine", "version": "1.0"},
        KEY_THREADS: 1,
        KEY_TASK_COUNT: 1,
        KEY_TASK_COUNT_LIMIT: DEFAULT_TASK_COUNT_LIMIT,
        KEY_STATEFUL: False,
        KEY_PRIORITY: int(Priority.NORMAL),
        KEY_SLO: {"max_lag_seconds": 90.0, "recovery_seconds": 3600.0},
    }
