"""Command-line entry point: ``python -m repro <command>``.

Commands:
    demo        run a small end-to-end deployment and print a health report
    growth      print the Fig. 1-style yearly growth table
    footprints  print the Fig. 5-style task footprint summary
    experiments list the benchmark harnesses and what they reproduce
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo(args: argparse.Namespace) -> int:
    from repro import JobSpec, PlatformConfig, Turbine
    from repro.workloads import TrafficDriver

    platform = Turbine.create(
        num_hosts=args.hosts, seed=args.seed,
        config=PlatformConfig(num_shards=64),
    )
    platform.attach_scaler()
    platform.attach_health_reporter()
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(args.jobs):
        platform.provision(
            JobSpec(job_id=f"demo/job-{index}", input_category=f"cat-{index}",
                    task_count=2, rate_per_thread_mb=2.0),
        )
        driver.add_source(f"cat-{index}", lambda t, r=1.0 + index: r)
    driver.start()
    platform.run_for(minutes=args.minutes)
    print(platform.health.check_once().render())
    return 0


def cmd_growth(args: argparse.Namespace) -> int:
    from repro.analysis import Table
    from repro.workloads import ScubaFleet

    fleet = ScubaFleet(args.jobs, seed=args.seed)
    table = Table(["month", "traffic (MB/s)"])
    for month in range(13):
        table.add_row(month, fleet.total_rate_mb() * 2 ** (month / 12.0))
    print(table.render())
    return 0


def cmd_footprints(args: argparse.Namespace) -> int:
    from repro.analysis import format_cdf
    from repro.metrics.aggregate import fraction_below
    from repro.workloads import ScubaFleet

    fleet = ScubaFleet(args.jobs, seed=args.seed)
    cpus, memories = fleet.task_footprints()
    print(format_cdf("task CPU (cores)", cpus))
    print()
    print(format_cdf("task memory (GB)", memories))
    print(f"\ntasks < 1 core: {fraction_below(cpus, 1.0):.1%}  "
          f"tasks < 2 GB: {fraction_below(memories, 2.0):.2%}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    experiments = [
        ("test_fig1_growth.py", "Fig. 1 — yearly service growth"),
        ("test_fig5_task_footprints.py", "Fig. 5 — task footprint CDFs"),
        ("test_fig6_utilization.py", "Fig. 6 — per-host utilization band"),
        ("test_fig7_load_balancer.py", "Fig. 7 — LB disable/failover/enable"),
        ("test_fig8_backlog_recovery.py", "Fig. 8 — backlog recovery 8x"),
        ("test_fig9_storm.py", "Fig. 9 — storm drill scaling"),
        ("test_fig10_efficiency.py", "Fig. 10 — rollout resource savings"),
        ("test_placement_speed.py", "100K shards placed < 2 s"),
        ("test_sync_speed.py", "tens of thousands of simple syncs"),
        ("test_scheduling_latency.py", "scheduling/push/failover latencies"),
        ("test_footprint_reduction.py", "~33% migration footprint saving"),
        ("test_config_merge.py", "Algorithm 1 merge throughput"),
        ("test_reactive_scaler.py", "Algorithm 2 vs proactive ablation"),
        ("test_ablation_vertical.py", "vertical-first churn ablation"),
        ("test_ablation_patterns.py", "pattern-history flapping ablation"),
        ("test_ablation_optimizer.py", "IR pushdown shuffle-traffic ablation"),
    ]
    for filename, description in experiments:
        print(f"  benchmarks/{filename:35s} {description}")
    print("\nrun with: pytest benchmarks/ --benchmark-only -s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Turbine reproduction (Mei et al., ICDE 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a small deployment")
    demo.add_argument("--hosts", type=int, default=3)
    demo.add_argument("--jobs", type=int, default=4)
    demo.add_argument("--minutes", type=float, default=30.0)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    growth = sub.add_parser("growth", help="Fig. 1-style growth table")
    growth.add_argument("--jobs", type=int, default=1000)
    growth.add_argument("--seed", type=int, default=0)
    growth.set_defaults(func=cmd_growth)

    footprints = sub.add_parser("footprints", help="Fig. 5-style CDFs")
    footprints.add_argument("--jobs", type=int, default=5000)
    footprints.add_argument("--seed", type=int, default=0)
    footprints.set_defaults(func=cmd_footprints)

    experiments = sub.add_parser("experiments", help="list benchmarks")
    experiments.set_defaults(func=cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
