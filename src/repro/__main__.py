"""Command-line entry point: ``python -m repro <command>``.

Commands:
    demo        run a small end-to-end deployment and print a health report
    timeline    run an incident scenario and print the merged event timeline
    trace       print the causal decision chain for one job
    slo         run the incident scenario and print the fleet SLO compliance table
    chaos       run a named chaos scenario and print the MTTR report
    growth      print the Fig. 1-style yearly growth table
    footprints  print the Fig. 5-style task footprint summary
    parallel    run a fleet on the sharded parallel substrate
    experiments list the benchmark harnesses and what they reproduce
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def cmd_demo(args: argparse.Namespace) -> int:
    from repro import JobSpec, PlatformConfig, Turbine
    from repro.workloads import TrafficDriver

    platform = Turbine.create(
        num_hosts=args.hosts, seed=args.seed,
        config=PlatformConfig(num_shards=64),
    )
    platform.attach_scaler()
    platform.attach_health_reporter()
    if args.trace_out:
        platform.enable_tracing()
    if args.telemetry_out:
        platform.enable_instrumentation()
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(args.jobs):
        platform.provision(
            JobSpec(job_id=f"demo/job-{index}", input_category=f"cat-{index}",
                    task_count=2, rate_per_thread_mb=2.0),
        )
        driver.add_source(f"cat-{index}", lambda t, r=1.0 + index: r)
    driver.start()
    platform.run_for(minutes=args.minutes)
    print(platform.health.check_once().render())
    if args.trace_out:
        platform.tracer.write_jsonl(args.trace_out)
        print(f"\n{len(platform.tracer.events)} trace events "
              f"written to {args.trace_out}")
    if args.telemetry_out:
        platform.telemetry.write_jsonl(args.telemetry_out)
        print(f"control-plane telemetry written to {args.telemetry_out}")
    return 0


def _incident_platform(seed: int, minutes: float, replication: bool = False):
    """A deterministic incident scenario shared by ``timeline``/``trace``.

    Three overlapping incidents, so every drill-down surface has
    something to show: ``demo/job-0`` is overloaded (the Auto Scaler
    scales it up), ``demo/job-1`` gets a poisoned oncall config at t=10min
    (three failed sync plans, then quarantine), and a host fails at
    t=20min (Shard Manager failover moves its shards). With
    ``replication`` the Job Store runs as a replica group and the leader
    is killed at t=25min (rejoining at t=30min), so the ``replication``
    timeline source has a failover to show (see docs/RUNBOOK.md).
    """
    from repro import JobSpec, PlatformConfig, Turbine
    from repro.jobs.configs import ConfigLevel
    from repro.workloads import TrafficDriver

    platform = Turbine.create(
        num_hosts=4, seed=seed,
        config=PlatformConfig(num_shards=32, containers_per_host=2),
    )
    platform.attach_scaler()
    platform.attach_health_reporter()
    platform.attach_slo()
    if replication:
        platform.attach_replication()
    platform.enable_tracing()
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    rates = {"demo/job-0": 30.0, "demo/job-1": 2.0, "demo/job-2": 2.0}
    for index, (job_id, rate) in enumerate(sorted(rates.items())):
        platform.provision(
            JobSpec(job_id=job_id, input_category=f"cat-{index}",
                    task_count=2, rate_per_thread_mb=2.0,
                    task_count_limit=16),
        )
        driver.add_source(f"cat-{index}", lambda t, r=rate: r)
    driver.start()

    platform.run_for(minutes=min(10.0, minutes))
    if minutes > 10.0:
        # A poisoned oncall override: spec generation fails inside the
        # plan, and after three failed rounds the job is quarantined.
        platform.job_service.patch(
            "demo/job-1", ConfigLevel.ONCALL, {"task_count": -2}
        )
        platform.run_for(minutes=min(10.0, minutes - 10.0))
    if minutes > 20.0:
        platform.cluster.fail_host("host-1")
        if replication and minutes > 25.0:
            platform.run_for(minutes=5.0)
            crashed = platform.replication.crash("leader")
            platform.run_for(minutes=min(5.0, minutes - 25.0))
            if minutes > 30.0:
                platform.replication.restart(crashed)
                platform.run_for(minutes=minutes - 30.0)
        else:
            platform.run_for(minutes=minutes - 20.0)
    return platform


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.ops.timeline import IncidentTimeline

    platform = _incident_platform(
        args.seed, args.minutes, replication=args.replication
    )
    timeline = IncidentTimeline(platform)
    print(timeline.render(
        since=args.since,
        until=args.until,
        sources=args.source or None,
        kinds=args.kind or None,
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.critical_path import render_critical_path
    from repro.obs.trace import Tracer, render_chain_from_events

    if args.input:
        try:
            text = Path(args.input).read_text(encoding="utf-8")
        except OSError as error:
            print(f"cannot read trace file: {error}", file=sys.stderr)
            return 1
        events = Tracer.load_jsonl(text)
    else:
        platform = _incident_platform(args.seed, args.minutes)
        events = list(platform.tracer.events)
    if args.critical_path:
        print(render_critical_path(events, args.job_id))
    else:
        print(render_chain_from_events(events, args.job_id))
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """Fleet SLO compliance over the standard incident scenario."""
    platform = _incident_platform(args.seed, args.minutes)
    tracker = platform.slo
    print(f"fleet SLO compliance at t={platform.now:.0f}s "
          f"(seed {args.seed}):")
    print(tracker.render())
    if args.report_out:
        Path(args.report_out).write_text(
            tracker.to_json(), encoding="utf-8"
        )
        print(f"SLO report written to {args.report_out}")
    if args.prom_out:
        from repro.obs.prom import render_prometheus

        Path(args.prom_out).write_text(
            render_prometheus(
                telemetry=platform.telemetry, slo=tracker, deterministic=True
            ),
            encoding="utf-8",
        )
        print(f"Prometheus snapshot written to {args.prom_out}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import all_scenarios, run_scenario

    if args.scenario == "list":
        for name, scenario in sorted(all_scenarios().items()):
            kinds = ", ".join(
                sorted({fault.kind for fault in scenario.faults})
            )
            bound = (
                f"mttr<={scenario.expected_max_mttr:g}s"
                if scenario.expected_max_mttr is not None
                else "no mttr bound"
            )
            print(f"  {name:36s} [{kinds}] ({bound})")
            print(f"  {'':36s} {scenario.description}")
        return 0
    control = {} if not args.control else {
        "durable_checkpoints": False,
        "hot_standby": False,
        "slow_node_detection": False,
    }
    try:
        result = run_scenario(
            args.scenario, seed=args.seed, replicas=args.replicas,
            **control,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    print(result.render())
    if args.timeline_out:
        Path(args.timeline_out).write_text(
            result.timeline_text + "\n", encoding="utf-8"
        )
        print(f"timeline written to {args.timeline_out}")
    if args.telemetry_out:
        Path(args.telemetry_out).write_text(
            result.telemetry_jsonl, encoding="utf-8"
        )
        print(f"deterministic telemetry written to {args.telemetry_out}")
    if args.slo_out:
        Path(args.slo_out).write_text(
            result.slo_report_json, encoding="utf-8"
        )
        print(f"SLO report written to {args.slo_out}")
    if not result.converged:
        print("FAIL: scenario did not converge", file=sys.stderr)
        return 1
    if args.max_mttr is not None and (
        result.max_mttr is None or result.max_mttr > args.max_mttr
    ):
        print(
            f"FAIL: worst MTTR {result.max_mttr} exceeds "
            f"--max-mttr {args.max_mttr}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_growth(args: argparse.Namespace) -> int:
    from repro.analysis import Table
    from repro.workloads import ScubaFleet

    fleet = ScubaFleet(args.jobs, seed=args.seed)
    table = Table(["month", "traffic (MB/s)"])
    for month in range(13):
        table.add_row(month, fleet.total_rate_mb() * 2 ** (month / 12.0))
    print(table.render())
    return 0


def cmd_footprints(args: argparse.Namespace) -> int:
    from repro.analysis import format_cdf
    from repro.metrics.aggregate import fraction_below
    from repro.workloads import ScubaFleet

    fleet = ScubaFleet(args.jobs, seed=args.seed)
    cpus, memories = fleet.task_footprints()
    print(format_cdf("task CPU (cores)", cpus))
    print()
    print(format_cdf("task memory (GB)", memories))
    print(f"\ntasks < 1 core: {fraction_below(cpus, 1.0):.1%}  "
          f"tasks < 2 GB: {fraction_below(memories, 2.0):.2%}")
    return 0


def benchmark_index() -> list:
    """(filename, description) for every harness in ``benchmarks/``.

    Derived from each file's docstring so the listing can never drift
    from the directory contents again.
    """
    import ast

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        return []
    index = []
    for path in sorted(bench_dir.glob("test_*.py")):
        try:
            doc = ast.get_docstring(ast.parse(path.read_text())) or ""
        except SyntaxError:
            doc = ""
        first_line = doc.strip().splitlines()[0] if doc.strip() else ""
        index.append((path.name, first_line or "(no description)"))
    return index


def cmd_parallel(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        return _cmd_parallel_scenario(args)
    from repro.sim.parallel import run_fleet, standard_fleet

    spec = standard_fleet(
        seed=args.seed,
        total_tasks=args.tasks,
        num_jobs=args.jobs,
        num_shards=args.shards,
        duration=args.minutes * 60.0,
        step_interval=args.step,
        round_interval=args.round,
    )
    result = run_fleet(
        spec, partitions=args.partitions, use_processes=args.processes,
        load_aware=args.load_aware,
    )
    mode = "processes" if result.used_processes else "in-process"
    print(
        f"fleet: {spec.total_tasks} tasks / {len(spec.jobs)} jobs / "
        f"{spec.num_shards} shards"
    )
    print(
        f"ran {result.rounds} rounds x {args.partitions} partitions "
        f"({mode}) in {result.wall_s:.2f}s wall"
    )
    if result.load_aware:
        print(f"load-aware plan: skew {result.plan_skew:.3f} (max/mean)")
    final = result.fingerprint["final"]
    total_tasks = sum(job["task_count"] for job in final.values())
    total_lag = sum(job["lag_u"] for job in final.values()) / 1e6
    print(
        f"final: {total_tasks} tasks, {total_lag:.1f} MB lag, "
        f"{result.fingerprint['crash_total']} crashes, "
        f"{len(result.fingerprint['actions'])} control actions"
    )
    for name, payload in (
        ("fingerprint", args.fingerprint_out),
        ("timeline", args.timeline_out),
        ("slo", args.slo_out),
        ("telemetry", args.telemetry_out),
    ):
        if payload is None:
            continue
        text = {
            "fingerprint": result.fingerprint_json,
            "timeline": result.timeline_text,
            "slo": result.slo_json,
            "telemetry": result.telemetry_jsonl,
        }[name]
        Path(payload).write_text(text, encoding="utf-8")
        print(f"{name} written to {payload}")
    return 0


def _cmd_parallel_scenario(args: argparse.Namespace) -> int:
    """``repro parallel --scenario``: a chaos drill on the platform's
    parallel data plane (exports byte-identical at every partition
    count)."""
    import time

    from repro.chaos.scenarios import scenario_names
    from repro.chaos.runner import run_scenario

    if args.scenario == "list":
        for name in scenario_names():
            print(name)
        return 0
    started = time.perf_counter()
    result = run_scenario(
        args.scenario,
        seed=args.seed,
        data_plane_partitions=args.partitions,
        data_plane_processes=args.processes,
    )
    wall = time.perf_counter() - started
    print(result.render())
    print(
        f"parallel data plane: {result.data_plane_partitions} partition(s)"
        f"{' (processes)' if args.processes else ''}, "
        f"{result.dataplane_ticks} ticks, plan skew "
        f"{result.plan_skew:.3f}, {wall:.2f}s wall"
    )
    for name, path, text in (
        ("fingerprint", args.fingerprint_out, result.fingerprint_json),
        ("timeline", args.timeline_out, result.timeline_text),
        ("slo", args.slo_out, result.slo_report_json),
        ("telemetry", args.telemetry_out, result.telemetry_jsonl),
        ("trace", args.trace_out, result.trace_jsonl),
    ):
        if path is None:
            continue
        Path(path).write_text(text, encoding="utf-8")
        print(f"{name} written to {path}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    experiments = benchmark_index()
    if not experiments:
        print("benchmarks/ directory not found", file=sys.stderr)
        return 1
    for filename, description in experiments:
        print(f"  benchmarks/{filename:35s} {description}")
    print("\nrun with: pytest benchmarks/ --benchmark-only -s")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Turbine reproduction (Mei et al., ICDE 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a small deployment")
    demo.add_argument("--hosts", type=int, default=3)
    demo.add_argument("--jobs", type=int, default=4)
    demo.add_argument("--minutes", type=float, default=30.0)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--trace-out", metavar="FILE", default=None,
                      help="enable tracing and export trace JSONL here")
    demo.add_argument("--telemetry-out", metavar="FILE", default=None,
                      help="enable instrumentation and export telemetry "
                           "JSONL here")
    demo.set_defaults(func=cmd_demo)

    timeline = sub.add_parser(
        "timeline", help="incident scenario: merged operator timeline"
    )
    timeline.add_argument("--minutes", type=float, default=40.0)
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument("--since", type=float, default=0.0)
    timeline.add_argument("--until", type=float, default=None)
    timeline.add_argument("--source", action="append", metavar="SOURCE",
                          help="only events from this source (repeatable, "
                               "exact match)")
    timeline.add_argument("--kind", action="append", metavar="KIND",
                          help="only events whose kind contains this "
                               "substring (repeatable)")
    timeline.add_argument("--replication", action="store_true",
                          help="run the Job Store as a replica group and "
                               "kill the leader at t=25min (adds the "
                               "'replication' timeline source)")
    timeline.set_defaults(func=cmd_timeline)

    trace = sub.add_parser(
        "trace", help="causal decision chain for one job"
    )
    trace.add_argument("job_id", help="job to reconstruct, e.g. demo/job-0")
    trace.add_argument("--minutes", type=float, default=40.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--input", metavar="FILE", default=None,
                       help="read trace JSONL (from demo --trace-out) "
                            "instead of running the incident scenario")
    trace.add_argument("--critical-path", action="store_true",
                       help="show the slowest causal chain and which "
                            "layer cost the most time")
    trace.set_defaults(func=cmd_trace)

    slo = sub.add_parser(
        "slo", help="incident scenario: fleet SLO compliance table"
    )
    slo.add_argument("--minutes", type=float, default=40.0)
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--report-out", metavar="FILE", default=None,
                     help="write the deterministic SLO report JSON here")
    slo.add_argument("--prom-out", metavar="FILE", default=None,
                     help="write a Prometheus text-format snapshot here")
    slo.set_defaults(func=cmd_slo)

    chaos = sub.add_parser(
        "chaos", help="run a chaos scenario and print the MTTR report"
    )
    chaos.add_argument("scenario",
                       help="scenario name, or 'list' to enumerate")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--replicas", type=int, default=None,
                       help="run the Job Store as a replica group of this "
                            "size (replication scenarios default to 3)")
    chaos.add_argument("--max-mttr", type=float, default=None,
                       help="exit 1 if any fault's recovery exceeds this "
                            "many seconds (or never happens)")
    chaos.add_argument("--control", action="store_true",
                       help="control arm: run with checkpoints, hot "
                            "standbys, and slow-node detection all "
                            "forced off (what the fault costs without "
                            "the resiliency features)")
    chaos.add_argument("--timeline-out", metavar="FILE", default=None,
                       help="write the scenario's incident timeline here")
    chaos.add_argument("--telemetry-out", metavar="FILE", default=None,
                       help="write deterministic telemetry JSONL here")
    chaos.add_argument("--slo-out", metavar="FILE", default=None,
                       help="write the deterministic SLO breach/budget "
                            "report JSON here")
    chaos.set_defaults(func=cmd_chaos)

    growth = sub.add_parser("growth", help="Fig. 1-style growth table")
    growth.add_argument("--jobs", type=int, default=1000)
    growth.add_argument("--seed", type=int, default=0)
    growth.set_defaults(func=cmd_growth)

    footprints = sub.add_parser("footprints", help="Fig. 5-style CDFs")
    footprints.add_argument("--jobs", type=int, default=5000)
    footprints.add_argument("--seed", type=int, default=0)
    footprints.set_defaults(func=cmd_footprints)

    parallel = sub.add_parser(
        "parallel",
        help="run a fleet on the sharded parallel substrate",
    )
    parallel.add_argument("--partitions", type=int, default=1,
                          help="event-engine partitions (exports are "
                               "byte-identical for every value)")
    parallel.add_argument("--tasks", type=int, default=1000)
    parallel.add_argument("--jobs", type=int, default=10)
    parallel.add_argument("--shards", type=int, default=64)
    parallel.add_argument("--minutes", type=float, default=1440.0,
                          help="simulated duration (default: one day)")
    parallel.add_argument("--step", type=float, default=300.0,
                          help="data-plane step interval, seconds")
    parallel.add_argument("--round", type=float, default=3600.0,
                          help="control-plane round barrier, seconds")
    parallel.add_argument("--seed", type=int, default=0)
    parallel.add_argument("--processes", action="store_true",
                          help="run partitions in worker processes")
    parallel.add_argument("--load-aware", action="store_true",
                          help="replace the modulo shard fold with a "
                               "measured-cost LPT plan (fleet mode)")
    parallel.add_argument("--scenario", metavar="NAME", default=None,
                          help="run a registered chaos drill on the full "
                               "platform's parallel data plane instead of "
                               "the fleet substrate ('list' to enumerate)")
    parallel.add_argument("--fingerprint-out", metavar="FILE", default=None,
                          help="write the deterministic run fingerprint here")
    parallel.add_argument("--timeline-out", metavar="FILE", default=None,
                          help="write the control-plane timeline here")
    parallel.add_argument("--slo-out", metavar="FILE", default=None,
                          help="write the SLO report JSON here")
    parallel.add_argument("--telemetry-out", metavar="FILE", default=None,
                          help="write deterministic telemetry JSONL here")
    parallel.add_argument("--trace-out", metavar="FILE", default=None,
                          help="write the causal trace JSONL here "
                               "(scenario mode)")
    parallel.set_defaults(func=cmd_parallel)

    experiments = sub.add_parser("experiments", help="list benchmarks")
    experiments.set_defaults(func=cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
