"""Exception hierarchy for the Turbine reproduction.

Every error raised by the library derives from :class:`TurbineError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class TurbineError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(TurbineError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, stepping a finished engine.
    """


class ClusterError(TurbineError):
    """A cluster substrate operation failed (unknown host, over-allocation)."""


class ScribeError(TurbineError):
    """A message-bus operation failed (unknown category, bad offset)."""


class JobStoreError(TurbineError):
    """A job store operation failed (unknown job, malformed config)."""


class VersionConflictError(JobStoreError):
    """Optimistic concurrency control rejected a write.

    Raised when a read-modify-write cycle observes that the expected-config
    version changed between the read and the write (paper section III-A).
    Callers are expected to re-read and retry.
    """


class SyncError(TurbineError):
    """A State Syncer execution plan failed part-way through.

    The syncer aborts the plan and re-schedules it on the next round
    (paper section III-B); repeated failures quarantine the job.
    """


class JobQuarantinedError(SyncError):
    """The job failed synchronization too many times and was quarantined."""


class PlacementError(TurbineError):
    """The shard placement algorithm could not satisfy its constraints."""


class CapacityError(TurbineError):
    """The cluster does not have the capacity for a requested allocation."""


class ScalerError(TurbineError):
    """The auto scaler was asked to produce an invalid plan."""


class DegradedModeError(TurbineError):
    """An operation is unavailable because a dependency is degraded.

    Turbine deliberately keeps running in degraded mode when individual
    components fail (paper section II); operations that *require* the failed
    component raise this error instead of blocking.
    """


class ServiceUnavailableError(DegradedModeError):
    """A control-plane service announced it is down (an availability
    window, not a connection failure).

    The distinction matters for the section IV-C protocol: a Task Manager
    that cannot *reach* the Shard Manager must assume split-brain and
    reboot after its 40-second timeout, but a Shard Manager that answers
    "I am unavailable" is a service-level outage — every container is
    equally affected, no fail-over can happen, and the correct degraded
    mode is "keep your shards and keep processing".
    """


class CircuitOpenError(DegradedModeError):
    """A resilience circuit breaker is open: the dependency failed
    repeatedly and calls are short-circuited until the breaker half-opens.

    Subclasses :class:`DegradedModeError` so existing degraded-mode
    handling treats a tripped breaker like an unavailable dependency.
    """
