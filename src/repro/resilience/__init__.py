"""Shared resilience policy kit (retries, breakers, last-known-good).

See :mod:`repro.resilience.policy` for the rationale; components build
one :class:`Dependency` per call edge and route every cross-component
call through it.
"""

from repro.resilience.policy import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Dependency,
    LastKnownGood,
    RetryPolicy,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "Dependency",
    "LastKnownGood",
    "RetryPolicy",
]
