"""Reusable cross-component resilience policies.

The paper's "lessons learned" boil down to one discipline: every layer
must assume every other layer can be unavailable, and degrade instead of
failing (sections IV-C/IV-D). Before this module each component enforced
that discipline ad hoc — scattered ``if not service.available`` checks and
``except DegradedModeError`` clauses. The policy kit centralizes the
patterns:

* :class:`RetryPolicy` — exponential backoff with optional jitter drawn
  from a forked :class:`~repro.sim.rng.SeededRng` stream, so retries are
  deterministic and replayable like everything else in the simulation.
* :class:`CircuitBreaker` — the classic CLOSED → OPEN → HALF_OPEN state
  machine on simulation time. With ``reset_timeout`` at or below the
  caller's tick period every periodic tick doubles as the half-open
  probe, which preserves the recovery-detection latency the per-tick
  boolean checks used to give.
* :class:`LastKnownGood` — a timestamped cache of the last successful
  result, the paper's "containers run tasks based on existing snapshots"
  fallback made reusable.
* :class:`Dependency` — one guarded edge from a component to a service it
  calls. Counts calls/failures/short-circuits into :class:`Telemetry`
  (``resilience.<name>.*``, all deterministic instruments) and classifies
  failures, so call sites write ``dep.call(...)`` or ``dep.probe(...)``
  instead of re-implementing the availability dance.

Synchronous retries are *immediate* re-attempts: simulation time cannot
advance inside a call, so in-call backoff would be a lie. Backoff applies
to *scheduled* retries — callers that re-arm themselves via
``engine.call_in`` ask the policy for :meth:`RetryPolicy.delay`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.errors import CircuitOpenError, DegradedModeError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

#: Breaker states (plain strings: cheap, printable, JSON-friendly).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RetryPolicy:
    """Exponential backoff schedule: ``base * multiplier**attempt``.

    ``max_attempts`` governs synchronous (immediate) re-attempts inside
    :meth:`Dependency.call`; :meth:`delay` serves callers that schedule
    their own retries on the engine. ``jitter`` is the +/- fraction of the
    delay randomized per call; pass an rng (fork one per component) to
    keep draws off the shared stream.
    """

    def __init__(
        self,
        max_attempts: int = 1,
        base_delay: float = 1.0,
        multiplier: float = 2.0,
        max_delay: float = 300.0,
        jitter: float = 0.0,
        retry_on: Tuple[Type[BaseException], ...] = (DegradedModeError,),
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retry_on = retry_on

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = self.base_delay * (self.multiplier ** max(0, attempt))
        raw = min(raw, self.max_delay)
        if self.jitter and rng is not None:
            raw += raw * rng.uniform(-self.jitter, self.jitter)
        return max(0.0, raw)


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN breaker on simulation time."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.times_opened = 0

    def allows(self, now: float) -> bool:
        """Whether a call may proceed; flips OPEN → HALF_OPEN when the
        reset timeout has elapsed (the caller becomes the probe)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (
                self.opened_at is not None
                and now - self.opened_at >= self.reset_timeout
            ):
                self.state = HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: let the probe through

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.times_opened += 1
            self.state = OPEN
            self.opened_at = now


class LastKnownGood:
    """The last successful result of a call, with its freshness."""

    def __init__(self) -> None:
        self._value: Any = None
        self._stored_at: Optional[float] = None

    @property
    def has_value(self) -> bool:
        return self._stored_at is not None

    def store(self, value: Any, now: float) -> None:
        self._value = value
        self._stored_at = now

    def get(self, default: Any = None) -> Any:
        return self._value if self.has_value else default

    def age(self, now: float) -> float:
        """Seconds since the cached value was stored (inf when empty)."""
        if self._stored_at is None:
            return float("inf")
        return now - self._stored_at


class Dependency:
    """One guarded call edge from a component to a service.

    Every cross-component call goes through :meth:`call` (raise on
    failure) or :meth:`probe` (return a default on degraded-mode
    failures). Both count into telemetry under ``resilience.<name>.*``;
    counter values are functions of simulation decisions only, so they
    appear in deterministic exports and same-seed runs must agree on them.
    """

    def __init__(
        self,
        name: str,
        clock: Optional[Callable[[], float]] = None,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        rng=None,
    ) -> None:
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._telemetry = telemetry or NULL_TELEMETRY
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.rng = rng
        self.last_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Guarded calls
    # ------------------------------------------------------------------
    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` under this policy; raise its failure when exhausted.

        Degraded-mode failures (and anything in ``retry.retry_on``) are
        retried up to ``retry.max_attempts`` times synchronously; other
        exceptions propagate immediately after being counted.
        """
        now = self._clock()
        if self.breaker is not None and not self.breaker.allows(now):
            self._inc("short_circuits")
            raise CircuitOpenError(
                f"dependency {self.name} circuit is open"
            )
        attempts = self.retry.max_attempts
        for attempt in range(attempts):
            self._inc("calls")
            try:
                result = fn(*args, **kwargs)
            except self.retry.retry_on as error:
                self._note_failure(error, now)
                if attempt + 1 >= attempts:
                    raise
                self._inc("retries")
            except BaseException as error:
                self._note_failure(error, now)
                raise
            else:
                self.last_error = None
                if self.breaker is not None:
                    self.breaker.record_success()
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    def probe(
        self, fn: Callable[..., Any], *args: Any, default: Any = None, **kwargs: Any
    ) -> Any:
        """Like :meth:`call` but absorb degraded-mode failures.

        Returns ``default`` when the dependency is unavailable (including
        an open breaker) — the graceful path for periodic callers that
        must keep ticking through an outage.
        """
        try:
            return self.call(fn, *args, **kwargs)
        except DegradedModeError:
            self._inc("fallbacks")
            return default

    def schedule_delay(self, attempt: int) -> float:
        """Backoff for a caller-scheduled retry (uses this edge's rng)."""
        return self.retry.delay(attempt, rng=self.rng)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_failure(self, error: BaseException, now: float) -> None:
        self.last_error = error
        if isinstance(error, DegradedModeError):
            self._inc("unavailable")
        else:
            self._inc("failures")
        if self.breaker is not None:
            was_open = self.breaker.state == OPEN
            self.breaker.record_failure(now)
            if self.breaker.state == OPEN and not was_open:
                self._inc("breaker_opened")

    def _inc(self, what: str) -> None:
        self._telemetry.inc(f"resilience.{self.name}.{what}")

    def __repr__(self) -> str:
        state = self.breaker.state if self.breaker is not None else "no-breaker"
        return f"Dependency({self.name!r}, breaker={state})"
