"""The Provision Service: optimized IR → Turbine jobs.

"A stream pipeline may contain multiple jobs, for example aggregation
after data shuffling." (paper section II). The service cuts the optimized
stream graph at shuffle boundaries into *stages*; each stage becomes one
Turbine job, and every cut edge becomes an intermediate Scribe category
(jobs never talk to each other directly).

Simplification vs. production: a Turbine job here reads a single input
category, so a join stage's two upstream stages write into one shared
keyed intermediate category (a unioned, tagged stream) rather than two.
This preserves the property the control plane cares about — stages
decouple through the persistent bus — while keeping the job model simple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.jobs.model import JobSpec
from repro.provision.ir import IRNode, StreamGraph, compile_query
from repro.provision.optimizer import optimize
from repro.provision.query import Query, QueryError
from repro.types import Priority

#: Default engine throughput assumption for sizing new stages (MB/s per
#: thread), refined later at runtime by the scaler's pattern analyzer.
DEFAULT_RATE_PER_THREAD = 2.0

#: Target utilization of a task at provisioning time (leave headroom).
TARGET_UTILIZATION = 0.7


@dataclass
class Stage:
    """A maximal shuffle-free subgraph — one Turbine job."""

    stage_id: int
    nodes: List[IRNode] = field(default_factory=list)
    input_category: str = ""
    output_category: Optional[str] = None
    input_rate_mb: float = 0.0

    @property
    def stateful(self) -> bool:
        return any(node.stateful for node in self.nodes)

    @property
    def key_cardinality(self) -> int:
        return sum(
            getattr(node.op, "key_cardinality", 0)
            for node in self.nodes
            if node.stateful
        )

    @property
    def reduction_ratio(self) -> float:
        """Output bytes per input byte through this stage's operators."""
        ratio = 1.0
        for node in self.nodes:
            if node.kind == "filter":
                ratio *= node.op.selectivity
            elif node.kind == "project":
                parent_width = max(
                    1, len(node.op.parent.output_schema().fields)
                )
                ratio *= len(node.op.columns) / parent_width
            elif node.kind == "aggregate":
                ratio *= 0.1
            elif node.kind == "window":
                ratio *= 0.3
        return ratio


@dataclass
class ProvisionedPipeline:
    """The result of provisioning one query."""

    query_name: str
    stages: List[Stage]
    job_specs: List[JobSpec]
    intermediate_categories: List[str]

    @property
    def num_jobs(self) -> int:
        return len(self.job_specs)


class ProvisionService:
    """Validates, compiles, optimizes, and provisions queries."""

    def __init__(
        self,
        rate_per_thread_mb: float = DEFAULT_RATE_PER_THREAD,
        default_priority: Priority = Priority.NORMAL,
    ) -> None:
        if rate_per_thread_mb <= 0:
            raise QueryError("rate_per_thread_mb must be positive")
        self._rate_per_thread = rate_per_thread_mb
        self._priority = default_priority

    # ------------------------------------------------------------------
    # Planning (pure)
    # ------------------------------------------------------------------
    def plan(self, query: Query, optimize_ir: bool = True) -> ProvisionedPipeline:
        """Full pipeline: validate → compile → optimize → cut → size.

        ``optimize_ir=False`` skips the rewrite rules (for ablations).
        """
        graph = compile_query(query)
        if optimize_ir:
            graph = optimize(graph)
        stages = self._cut_stages(graph)
        specs = [self._size_stage(query.name, stage) for stage in stages]
        intermediates = [
            stage.input_category
            for stage in stages
            if stage.input_category.startswith(f"{query.name}/stage-")
        ]
        return ProvisionedPipeline(
            query_name=query.name,
            stages=stages,
            job_specs=specs,
            intermediate_categories=intermediates,
        )

    # ------------------------------------------------------------------
    # Deployment (side-effecting)
    # ------------------------------------------------------------------
    def provision(
        self, query: Query, platform, optimize_ir: bool = True
    ) -> ProvisionedPipeline:
        """Plan the query and provision every stage job on a platform.

        ``platform`` is a :class:`repro.platform.Turbine`; intermediate
        categories are created with a partition count matching the widest
        consumer.
        """
        pipeline = self.plan(query, optimize_ir=optimize_ir)
        for spec in pipeline.job_specs:
            partitions = max(32, spec.task_count_limit)
            platform.provision(spec, partitions=partitions)
        return pipeline

    # ------------------------------------------------------------------
    # Stage cutting
    # ------------------------------------------------------------------
    def _cut_stages(self, graph: StreamGraph) -> List[Stage]:
        """Assign every non-shuffle node to a stage.

        A node joins its parent's stage unless the edge comes out of a
        shuffle (or merges two different stages, as at a join), in which
        case a new stage starts and reads the shuffle's intermediate
        category.
        """
        stage_of: Dict[int, Stage] = {}
        stages: List[Stage] = []

        def new_stage() -> Stage:
            stage = Stage(stage_id=len(stages))
            stages.append(stage)
            return stage

        for node in graph.topological():
            if node.kind == "shuffle":
                continue  # boundaries, not members
            parent_stages: List[Stage] = []
            crosses_shuffle = False
            for parent in node.inputs:
                if parent.kind == "shuffle":
                    crosses_shuffle = True
                elif parent.node_id in stage_of:
                    parent_stages.append(stage_of[parent.node_id])
            distinct = {id(s) for s in parent_stages}
            if node.kind == "source":
                stage = new_stage()
                stage.input_category = node.op.category
                stage.input_rate_mb = node.op.rate_mb
            elif crosses_shuffle or len(distinct) > 1:
                stage = new_stage()
                stage.input_category = (
                    f"{graph.query_name}/stage-{stage.stage_id}-input"
                )
                stage.input_rate_mb = sum(
                    parent.rate_mb for parent in node.inputs
                )
                # Upstream stages write into the new intermediate.
                for parent in node.inputs:
                    upstream = (
                        stage_of.get(parent.inputs[0].node_id)
                        if parent.kind == "shuffle" and parent.inputs
                        else stage_of.get(parent.node_id)
                    )
                    if upstream is not None and upstream.output_category is None:
                        upstream.output_category = stage.input_category
            else:
                stage = parent_stages[0]
            stage.nodes.append(node)
            stage_of[node.node_id] = stage
            if node.kind == "sink":
                stage.output_category = node.op.category
        return stages

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def _size_stage(self, query_name: str, stage: Stage) -> JobSpec:
        """Initial sizing from the rate estimates.

        The Auto Scaler owns sizing after launch; the provisioner only
        needs to be in the right ballpark (the staging-period bootstrap).
        """
        capacity_per_task = self._rate_per_thread * TARGET_UTILIZATION
        task_count = max(1, math.ceil(stage.input_rate_mb / capacity_per_task))
        return JobSpec(
            job_id=f"{query_name}/stage-{stage.stage_id}",
            input_category=stage.input_category,
            task_count=min(task_count, 32),
            threads_per_task=1,
            rate_per_thread_mb=self._rate_per_thread,
            stateful=stage.stateful,
            state_key_cardinality=stage.key_cardinality,
            output_category=stage.output_category or "",
            output_ratio=stage.reduction_ratio,
            priority=self._priority,
        )
