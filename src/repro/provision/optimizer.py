"""Rule-based IR optimization.

The paper mentions compilation and optimization before provisioning
(Fig. 2) without detailing the rules; the classical streaming rewrites
implemented here are:

* **predicate pushdown** — filters move below shuffles, so less data
  crosses the (Scribe-backed, therefore expensive) stage boundary;
* **projection pushdown** — projections likewise move below shuffles when
  they keep the shuffle key;
* **filter fusion** — adjacent filters combine into one (selectivities
  multiply), shrinking the operator chain each task executes.

Each rewrite preserves the output schema — asserted by the optimizer
itself after every pass, so a bad rule fails loudly rather than silently
corrupting a pipeline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.provision.ir import IRNode, StreamGraph
from repro.provision.query import Filter, Project, QueryError, Shuffle


def optimize(graph: StreamGraph, max_passes: int = 10) -> StreamGraph:
    """Apply rewrite rules to fixpoint (bounded by ``max_passes``)."""
    schema_before = graph.sink.op.output_schema()
    for __ in range(max_passes):
        changed = False
        changed |= _push_filters_below_shuffles(graph)
        changed |= _push_projections_below_shuffles(graph)
        changed |= _fuse_adjacent_filters(graph)
        if not changed:
            break
    schema_after = graph.sink.op.output_schema()
    if schema_after != schema_before:
        raise QueryError(
            f"optimizer changed the output schema of {graph.query_name!r}"
        )
    _recompute_rates(graph)
    return graph


# ----------------------------------------------------------------------
# Rules (operate on the IR linkage; the op objects are re-linked to match)
# ----------------------------------------------------------------------
def _push_filters_below_shuffles(graph: StreamGraph) -> bool:
    """filter(shuffle(x)) → shuffle(filter(x))."""
    changed = False
    for node in graph.topological():
        if node.kind != "filter" or len(node.inputs) != 1:
            continue
        below = node.inputs[0]
        if below.kind != "shuffle":
            continue
        # The filter's field must exist below the shuffle (it always does
        # — shuffles do not change schemas — but assert anyway).
        inner = below.inputs[0]
        if not inner.op.output_schema().has(node.op.predicate_field):
            continue
        _swap_parent_child(graph, upper=node, lower=below)
        changed = True
    return changed


def _push_projections_below_shuffles(graph: StreamGraph) -> bool:
    """project(shuffle(x)) → shuffle(project(x)) when the key survives."""
    changed = False
    for node in graph.topological():
        if node.kind != "project" or len(node.inputs) != 1:
            continue
        below = node.inputs[0]
        if below.kind != "shuffle":
            continue
        if below.op.key not in node.op.columns:
            continue  # dropping the shuffle key would break partitioning
        _swap_parent_child(graph, upper=node, lower=below)
        changed = True
    return changed


def _fuse_adjacent_filters(graph: StreamGraph) -> bool:
    """filter(filter(x)) → filter(x) with combined selectivity."""
    for node in graph.topological():
        if node.kind != "filter":
            continue
        below = node.inputs[0]
        if below.kind != "filter":
            continue
        combined = Filter(
            parent=below.op.parent,
            predicate_field=node.op.predicate_field,
            selectivity=node.op.selectivity * below.op.selectivity,
        )
        node.op = combined
        node.inputs = list(below.inputs)
        _replace_uses(graph, old=below, new=None)
        graph.nodes = [n for n in graph.nodes if n.node_id != below.node_id]
        return True
    return False


# ----------------------------------------------------------------------
# Linkage helpers
# ----------------------------------------------------------------------
def _swap_parent_child(graph: StreamGraph, upper: IRNode, lower: IRNode) -> None:
    """Swap a unary ``upper`` with its unary ``lower`` input in the DAG.

    Before: users -> upper -> lower -> inner
    After:  users -> lower -> upper -> inner
    """
    inner = lower.inputs[0]
    # Re-link the IR nodes.
    for user in graph.nodes:
        user.inputs = [lower if p is upper else p for p in user.inputs]
    if graph.sink is upper:
        graph.sink = lower
    upper.inputs = [inner]
    lower.inputs = [upper]
    # Re-link the operator objects to keep schemas derivable.
    _relink_op(upper, inner)
    _relink_op(lower, upper)


def _relink_op(node: IRNode, new_parent: IRNode) -> None:
    op = node.op
    if isinstance(op, Filter):
        node.op = Filter(new_parent.op, op.predicate_field, op.selectivity)
    elif isinstance(op, Project):
        node.op = Project(new_parent.op, op.columns)
    elif isinstance(op, Shuffle):
        node.op = Shuffle(new_parent.op, op.key)
    else:  # pragma: no cover - only unary rewrites call this
        raise QueryError(f"cannot relink operator kind {node.kind}")
    node.inputs = [new_parent]


def _replace_uses(graph: StreamGraph, old: IRNode, new: Optional[IRNode]) -> None:
    for node in graph.nodes:
        node.inputs = [
            (new if p is old else p) for p in node.inputs if new or p is not old
        ]


def _recompute_rates(graph: StreamGraph) -> None:
    from repro.provision.ir import _estimate_rate

    for node in graph.topological():
        node.rate_mb = _estimate_rate(node)
