"""Batch-mode execution of a query over warehouse data.

The same validated/optimized stream graph that the Provision Service cuts
into streaming jobs can run in batch mode over historical partitions —
the paper's backfill path ("The batch mode is useful when processing
historical data"). Stages execute sequentially (a stage's input must be
fully materialized before a shuffle consumer starts, MapReduce-style);
within a stage, workers process partitions in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.provision.query import Query, QueryError
from repro.provision.service import ProvisionService, Stage
from repro.warehouse.tables import DataWarehouse


@dataclass
class BatchStageResult:
    """Execution record of one batch stage."""

    stage_id: int
    input_mb: float
    output_mb: float
    duration_seconds: float


@dataclass
class BatchResult:
    """Execution record of a whole batch run."""

    query_name: str
    first_day: int
    last_day: int
    workers: int
    stages: List[BatchStageResult] = field(default_factory=list)

    @property
    def total_duration_seconds(self) -> float:
        return sum(stage.duration_seconds for stage in self.stages)

    @property
    def total_input_mb(self) -> float:
        return self.stages[0].input_mb if self.stages else 0.0

    @property
    def output_mb(self) -> float:
        return self.stages[-1].output_mb if self.stages else 0.0


class BatchRunner:
    """Plans and 'executes' a query over a warehouse date range.

    Execution is analytic: bytes flow through the stage pipeline with each
    stage's reduction ratio taken from the optimized IR's rate estimates,
    and stage duration is ``input / (workers · rate_per_worker)``. That is
    exactly the level of fidelity the management layer needs to reason
    about backfills (how long, how much intermediate data).
    """

    def __init__(
        self,
        warehouse: DataWarehouse,
        rate_per_worker_mb: float = 8.0,
    ) -> None:
        if rate_per_worker_mb <= 0:
            raise QueryError("rate_per_worker_mb must be positive")
        self._warehouse = warehouse
        self._rate_per_worker = rate_per_worker_mb
        self._provisioner = ProvisionService()

    def run(
        self,
        query: Query,
        first_day: int,
        last_day: int,
        workers: int = 8,
    ) -> BatchResult:
        """Execute ``query`` over the inclusive day range."""
        if workers <= 0:
            raise QueryError(f"workers must be positive: {workers}")
        pipeline = self._provisioner.plan(query)
        result = BatchResult(
            query_name=query.name, first_day=first_day, last_day=last_day,
            workers=workers,
        )
        carried: float = 0.0
        for stage in pipeline.stages:
            input_mb = self._stage_input_mb(stage, first_day, last_day, carried)
            ratio = stage.reduction_ratio
            output_mb = input_mb * ratio
            duration = input_mb / (workers * self._rate_per_worker)
            result.stages.append(
                BatchStageResult(
                    stage_id=stage.stage_id,
                    input_mb=input_mb,
                    output_mb=output_mb,
                    duration_seconds=duration,
                )
            )
            carried = output_mb
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stage_input_mb(
        self, stage: Stage, first_day: int, last_day: int, carried: float
    ) -> float:
        """Warehouse partitions for source stages, the previous stage's
        output for shuffle consumers."""
        if any(node.kind == "source" for node in stage.nodes):
            table = self._warehouse.get_table(stage.input_category)
            return table.size_between(first_day, last_day)
        return carried
