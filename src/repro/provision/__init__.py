"""The provisioning pipeline upstream of Turbine (paper Fig. 2).

"Application developers construct a data processing pipeline using
Facebook's stream processing application framework, which supports APIs at
both declarative level and imperative level ... After a query passes all
validation checks (e.g., schema validation), it will be compiled to an
internal representation (IR), optimized, then sent to the Provision
Service. ... The Provision Service is responsible for generating runtime
configuration files and executables according to the selected mode."

This package implements that pipeline for the streaming mode: a small
operator-tree query API, schema validation, compilation to an IR,
rule-based optimization (predicate pushdown, projection pruning, operator
fusion), and a Provision Service that splits the optimized graph at
shuffle boundaries into Turbine jobs wired together through Scribe
categories.
"""

from repro.provision.ir import IRNode, StreamGraph, compile_query
from repro.provision.optimizer import optimize
from repro.provision.query import (
    Aggregate,
    Field,
    Filter,
    Join,
    Project,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
    Union,
    Window,
)
from repro.provision.service import ProvisionService, ProvisionedPipeline

__all__ = [
    "Query",
    "Schema",
    "Field",
    "Source",
    "Filter",
    "Project",
    "Aggregate",
    "Join",
    "Union",
    "Window",
    "Shuffle",
    "Sink",
    "compile_query",
    "optimize",
    "IRNode",
    "StreamGraph",
    "ProvisionService",
    "ProvisionedPipeline",
]
