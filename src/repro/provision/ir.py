"""The internal representation (IR) and the stream graph.

A validated query compiles to a DAG of :class:`IRNode` — one per operator
— which the optimizer rewrites and the Provision Service then cuts into
*stages* at shuffle boundaries. Each stage becomes one Turbine job; stages
communicate through Scribe categories, never directly ("The communication
between jobs is performed through Facebook's persistent message bus",
paper section II).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.provision.query import (
    Aggregate,
    Filter,
    Join,
    Operator,
    Project,
    Query,
    QueryError,
    Shuffle,
    Sink,
    Source,
    Union,
    Window,
)


@dataclass
class IRNode:
    """One operator in the IR DAG."""

    node_id: int
    kind: str           # source|filter|project|shuffle|aggregate|join|sink
    op: Operator
    inputs: List["IRNode"] = field(default_factory=list)
    #: Estimated output rate in MB/s (propagated through selectivities).
    rate_mb: float = 0.0

    @property
    def stateful(self) -> bool:
        return self.kind in ("aggregate", "join", "window")


_KINDS = {
    Source: "source",
    Filter: "filter",
    Project: "project",
    Shuffle: "shuffle",
    Aggregate: "aggregate",
    Join: "join",
    Union: "union",
    Window: "window",
    Sink: "sink",
}


@dataclass
class StreamGraph:
    """The IR DAG for one query, rooted at the sink node."""

    query_name: str
    sink: IRNode
    nodes: List[IRNode]

    def topological(self) -> List[IRNode]:
        """Nodes with inputs before users."""
        ordered: List[IRNode] = []
        seen = set()

        def visit(node: IRNode) -> None:
            for parent in node.inputs:
                visit(parent)
            if node.node_id not in seen:
                seen.add(node.node_id)
                ordered.append(node)

        visit(self.sink)
        return ordered

    def sources(self) -> List[IRNode]:
        return [node for node in self.topological() if node.kind == "source"]


def compile_query(query: Query) -> StreamGraph:
    """Validate and compile a query to its IR, with rate propagation."""
    query.validate()
    counter = itertools.count()
    memo: Dict[int, IRNode] = {}

    def build(op: Operator) -> IRNode:
        if id(op) in memo:
            return memo[id(op)]
        inputs = [build(parent) for parent in op.inputs]
        kind = _KINDS.get(type(op))
        if kind is None:
            raise QueryError(f"unknown operator type {type(op).__name__}")
        node = IRNode(next(counter), kind, op, inputs)
        node.rate_mb = _estimate_rate(node)
        memo[id(op)] = node
        return node

    sink_node = build(query.sink)
    nodes = list(memo.values())
    return StreamGraph(query.name, sink_node, nodes)


def _estimate_rate(node: IRNode) -> float:
    """Propagate rate estimates through the operators."""
    if node.kind == "source":
        return node.op.rate_mb  # type: ignore[union-attr]
    input_rate = sum(parent.rate_mb for parent in node.inputs)
    if node.kind == "filter":
        return input_rate * node.op.selectivity  # type: ignore[union-attr]
    if node.kind == "project":
        # Projection drops columns; approximate by kept-column fraction.
        op: Project = node.op  # type: ignore[assignment]
        parent_width = max(1, len(op.parent.output_schema().fields))
        return input_rate * len(op.columns) / parent_width
    if node.kind == "aggregate":
        # Aggregation emits per-key updates; typically a large reduction.
        return input_rate * 0.1
    if node.kind == "window":
        # Tumbling windows emit one row per key per window: a milder
        # reduction than a running aggregation.
        return input_rate * 0.3
    # shuffle, join, union, sink: pass through the combined input rate.
    return input_rate
