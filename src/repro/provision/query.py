"""The declarative query API: schemas and an operator tree.

"The complexity of the queries can vary from simple filtering and
projection to a complex graph with multiple join operators or
aggregations." (paper section II). The supported operators mirror the
transformations the paper lists: filtering, projection, aggregation,
joins, and data shuffling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import TurbineError


class QueryError(TurbineError):
    """A query failed validation (unknown fields, type mismatch, ...)."""


@dataclass(frozen=True)
class Field:
    """A named, typed column of a stream."""

    name: str
    dtype: str = "string"  # "string" | "int" | "float" | "bool"

    _VALID = ("string", "int", "float", "bool")

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("field name must be non-empty")
        if self.dtype not in self._VALID:
            raise QueryError(
                f"unknown dtype {self.dtype!r} for field {self.name!r}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered set of fields."""

    fields: Tuple[Field, ...]

    @classmethod
    def of(cls, *fields: Field) -> "Schema":
        return cls(tuple(fields))

    def names(self) -> List[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise QueryError(f"unknown field {name!r}; schema has {self.names()}")

    def has(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema(tuple(self.field(name) for name in names))

    def merge(self, other: "Schema") -> "Schema":
        """Union of two schemas (join output); duplicate names rejected."""
        overlap = set(self.names()) & set(other.names())
        if overlap:
            raise QueryError(f"join output has duplicate fields: {sorted(overlap)}")
        return Schema(self.fields + other.fields)


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
@dataclass
class Operator:
    """Base operator; inputs are other operators (a DAG, usually a tree)."""

    inputs: List["Operator"] = field(default_factory=list, init=False)

    def output_schema(self) -> Schema:
        raise NotImplementedError


@dataclass
class Source(Operator):
    """Reads a Scribe category with a declared schema."""

    category: str
    schema: Schema
    #: Estimated input rate, used by the provisioner for initial sizing.
    rate_mb: float = 1.0

    def __post_init__(self) -> None:
        self.inputs = []
        if not self.category:
            raise QueryError("source category must be non-empty")
        if self.rate_mb <= 0:
            raise QueryError("source rate must be positive")

    def output_schema(self) -> Schema:
        return self.schema


@dataclass
class Filter(Operator):
    """Keeps rows where ``predicate_field`` (a bool column) is true, or a
    comparison on a field holds. ``selectivity`` is the fraction kept."""

    parent: Operator
    predicate_field: str
    selectivity: float = 0.5

    def __post_init__(self) -> None:
        self.inputs = [self.parent]
        if not 0 < self.selectivity <= 1:
            raise QueryError(f"selectivity must be in (0, 1]: {self.selectivity}")

    def output_schema(self) -> Schema:
        schema = self.parent.output_schema()
        if not schema.has(self.predicate_field):
            raise QueryError(
                f"filter references unknown field {self.predicate_field!r}"
            )
        return schema


@dataclass
class Project(Operator):
    """Keeps only the named columns."""

    parent: Operator
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        self.inputs = [self.parent]
        if not self.columns:
            raise QueryError("projection must keep at least one column")

    def output_schema(self) -> Schema:
        return self.parent.output_schema().project(self.columns)


@dataclass
class Shuffle(Operator):
    """Repartitions the stream by a key (a stage boundary)."""

    parent: Operator
    key: str

    def __post_init__(self) -> None:
        self.inputs = [self.parent]

    def output_schema(self) -> Schema:
        schema = self.parent.output_schema()
        if not schema.has(self.key):
            raise QueryError(f"shuffle key {self.key!r} not in schema")
        return schema


@dataclass
class Aggregate(Operator):
    """Stateful group-by aggregation. Requires key-partitioned input."""

    parent: Operator
    group_by: str
    aggregates: Tuple[str, ...]  # e.g. ("count", "sum:bytes")
    #: Estimated distinct keys (drives the memory estimator).
    key_cardinality: int = 1_000_000

    def __post_init__(self) -> None:
        self.inputs = [self.parent]
        if self.key_cardinality <= 0:
            raise QueryError("key_cardinality must be positive")

    def output_schema(self) -> Schema:
        schema = self.parent.output_schema()
        if not schema.has(self.group_by):
            raise QueryError(f"group-by key {self.group_by!r} not in schema")
        out = [schema.field(self.group_by)]
        for agg in self.aggregates:
            if ":" in agg:
                fn, column = agg.split(":", 1)
                if not schema.has(column):
                    raise QueryError(f"aggregate over unknown field {column!r}")
            else:
                fn = agg
            if fn not in ("count", "sum", "min", "max", "avg"):
                raise QueryError(f"unknown aggregate function {fn!r}")
            out.append(Field(f"{agg.replace(':', '_')}", "float"))
        return Schema(tuple(out))


@dataclass
class Union(Operator):
    """Merges two streams with identical schemas (stateless)."""

    left: Operator
    right: Operator

    def __post_init__(self) -> None:
        self.inputs = [self.left, self.right]

    def output_schema(self) -> Schema:
        left_schema = self.left.output_schema()
        right_schema = self.right.output_schema()
        if left_schema != right_schema:
            raise QueryError(
                f"union sides must share a schema: "
                f"{left_schema.names()} vs {right_schema.names()}"
            )
        return left_schema


@dataclass
class Window(Operator):
    """Tumbling-window pre-aggregation (stateful, bounded state).

    Emits one row per key per window; state is proportional to the key
    cardinality within a window, like the paper's aggregation memory
    model, but bounded by the window length.
    """

    parent: Operator
    key: str
    window_seconds: float = 60.0
    key_cardinality: int = 100_000

    def __post_init__(self) -> None:
        self.inputs = [self.parent]
        if self.window_seconds <= 0:
            raise QueryError("window length must be positive")
        if self.key_cardinality <= 0:
            raise QueryError("key_cardinality must be positive")

    def output_schema(self) -> Schema:
        schema = self.parent.output_schema()
        if not schema.has(self.key):
            raise QueryError(f"window key {self.key!r} not in schema")
        return schema


@dataclass
class Join(Operator):
    """Stateful stream-stream join on a key, within a time window."""

    left: Operator
    right: Operator
    key: str
    window_seconds: float = 300.0
    key_cardinality: int = 1_000_000

    def __post_init__(self) -> None:
        self.inputs = [self.left, self.right]
        if self.window_seconds <= 0:
            raise QueryError("join window must be positive")

    def output_schema(self) -> Schema:
        left_schema = self.left.output_schema()
        right_schema = self.right.output_schema()
        if not left_schema.has(self.key) or not right_schema.has(self.key):
            raise QueryError(f"join key {self.key!r} missing on one side")
        right_rest = right_schema.project(
            [n for n in right_schema.names() if n != self.key]
        )
        return left_schema.merge(right_rest)


@dataclass
class Sink(Operator):
    """Writes the stream to an output Scribe category."""

    parent: Operator
    category: str

    def __post_init__(self) -> None:
        self.inputs = [self.parent]
        if not self.category:
            raise QueryError("sink category must be non-empty")

    def output_schema(self) -> Schema:
        return self.parent.output_schema()


@dataclass
class Query:
    """A named query: one sink rooted over an operator tree."""

    name: str
    sink: Sink

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("query name must be non-empty")

    def validate(self) -> Schema:
        """Run all schema checks; returns the output schema.

        "After a query passes all validation checks (e.g., schema
        validation), it will be compiled..." — validation is simply a full
        schema derivation over the tree, which surfaces unknown fields,
        type errors, and duplicate join outputs.
        """
        return self.sink.output_schema()

    def operators(self) -> List[Operator]:
        """All operators, topologically ordered (inputs before users)."""
        seen: List[Operator] = []

        def visit(node: Operator) -> None:
            for parent in node.inputs:
                visit(parent)
            if node not in seen:
                seen.append(node)

        visit(self.sink)
        return seen
