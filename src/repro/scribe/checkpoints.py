"""Checkpoint store.

Each task "maintains its own state and checkpoint" (paper section II). The
checkpoint store maps ``(job, partition)`` to the byte offset up to which
that partition has been processed. Checkpoints are keyed by partition — not
by task — so changing a job's parallelism only *redistributes* which task
reads which partition; no data is lost or re-processed. This is exactly the
redistribution step the State Syncer performs during a complex
synchronization (paper section III-B).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ScribeError
from repro.types import JobId


class CheckpointStore:
    """Durable map of ``(job_id, partition_id) -> offset``."""

    def __init__(self) -> None:
        self._offsets: Dict[JobId, Dict[str, float]] = {}
        #: Per-job mutation counter: bumped on every commit and drop.
        #: Mirrors (the parallel data plane's worker slices) compare it
        #: to decide whether their cached offsets are stale — a value
        #: check that catches *every* writer, present or future, without
        #: instrumenting any of them.
        self._versions: Dict[JobId, int] = {}

    def get(self, job_id: JobId, partition_id: str) -> float:
        """The committed offset, or 0.0 for a never-checkpointed partition."""
        return self._offsets.get(job_id, {}).get(partition_id, 0.0)

    def version(self, job_id: JobId) -> int:
        """Monotone mutation counter for one job's checkpoints (0 when
        never written)."""
        return self._versions.get(job_id, 0)

    def commit(self, job_id: JobId, partition_id: str, offset: float) -> None:
        """Advance the committed offset. Moving backwards is rejected —
        a regressing checkpoint would cause duplicate processing."""
        if offset < 0:
            raise ScribeError(f"negative checkpoint offset: {offset}")
        current = self.get(job_id, partition_id)
        if offset < current - 1e-6:
            raise ScribeError(
                f"checkpoint for {job_id}/{partition_id} cannot move backwards: "
                f"{offset} < {current}"
            )
        self._offsets.setdefault(job_id, {})[partition_id] = offset
        self._versions[job_id] = self._versions.get(job_id, 0) + 1

    def partitions_of(self, job_id: JobId) -> List[str]:
        """All partition ids this job has ever checkpointed."""
        return sorted(self._offsets.get(job_id, {}))

    def drop_job(self, job_id: JobId) -> None:
        """Forget a deleted job's checkpoints."""
        self._offsets.pop(job_id, None)
        self._versions[job_id] = self._versions.get(job_id, 0) + 1

    def snapshot(self, job_id: JobId) -> Dict[str, float]:
        """A copy of the job's checkpoints (used by redistribution tests)."""
        return dict(self._offsets.get(job_id, {}))

    def __repr__(self) -> str:
        return f"CheckpointStore(jobs={len(self._offsets)})"
