"""The Scribe bus: the registry of categories plus a shared checkpoint store."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ScribeError
from repro.scribe.category import Category
from repro.scribe.checkpoints import CheckpointStore


class ScribeBus:
    """All categories in one region, plus the checkpoint store."""

    def __init__(self) -> None:
        self.categories: Dict[str, Category] = {}
        self.checkpoints = CheckpointStore()

    def create_category(self, name: str, num_partitions: int) -> Category:
        """Create a new category; names are unique."""
        if name in self.categories:
            raise ScribeError(f"category {name} already exists")
        category = Category(name, num_partitions)
        self.categories[name] = category
        return category

    def get_category(self, name: str) -> Category:
        """Look up a category by name."""
        try:
            return self.categories[name]
        except KeyError:
            raise ScribeError(f"unknown category {name}") from None

    def ensure_category(self, name: str, num_partitions: int) -> Category:
        """Get the category, creating it if missing (idempotent provision)."""
        if name in self.categories:
            return self.categories[name]
        return self.create_category(name, num_partitions)

    def category_names(self) -> List[str]:
        """All category names, sorted for deterministic iteration."""
        return sorted(self.categories)

    def __repr__(self) -> str:
        return f"ScribeBus(categories={len(self.categories)})"
