"""The Scribe bus: the registry of categories plus a shared checkpoint store."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ScribeError
from repro.scribe.category import Category
from repro.scribe.checkpoints import CheckpointStore
from repro.scribe.log import CommandLog


class ScribeBus:
    """All categories in one region, plus the checkpoint store."""

    def __init__(self) -> None:
        self.categories: Dict[str, Category] = {}
        self.checkpoints = CheckpointStore()
        #: Record-bearing control-plane logs (command logs), by name.
        #: Kept in a separate namespace from data categories: the unit of
        #: a category is bytes, the unit of a log is ordered records.
        self.logs: Dict[str, CommandLog] = {}

    def create_category(self, name: str, num_partitions: int) -> Category:
        """Create a new category; names are unique."""
        if name in self.categories:
            raise ScribeError(f"category {name} already exists")
        category = Category(name, num_partitions)
        self.categories[name] = category
        return category

    def get_category(self, name: str) -> Category:
        """Look up a category by name."""
        try:
            return self.categories[name]
        except KeyError:
            raise ScribeError(f"unknown category {name}") from None

    def ensure_category(self, name: str, num_partitions: int) -> Category:
        """Get the category, creating it if missing (idempotent provision)."""
        if name in self.categories:
            return self.categories[name]
        return self.create_category(name, num_partitions)

    def category_names(self) -> List[str]:
        """All category names, sorted for deterministic iteration."""
        return sorted(self.categories)

    # ------------------------------------------------------------------
    # Control-plane command logs
    # ------------------------------------------------------------------
    def create_log(
        self, name: str, retention: Optional[int] = None
    ) -> CommandLog:
        """Create a new command log; names are unique."""
        if name in self.logs:
            raise ScribeError(f"log {name} already exists")
        log = CommandLog(name, retention=retention)
        self.logs[name] = log
        return log

    def get_log(self, name: str) -> CommandLog:
        """Look up a command log by name."""
        try:
            return self.logs[name]
        except KeyError:
            raise ScribeError(f"unknown log {name}") from None

    def ensure_log(
        self, name: str, retention: Optional[int] = None
    ) -> CommandLog:
        """Get the log, creating it if missing (idempotent provision)."""
        if name in self.logs:
            return self.logs[name]
        return self.create_log(name, retention=retention)

    def __repr__(self) -> str:
        return (
            f"ScribeBus(categories={len(self.categories)}, "
            f"logs={len(self.logs)})"
        )
