"""Scribe substrate — a simulated persistent message bus.

"The communication between jobs is performed through Facebook's persistent
message bus called Scribe ... Each task of a job reads one or several
disjoint data partitions from Scribe, maintains its own state and
checkpoint, and writes to another set of Scribe partitions. Hence, a failed
task can recover independently of other tasks by restoring its own state and
resuming reading Scribe partitions from its own checkpoint." (paper
section II).

The properties the control plane depends on — replayable offsets, disjoint
partitions, checkpoint-based recovery, no inter-task dependencies — are all
preserved. Data content is abstracted to byte counts, which is the unit the
paper's metrics use (``total_bytes_lagged``, processing rate in GB/s).
"""

from repro.scribe.bus import ScribeBus
from repro.scribe.category import Category
from repro.scribe.checkpoints import CheckpointStore
from repro.scribe.log import CommandLog, RetentionError
from repro.scribe.partition import Partition

__all__ = [
    "ScribeBus",
    "Category",
    "Partition",
    "CheckpointStore",
    "CommandLog",
    "RetentionError",
]
