"""A single Scribe partition.

A partition is an append-only byte stream addressed by offset. Producers
append; consumers read from an offset they manage themselves (via the
checkpoint store). The partition never forgets data — Scribe is persistent —
so any offset at or below the head is always readable.
"""

from __future__ import annotations

from repro.errors import ScribeError


class Partition:
    """An append-only stream measured in bytes."""

    __slots__ = ("partition_id", "_head", "_online", "category")

    def __init__(self, partition_id: str) -> None:
        self.partition_id = partition_id
        self._head: float = 0.0
        self._online = True
        #: Backref to the owning :class:`~repro.scribe.category.Category`
        #: so head/online mutations can bump its change counter; ``None``
        #: for free-standing partitions (tests).
        self.category = None

    @property
    def head(self) -> float:
        """Total bytes ever appended (the write frontier)."""
        return self._head

    @property
    def online(self) -> bool:
        """When False the partition's brokers are unreachable: reads
        return nothing (consumers stall and lag builds) while appends
        still land — Scribe buffers producer-side, so no data is lost
        and the backlog is fully readable after recovery."""
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        if value != self._online:
            self._online = value
            if self.category is not None:
                self.category.head_version += 1

    def append(self, num_bytes: float) -> float:
        """Append ``num_bytes`` and return the new head offset."""
        if num_bytes < 0:
            raise ScribeError(
                f"cannot append negative bytes to {self.partition_id}: {num_bytes}"
            )
        self._head += num_bytes
        if self.category is not None:
            self.category.head_version += 1
        return self._head

    def available(self, offset: float) -> float:
        """Bytes backlogged past ``offset`` (0 when the reader is caught up).

        This is the true backlog — it keeps counting while the partition
        is offline, which is what lag metrics must report. Consumers
        fetch through :meth:`readable`/:meth:`read`, which go to zero
        during an outage.
        """
        self._check_offset(offset)
        return self._head - offset

    def readable(self, offset: float) -> float:
        """Bytes a consumer can actually fetch right now (0 offline)."""
        if not self.online:
            self._check_offset(offset)
            return 0.0
        return self.available(offset)

    def read(self, offset: float, max_bytes: float) -> float:
        """Bytes a reader at ``offset`` consumes given a ``max_bytes`` budget.

        Returns the number of bytes read (the caller advances its own
        checkpoint by this amount). Reading never blocks: if less than
        ``max_bytes`` is available, the reader gets what exists.
        """
        if max_bytes < 0:
            raise ScribeError(f"max_bytes must be non-negative: {max_bytes}")
        if not self.online:
            self._check_offset(offset)
            return 0.0
        return min(max_bytes, self.available(offset))

    def _check_offset(self, offset: float) -> None:
        if offset < 0:
            raise ScribeError(
                f"negative offset {offset} in {self.partition_id}"
            )
        if offset > self._head + 1e-6:
            raise ScribeError(
                f"offset {offset} beyond head {self._head} in {self.partition_id}"
            )

    def __repr__(self) -> str:
        return f"Partition({self.partition_id!r}, head={self._head:g})"
