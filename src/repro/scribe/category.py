"""Scribe categories.

"At a logical level, Scribe data is partitioned into categories (c.f. Kafka
topics). Data for different Scuba tables is logged into different Scribe
categories." (paper section VI). A category is a fixed set of partitions;
producers write into it and the category spreads bytes across partitions,
either uniformly or by explicit weights (the imbalanced-input case that the
reactive scaler's rebalance path handles).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ScribeError
from repro.scribe.partition import Partition


class Category:
    """A named set of partitions with weighted append."""

    def __init__(self, name: str, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ScribeError(
                f"category {name} needs at least one partition, got {num_partitions}"
            )
        self.name = name
        self.partitions: List[Partition] = [
            Partition(f"{name}/{index}") for index in range(num_partitions)
        ]
        #: Bumped on every head advance or online toggle of any member
        #: partition — an O(1) "did anything change?" probe that lets the
        #: parallel data plane skip re-snapshotting an idle category's
        #: heads each tick instead of comparing every partition.
        self.head_version = 0
        for partition in self.partitions:
            partition.category = self
        self._weights: Optional[List[float]] = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def set_weights(self, weights: Optional[Sequence[float]]) -> None:
        """Set the per-partition traffic split; ``None`` restores uniform.

        Weights are normalized; they model skewed producers (the paper's
        "imbalanced input" symptom, measured as the standard deviation of
        processing rate across a job's tasks).
        """
        if weights is None:
            self._weights = None
            return
        if len(weights) != self.num_partitions:
            raise ScribeError(
                f"category {self.name} has {self.num_partitions} partitions "
                f"but got {len(weights)} weights"
            )
        if any(weight < 0 for weight in weights):
            raise ScribeError("weights must be non-negative")
        total = sum(weights)
        if total <= 0:
            raise ScribeError("at least one weight must be positive")
        self._weights = [weight / total for weight in weights]

    def append(self, num_bytes: float) -> None:
        """Write ``num_bytes`` into the category, split by current weights."""
        if num_bytes < 0:
            raise ScribeError(f"cannot append negative bytes: {num_bytes}")
        if self._weights is None:
            share = num_bytes / self.num_partitions
            for partition in self.partitions:
                partition.append(share)
        else:
            for partition, weight in zip(self.partitions, self._weights):
                partition.append(num_bytes * weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def total_head(self) -> float:
        """Total bytes ever written across all partitions."""
        return sum(partition.head for partition in self.partitions)

    def partition_slice(self, task_index: int, task_count: int) -> List[Partition]:
        """The disjoint subset of partitions owned by one task of a job.

        Partitions are distributed round-robin: task ``i`` of ``n`` owns
        partitions ``i, i+n, i+2n, ...``. Every partition belongs to exactly
        one task, which is the disjointness property the paper's data model
        relies on.
        """
        if task_count <= 0:
            raise ScribeError(f"task_count must be positive: {task_count}")
        if not 0 <= task_index < task_count:
            raise ScribeError(
                f"task_index {task_index} out of range for {task_count} tasks"
            )
        return [
            partition
            for index, partition in enumerate(self.partitions)
            if index % task_count == task_index
        ]

    def __repr__(self) -> str:
        return f"Category({self.name!r}, partitions={self.num_partitions})"
