"""A record-bearing Scribe partition: the replicated command log.

The data-plane :class:`~repro.scribe.partition.Partition` abstracts
payloads to byte counts, which is the unit the paper's lag metrics use.
The control plane's state-machine replication needs the opposite: a
partition whose *records* survive, addressed by a dense integer sequence
number, so every replica can apply exactly the same commands in exactly
the same order ("Stream-based State-Machine Replication", PAPERS.md).

:class:`CommandLog` models one such partition:

* :meth:`append` assigns the next sequence number (the write frontier is
  :attr:`head_index`, the index the *next* record will get);
* :meth:`read_from` returns retained records at or after an index, in
  order — the follower catch-up path;
* Scribe retention is a horizon, not a consumer offset: records older
  than :attr:`first_index` are gone regardless of who still needs them.
  A bounded ``retention`` drops the oldest records as new ones land, and
  :meth:`trim` models the horizon passing explicitly. A reader whose
  next index fell behind :attr:`first_index` cannot catch up from the
  log and must install a snapshot first (:exc:`RetentionError` tells it
  so).
* ``online`` mirrors the data-plane partition: an offline log rejects
  nothing producer-side (Scribe buffers) but serves no reads, so
  followers stall and their lag builds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ScribeError


class RetentionError(ScribeError):
    """A read asked for records the retention horizon already discarded.

    The reader cannot catch up from the log alone: it must install a
    snapshot at or past :attr:`CommandLog.first_index` and resume from
    there (the snapshot-transfer path of the replication protocol).
    """


class CommandLog:
    """An append-only record log with a retention horizon."""

    __slots__ = ("log_id", "_records", "_first_index", "retention", "online")

    def __init__(self, log_id: str, retention: Optional[int] = None) -> None:
        if retention is not None and retention < 1:
            raise ScribeError(
                f"log {log_id} retention must be >= 1 records: {retention}"
            )
        self.log_id = log_id
        self._records: List[str] = []
        #: Sequence number of the oldest retained record.
        self._first_index = 0
        #: Maximum records retained (``None`` = the log never forgets).
        self.retention = retention
        #: When False the log's brokers are unreachable: appends still
        #: land (Scribe buffers producer-side) but reads return nothing,
        #: so consumers stall and their lag builds.
        self.online = True

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def append(self, payload: str) -> int:
        """Append one record; returns the sequence number it received."""
        if not isinstance(payload, str):
            raise ScribeError(
                f"log {self.log_id} payloads are strings, got "
                f"{type(payload).__name__}"
            )
        index = self.head_index
        self._records.append(payload)
        if self.retention is not None and len(self._records) > self.retention:
            drop = len(self._records) - self.retention
            del self._records[:drop]
            self._first_index += drop
        return index

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    @property
    def head_index(self) -> int:
        """The sequence number the *next* appended record will get."""
        return self._first_index + len(self._records)

    @property
    def first_index(self) -> int:
        """Oldest retained sequence number (the retention horizon)."""
        return self._first_index

    def __len__(self) -> int:
        """Records currently retained."""
        return len(self._records)

    def read_from(
        self, index: int, max_records: Optional[int] = None
    ) -> List[Tuple[int, str]]:
        """Retained ``(sequence, payload)`` records at or after ``index``.

        Returns an empty list while offline (consumers stall; nothing is
        lost). Raises :exc:`RetentionError` when ``index`` fell behind
        the horizon — the caller needs a snapshot, not a bigger read.
        """
        if index < 0:
            raise ScribeError(f"negative index {index} in {self.log_id}")
        if index < self._first_index:
            raise RetentionError(
                f"log {self.log_id} retains [{self._first_index}, "
                f"{self.head_index}); index {index} is behind the horizon"
            )
        if not self.online:
            return []
        offset = index - self._first_index
        records = self._records[offset:]
        if max_records is not None:
            records = records[:max_records]
        return [
            (index + position, payload)
            for position, payload in enumerate(records)
        ]

    def trim(self, up_to_index: int) -> int:
        """Discard records below ``up_to_index``; returns how many.

        Models the retention horizon passing (time- or size-based in
        production — never consumer-offset-based, which is why a slow
        follower can be left behind it).
        """
        up_to_index = min(up_to_index, self.head_index)
        drop = up_to_index - self._first_index
        if drop <= 0:
            return 0
        del self._records[:drop]
        self._first_index = up_to_index
        return drop

    def __repr__(self) -> str:
        return (
            f"CommandLog({self.log_id!r}, retained=[{self._first_index}, "
            f"{self.head_index}))"
        )
