"""Cluster health reporting and alerting.

The reporter computes the paper's three headline health percentages —
tasks not running, jobs lagging, jobs unhealthy (quarantined or OOMing) —
plus capacity utilization, and raises alerts when thresholds are crossed.
Each alert carries a runbook hint, mirroring the paper's "comprehensive
runbook, dashboards, and tools that drill down into the root cause".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.bounded import BoundedList
from repro.obs.sli import SliEvaluator

from repro.analysis.report import Table
from repro.errors import DegradedModeError
from repro.jobs.service import JobService
from repro.metrics.store import MetricStore
from repro.sim.engine import Engine, Timer
from repro.tasks.service import TaskService
from repro.tasks.shard_manager import ShardManager
from repro.types import Seconds, TaskState

#: Retained reports/alerts. At the default 5-minute cadence this is a
#: month of history — plenty for timelines, bounded for endless soaks.
DEFAULT_REPORT_RETENTION = 8_640


@dataclass
class Alert:
    """One operator alert with a runbook hint."""

    time: Seconds
    severity: str  # "warn" | "page"
    what: str
    runbook: str


@dataclass
class HealthReport:
    """A point-in-time snapshot of cluster health."""

    time: Seconds
    jobs_total: int = 0
    jobs_lagging: int = 0
    jobs_quarantined: int = 0
    jobs_with_oom: int = 0
    tasks_expected: int = 0
    tasks_running: int = 0
    containers_live: int = 0
    failovers_last_hour: int = 0

    @property
    def pct_tasks_not_running(self) -> float:
        if self.tasks_expected == 0:
            return 0.0
        missing = max(0, self.tasks_expected - self.tasks_running)
        return missing / self.tasks_expected

    @property
    def pct_jobs_lagging(self) -> float:
        return self.jobs_lagging / self.jobs_total if self.jobs_total else 0.0

    @property
    def pct_jobs_unhealthy(self) -> float:
        if not self.jobs_total:
            return 0.0
        return (self.jobs_quarantined + self.jobs_with_oom) / self.jobs_total

    def render(self) -> str:
        table = Table(["health metric", "value"])
        table.add_row("jobs managed", self.jobs_total)
        table.add_row("tasks expected / running",
                      f"{self.tasks_expected} / {self.tasks_running}")
        table.add_row("tasks not running", f"{self.pct_tasks_not_running:.1%}")
        table.add_row("jobs lagging", f"{self.pct_jobs_lagging:.1%}")
        table.add_row("jobs unhealthy", f"{self.pct_jobs_unhealthy:.1%}")
        table.add_row("quarantined jobs", self.jobs_quarantined)
        table.add_row("live containers", self.containers_live)
        table.add_row("failovers (last hour)", self.failovers_last_hour)
        return table.render()


@dataclass
class HealthThresholds:
    """Alerting thresholds."""

    tasks_not_running_warn: float = 0.01
    tasks_not_running_page: float = 0.10
    jobs_lagging_warn: float = 0.02
    jobs_lagging_page: float = 0.20
    quarantined_page: int = 1


class HealthReporter:
    """Computes health reports and raises threshold alerts."""

    def __init__(
        self,
        engine: Engine,
        job_service: JobService,
        task_service: TaskService,
        shard_manager: ShardManager,
        metrics: MetricStore,
        thresholds: Optional[HealthThresholds] = None,
        interval: Seconds = 300.0,
        retention: int = DEFAULT_REPORT_RETENTION,
        sli: Optional[SliEvaluator] = None,
    ) -> None:
        self._engine = engine
        self._service = job_service
        self._task_service = task_service
        self._shard_manager = shard_manager
        self._metrics = metrics
        #: The SLI layer is the single source of the per-job judgements;
        #: the reporter only adds the task/container side and thresholds.
        self.sli = sli if sli is not None else SliEvaluator(job_service, metrics)
        self.thresholds = thresholds or HealthThresholds()
        self._interval = interval
        self.reports: List[HealthReport] = BoundedList(maxlen=retention)
        self.alerts: List[Alert] = BoundedList(maxlen=retention)
        self._timer: Optional[Timer] = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self._engine.every(
                self._interval, self.check_once, name="health-reporter"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def report(self) -> HealthReport:
        """Build a health snapshot from the live services.

        The job-side percentages (lagging, quarantined, OOMing) come from
        the SLI layer's fleet aggregation — the same judgements the SLO
        tracker burns budgets against — so a dashboard and an SLO can
        never disagree about what "lagging" means.
        """
        now = self._engine.now
        report = HealthReport(time=now)

        counts = self.sli.fleet_counts(now)
        report.jobs_total = counts.jobs_total
        report.jobs_lagging = counts.jobs_lagging
        report.jobs_quarantined = counts.jobs_quarantined
        report.jobs_with_oom = counts.jobs_with_oom

        report.tasks_expected = len(self._task_service_snapshot())
        managers = self._shard_manager.live_managers()
        report.containers_live = len(managers)
        report.tasks_running = sum(
            1
            for manager in managers
            for task in manager.tasks.values()
            if task.state == TaskState.RUNNING
        )
        report.failovers_last_hour = sum(
            1
            for event in self._shard_manager.failover_events
            if now - event.time <= 3600.0
        )
        return report

    def _task_service_snapshot(self):
        try:
            return self._task_service.snapshot()
        except Exception:  # noqa: BLE001 - degraded task service
            return {}

    def check_once(self) -> HealthReport:
        """Build a report, record it, and raise any threshold alerts.

        When the Job Store is unavailable the reporter cannot see the
        fleet; it records an empty report and raises a degraded-visibility
        alert instead of crashing the periodic timer mid-outage.
        """
        try:
            report = self.report()
        except DegradedModeError:
            report = HealthReport(time=self._engine.now)
            self._alert(
                "warn", "health visibility degraded: Job Store unavailable",
                "check Job Store availability; reporting resumes on recovery",
            )
        self.reports.append(report)
        self._raise_alerts(report)
        return report

    # ------------------------------------------------------------------
    # Alerting
    # ------------------------------------------------------------------
    def _raise_alerts(self, report: HealthReport) -> None:
        t = self.thresholds
        if report.pct_tasks_not_running >= t.tasks_not_running_page:
            self._alert("page",
                        f"{report.pct_tasks_not_running:.0%} of tasks not running",
                        "check Shard Manager failovers and host availability")
        elif report.pct_tasks_not_running >= t.tasks_not_running_warn:
            self._alert("warn",
                        f"{report.pct_tasks_not_running:.1%} of tasks not running",
                        "verify recent syncs and container churn")
        if report.pct_jobs_lagging >= t.jobs_lagging_page:
            self._alert("page",
                        f"{report.pct_jobs_lagging:.0%} of jobs lagging",
                        "suspect a shared dependency; do not mass-scale")
        elif report.pct_jobs_lagging >= t.jobs_lagging_warn:
            self._alert("warn",
                        f"{report.pct_jobs_lagging:.1%} of jobs lagging",
                        "check Auto Scaler actions and untriaged reports")
        if report.jobs_quarantined >= t.quarantined_page:
            self._alert("page",
                        f"{report.jobs_quarantined} job(s) quarantined",
                        "inspect State Syncer alerts; release after fixing")

    def _alert(self, severity: str, what: str, runbook: str) -> None:
        self.alerts.append(Alert(self._engine.now, severity, what, runbook))
