"""Incident timelines: one chronological view across every service.

During an incident the operator's first question is "what happened, in
order?" — the answer is scattered across the State Syncer's alerts, the
Auto Scaler's actions and untriaged reports, the Shard Manager's failover
events, the Capacity Manager's events, and the failure injector's record.
This module merges them into a single ordered timeline (the paper's
section VII "tools that drill down into the root cause of the problem").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.analysis.report import Table
from repro.types import Seconds

#: Trace kinds the dedicated collectors already cover; the trace collector
#: skips them so the timeline never shows the same decision twice.
_TRACE_KINDS_COVERED = ("job-quarantined", "failover")
_TRACE_SOURCES_COVERED = ("auto-scaler", "reactive-scaler")


@dataclass(frozen=True)
class TimelineEvent:
    """One event in the merged operator timeline."""

    time: Seconds
    source: str    # which service reported it
    kind: str      # short machine-readable tag
    detail: str

    def __str__(self) -> str:
        return f"[{self.time:10.1f}s] {self.source:15s} {self.kind:18s} {self.detail}"


class IncidentTimeline:
    """Collects events from a platform into one sorted view."""

    def __init__(self, platform) -> None:
        self._platform = platform

    def events(
        self,
        since: Seconds = 0.0,
        until: Optional[Seconds] = None,
        sources: Optional[Iterable[str]] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> List[TimelineEvent]:
        """Every known event in ``[since, until]``, time-ordered.

        ``sources`` keeps only events whose source matches exactly;
        ``kinds`` keeps events whose kind contains any given substring
        (so ``kinds=["action"]`` matches every scaler action).
        """
        if until is None:
            until = self._platform.now
        collected: List[TimelineEvent] = []
        collected.extend(self._syncer_events())
        collected.extend(self._scaler_events())
        collected.extend(self._failover_events())
        collected.extend(self._capacity_events())
        collected.extend(self._failure_events())
        collected.extend(self._chaos_events())
        collected.extend(self._replication_events())
        collected.extend(self._checkpoint_events())
        collected.extend(self._standby_events())
        collected.extend(self._slow_node_events())
        collected.extend(self._health_events())
        collected.extend(self._slo_events())
        collected.extend(self._trace_events())
        source_set = set(sources) if sources else None
        kind_list = list(kinds) if kinds else None
        return sorted(
            (
                event for event in collected
                if since <= event.time <= until
                and (source_set is None or event.source in source_set)
                and (kind_list is None
                     or any(k in event.kind for k in kind_list))
            ),
            key=lambda event: (event.time, event.source, event.detail),
        )

    def render(
        self,
        since: Seconds = 0.0,
        until: Optional[Seconds] = None,
        sources: Optional[Iterable[str]] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> str:
        """A fixed-width text timeline."""
        table = Table(["t (s)", "source", "kind", "detail"])
        for event in self.events(since, until, sources, kinds):
            table.add_row(
                f"{event.time:.1f}", event.source, event.kind, event.detail
            )
        return table.render()

    # ------------------------------------------------------------------
    # Collectors (each tolerant of a missing/unattached service)
    # ------------------------------------------------------------------
    def _syncer_events(self) -> List[TimelineEvent]:
        syncer = getattr(self._platform, "syncer", None)
        if syncer is None:
            return []
        return [
            TimelineEvent(time, "state-syncer", "quarantine",
                          f"{job_id}: {reason}")
            for time, job_id, reason in syncer.alerts
        ]

    def _scaler_events(self) -> List[TimelineEvent]:
        scaler = getattr(self._platform, "scaler", None)
        if scaler is None or not hasattr(scaler, "actions"):
            return []
        events = [
            TimelineEvent(
                action.time, "auto-scaler", action.action.value,
                f"{action.job_id}"
                + (f" -> {action.task_count} tasks" if action.task_count else ""),
            )
            for action in scaler.actions
        ]
        events.extend(
            TimelineEvent(report.time, "auto-scaler", "untriaged",
                          f"{report.job_id}: {report.reason}")
            for report in getattr(scaler, "untriaged", [])
        )
        return events

    def _failover_events(self) -> List[TimelineEvent]:
        shard_manager = getattr(self._platform, "shard_manager", None)
        if shard_manager is None:
            return []
        return [
            TimelineEvent(event.time, "shard-manager", "failover",
                          f"{event.container_id} ({event.shards_moved} shards)")
            for event in shard_manager.failover_events
        ]

    def _capacity_events(self) -> List[TimelineEvent]:
        capacity = getattr(self._platform, "capacity_manager", None)
        if capacity is None:
            return []
        return [
            TimelineEvent(event.time, "capacity-manager", event.kind,
                          event.detail)
            for event in capacity.events
        ]

    def _failure_events(self) -> List[TimelineEvent]:
        failures = getattr(self._platform, "failures", None)
        if failures is None:
            return []
        return [
            TimelineEvent(
                record.time, "cluster", f"host-{record.kind}",
                record.host_id
                + (f" [{record.label}]" if getattr(record, "label", "") else ""),
            )
            for record in failures.history
        ]

    def _chaos_events(self) -> List[TimelineEvent]:
        chaos = getattr(self._platform, "chaos", None)
        if chaos is None:
            return []
        return [
            TimelineEvent(record.time, "chaos", record.kind,
                          f"{record.target} [{record.scenario}]"
                          + (f": {record.detail}" if record.detail else ""))
            for record in chaos.records
        ]

    def _replication_events(self) -> List[TimelineEvent]:
        """Leader losses, elections, rejoins, and snapshot installs.

        Empty for a fault-free run by construction (the replication
        group records incidents only), which keeps replication-on and
        replication-off timelines byte-identical in the golden suite.
        """
        replication = getattr(self._platform, "replication", None)
        if replication is None:
            return []
        return [
            TimelineEvent(event.time, "replication", event.kind, event.detail)
            for event in replication.events
        ]

    def _checkpoint_events(self) -> List[TimelineEvent]:
        """Checkpoint restores and retention fallbacks.

        Routine checkpoint appends are counters, not events, so a
        fault-free run contributes nothing here (same contract as the
        replication collector).
        """
        plane = getattr(self._platform, "checkpoint_plane", None)
        if plane is None:
            return []
        return [
            TimelineEvent(event.time, "checkpoint", event.kind, event.detail)
            for event in plane.events
        ]

    def _standby_events(self) -> List[TimelineEvent]:
        """Standby promotions, handoffs, and retirements (incident-only:
        routine replica placement is never recorded)."""
        standby = getattr(self._platform, "standby", None)
        if standby is None:
            return []
        return [
            TimelineEvent(event.time, "standby", event.kind, event.detail)
            for event in standby.events
        ]

    def _slow_node_events(self) -> List[TimelineEvent]:
        """Gray-node drains and undrains from the slow-node detector."""
        detector = getattr(self._platform, "slow_nodes", None)
        if detector is None:
            return []
        return [
            TimelineEvent(event.time, "slow-node", event.kind, event.detail)
            for event in detector.events
        ]

    def _health_events(self) -> List[TimelineEvent]:
        health = getattr(self._platform, "health", None)
        if health is None:
            return []
        return [
            TimelineEvent(alert.time, "health", f"alert-{alert.severity}",
                          f"{alert.what} (runbook: {alert.runbook})")
            for alert in health.alerts
        ]

    def _slo_events(self) -> List[TimelineEvent]:
        """Burn-rate alerts and closed breach windows from the SLO plane."""
        slo = getattr(self._platform, "slo", None)
        if slo is None:
            return []
        events = [
            TimelineEvent(alert.time, "slo", f"burn-{alert.severity}",
                          f"{alert.what} (runbook: {alert.runbook})")
            for alert in slo.alerts
        ]
        events.extend(
            TimelineEvent(breach.end, "slo", "breach-closed",
                          f"{breach.job_id} {breach.slo} "
                          f"({breach.duration(breach.end):.0f}s)")
            for breach in slo.breaches
            if breach.end is not None
        )
        return events

    def _trace_events(self) -> List[TimelineEvent]:
        """Causal trace events, minus what other collectors already show."""
        tracer = getattr(self._platform, "tracer", None)
        if tracer is None or not getattr(tracer, "enabled", False):
            return []
        events = []
        for event in tracer.events:
            if event.source in _TRACE_SOURCES_COVERED:
                continue  # scaler actions come from the scaler collector
            if event.kind in _TRACE_KINDS_COVERED:
                continue  # quarantines/failovers have dedicated collectors
            job = f"{event.job_id} " if event.job_id else ""
            events.append(
                TimelineEvent(event.time, event.source, event.kind,
                              f"{job}{event.detail_str()}".strip())
            )
        return events
