"""Operations tooling: health reporting, alerting, dashboards.

"A significant part of large-scale distributed systems is about operations
at scale: scalable monitoring, alerting, and diagnosis. Aside from job
level monitoring and alert dashboards, Turbine has several tools to report
the percentage of tasks not running, lagging, or unhealthy." (paper
section VII).
"""

from repro.ops.health import Alert, HealthReport, HealthReporter
from repro.ops.timeline import IncidentTimeline, TimelineEvent

__all__ = [
    "HealthReport",
    "HealthReporter",
    "Alert",
    "IncidentTimeline",
    "TimelineEvent",
]
