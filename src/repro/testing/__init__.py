"""Shared test doubles for the State Syncer's actuator seam.

Benchmarks, unit tests, and property tests all need fake
:class:`~repro.jobs.plan.TaskActuator` implementations; before this module
each defined its own. The three canonical doubles live here so every call
site exercises the same semantics:

* :class:`NullActuator` — accepts everything instantly; isolates syncer
  bookkeeping cost in benchmarks.
* :class:`RecordingActuator` — logs every call and can fail on command;
  the workhorse of the syncer unit tests.
* :class:`ChaoticActuator` — fails actions according to a pre-drawn
  schedule; drives the property-based chaos and equivalence suites. Two
  instances built from the same schedule inject byte-identical failure
  sequences, which is what lets the equivalence tests run an incremental
  and a full-scan syncer against *the same* chaos.

This is library code (it ships under ``repro``) because benchmarks and
examples import it without the test tree on ``sys.path``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.jobs.plan import TaskActuator

__all__ = ["NullActuator", "RecordingActuator", "ChaoticActuator"]


class NullActuator(TaskActuator):
    """Accepts every action instantly (isolates syncer bookkeeping cost)."""

    def apply_settings(self, job_id, config):
        pass

    def stop_tasks(self, job_id):
        pass

    def redistribute_checkpoints(self, job_id, old, new):
        pass

    def start_tasks(self, job_id, count, config):
        pass


class RecordingActuator(TaskActuator):
    """Test double that logs calls and can fail on command."""

    def __init__(self):
        self.calls: List[tuple] = []
        self.fail_on: set = set()

    def _maybe_fail(self, op):
        if op in self.fail_on:
            raise RuntimeError(f"injected failure in {op}")

    def apply_settings(self, job_id, config):
        self._maybe_fail("apply_settings")
        self.calls.append(("apply_settings", job_id))

    def stop_tasks(self, job_id):
        self._maybe_fail("stop_tasks")
        self.calls.append(("stop_tasks", job_id))

    def redistribute_checkpoints(self, job_id, old, new):
        self._maybe_fail("redistribute_checkpoints")
        self.calls.append(("redistribute_checkpoints", job_id, old, new))

    def start_tasks(self, job_id, count, config):
        self._maybe_fail("start_tasks")
        self.calls.append(("start_tasks", job_id, count))


class ChaoticActuator(TaskActuator):
    """Fails actions according to a pre-drawn schedule."""

    def __init__(self, failure_plan: Iterable[bool]):
        #: Iterator of booleans: True = next action fails.
        self._plan = iter(failure_plan)
        self.failing = True

    def _maybe_fail(self):
        if self.failing and next(self._plan, False):
            raise RuntimeError("chaos")

    def apply_settings(self, job_id, config):
        self._maybe_fail()

    def stop_tasks(self, job_id):
        self._maybe_fail()

    def redistribute_checkpoints(self, job_id, old, new):
        self._maybe_fail()

    def start_tasks(self, job_id, count, config):
        self._maybe_fail()
