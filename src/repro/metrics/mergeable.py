"""Mergeable metric slices: batches that land identically however split.

The parallel substrate produces metric samples on N partitions and needs
the coordinator's :class:`~repro.metrics.store.MetricStore` to end up
byte-identical to a single-loop run. A :class:`MetricSlice` is the unit
that makes that safe to reason about: an immutable-ish batch of
``(time, entity, metric, value)`` rows with a canonical ordering, plus
:func:`merge_slices`, which combines any number of slices into one
canonical slice. Because the canonical order is a pure function of the
row keys, ``merge_slices(split(rows))`` equals ``merge_slices([rows])``
for every way of splitting — the store-level mirror of the substrate's
integer-sum merge rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

#: One sample: (time, entity, metric, value).
SliceRow = Tuple[float, str, str, float]


@dataclass
class MetricSlice:
    """A batch of metric samples from one source (e.g. one partition)."""

    rows: List[SliceRow] = field(default_factory=list)

    def add(
        self, time: float, entity: str, metric: str, value: float
    ) -> None:
        self.rows.append((time, entity, metric, value))

    def extend(self, rows: Iterable[SliceRow]) -> None:
        self.rows.extend(rows)

    def canonical(self) -> List[SliceRow]:
        """Rows in canonical ``(time, entity, metric)`` order.

        Sorting includes the value as a final tie-break so that even
        duplicate keys (two sources reporting the same instant — which
        well-formed producers avoid) order deterministically.
        """
        return sorted(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def merge_slices(slices: Sequence[MetricSlice]) -> MetricSlice:
    """Combine slices into one canonical slice.

    Split-invariant: however the same rows are distributed over input
    slices, the output is identical.
    """
    merged = MetricSlice()
    for piece in slices:
        merged.extend(piece.rows)
    merged.rows = merged.canonical()
    return merged
