"""Incremental trailing-window aggregates with exact arithmetic.

The control loops read the metric store through a small number of
*trailing* windows ("average memory over the last 10 minutes", "max input
rate over the last 4 hours") whose anchor — the simulation clock — only
moves forward. That makes the classic sliding-window shape apply: keep a
rolling sum/count plus a monotonic max-deque per registered window, add
samples as they arrive, evict samples as the window's left edge passes
them, and every read is O(1) amortized instead of O(window).

The subtle part is *byte-identity*. The naive path computes a window mean
as ``math.fsum(values) / len(values)``; ``fsum`` returns the correctly
rounded sum of the window's values, i.e. a pure function of the window
*multiset*. To return the very same bits without rescanning, the rolling
sum is kept as a Shewchuk expansion — a list of non-overlapping floats
whose exact real sum equals the exact real sum of the window. Adding a
sample and evicting one (adding its negation) are both exact operations
on the expansion, so ``fsum(partials)`` is the correctly rounded sum of
the current window — bit-for-bit what the naive rescan produces. No
drift, ever, regardless of how many samples have passed through.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.metrics.sketch import HistogramSketch


def exact_add(partials: List[float], x: float) -> None:
    """Add ``x`` into a Shewchuk expansion, in place, exactly.

    ``partials`` remains a list of non-overlapping floats whose real sum
    is exactly the real sum of everything ever added. This is the
    accumulation loop of ``math.fsum`` (Shewchuk's grow-expansion with
    zero elimination); unlike a plain float accumulator it loses nothing,
    which is what makes eviction-by-negation exact.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class WindowAggregate:
    """Rolling sum/count/max (and optional sketch) for one trailing window.

    Sample positions are tracked as *absolute* indexes — the number of
    samples ever appended to the series before them — so the state
    survives the series' ring-buffer compactions, which only shift
    physical positions. ``[lo, hi)`` is the absolute index range currently
    inside the window; ``count`` falls out as ``hi - lo`` because the
    window is contiguous.
    """

    __slots__ = ("duration", "lo", "hi", "partials", "maxes", "last_start", "sketch")

    def __init__(self, duration: float, start_abs: int) -> None:
        self.duration = duration
        self.lo = start_abs
        self.hi = start_abs
        #: Shewchuk expansion of the exact window sum.
        self.partials: List[float] = []
        #: Monotonic deque of ``(abs_index, value)``, values decreasing.
        self.maxes: Deque[Tuple[int, float]] = deque()
        #: Left edge of the last served query; queries whose window start
        #: moves backwards cannot be served incrementally.
        self.last_start = float("-inf")
        #: Lazily attached when a toleranced percentile is first read.
        self.sketch: Optional[HistogramSketch] = None

    @property
    def count(self) -> int:
        return self.hi - self.lo

    # ------------------------------------------------------------------
    # Maintenance (driven by TimeSeries)
    # ------------------------------------------------------------------
    def ingest(self, values: List[float], abs0: int, n: int) -> None:
        """Absorb physical samples ``[hi - abs0, n)`` into the window."""
        partials, maxes, sketch = self.partials, self.maxes, self.sketch
        for i in range(self.hi - abs0, n):
            v = values[i]
            exact_add(partials, v)
            while maxes and maxes[-1][1] <= v:
                maxes.pop()
            maxes.append((abs0 + i, v))
            if sketch is not None:
                sketch.add(v)
        self.hi = abs0 + n

    def advance(
        self, times: List[float], values: List[float], abs0: int, start: float
    ) -> None:
        """Evict samples whose time is strictly before ``start``."""
        partials, sketch = self.partials, self.sketch
        j = self.lo - abs0
        end = self.hi - abs0
        while j < end and times[j] < start:
            v = values[j]
            exact_add(partials, -v)
            if sketch is not None:
                sketch.remove(v)
            j += 1
        self.lo = abs0 + j
        maxes = self.maxes
        while maxes and maxes[0][0] < self.lo:
            maxes.popleft()
        if self.lo == self.hi:
            # Empty window: the expansion's real value is exactly zero;
            # reset it so round-off residue cannot accumulate structure.
            partials.clear()
        self.last_start = start

    def forget_before(
        self, cut_abs: int, values: List[float], abs0: int
    ) -> None:
        """Retention eviction: samples below ``cut_abs`` are being trimmed.

        Called *before* the series drops them, while their values are
        still addressable, so the rolling state can subtract exactly what
        the naive path will no longer see.
        """
        if self.hi <= cut_abs:
            # Nothing ingested survives the cut; restart empty at the cut.
            self.lo = self.hi = cut_abs
            self.partials.clear()
            self.maxes.clear()
            if self.sketch is not None:
                self.sketch.clear()
            return
        if self.lo >= cut_abs:
            return
        partials, sketch = self.partials, self.sketch
        for i in range(self.lo - abs0, cut_abs - abs0):
            v = values[i]
            exact_add(partials, -v)
            if sketch is not None:
                sketch.remove(v)
        self.lo = cut_abs
        maxes = self.maxes
        while maxes and maxes[0][0] < cut_abs:
            maxes.popleft()
        if self.lo == self.hi:
            partials.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def sum(self) -> float:
        """Correctly rounded sum of the current window (exact, not drifted)."""
        return math.fsum(self.partials)

    def max(self) -> float:
        return self.maxes[0][1]
