"""Metrics substrate — a simulated metric collection system.

Turbine's detectors, estimators, and pattern analyzer all read from
Facebook's metric collection pipeline (task managers "post them via the
metric collection system to the Auto Scaler Symptom Detector", paper
section V-A; the pattern analyzer "records per minute workload metrics
during the last 14 days", section V-C). This package provides the
time-series store those components read and the aggregation helpers
(means, percentiles, CDFs) the experiments report.
"""

from repro.metrics.aggregate import cdf_points, mean, percentile, stdev
from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore

__all__ = [
    "TimeSeries",
    "MetricStore",
    "mean",
    "stdev",
    "percentile",
    "cdf_points",
]
