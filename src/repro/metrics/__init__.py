"""Metrics substrate — a simulated metric collection system.

Turbine's detectors, estimators, and pattern analyzer all read from
Facebook's metric collection pipeline (task managers "post them via the
metric collection system to the Auto Scaler Symptom Detector", paper
section V-A; the pattern analyzer "records per minute workload metrics
during the last 14 days", section V-C). This package provides the
time-series store those components read and the aggregation helpers
(means, percentiles, CDFs) the experiments report.

The store is a streaming metrics engine: ring-buffer series storage with
lazy compaction, O(1)-amortized incremental trailing-window aggregates,
coarse rollup tiers for long-horizon reads, a histogram-sketch percentile
path behind a declared tolerance, and a batched ingestion fast path —
all byte-identical to the naive rescan paths they replace (and provably
so: the golden determinism suite runs the platform with streaming on and
off and compares every decision bit for bit).
"""

from repro.metrics.aggregate import cdf_points, mean, percentile, stdev
from repro.metrics.mergeable import MetricSlice, merge_slices
from repro.metrics.series import TimeSeries
from repro.metrics.sketch import HistogramSketch
from repro.metrics.store import MetricStore

__all__ = [
    "TimeSeries",
    "MetricStore",
    "MetricSlice",
    "merge_slices",
    "HistogramSketch",
    "mean",
    "stdev",
    "percentile",
    "cdf_points",
]
