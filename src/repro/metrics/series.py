"""A single time series: ring storage, retention, and windowed queries.

Samples must arrive in non-decreasing time order (the simulation clock
guarantees this). Storage is an index-offset ring: trimming past the
retention horizon advances a head index instead of front-deleting the
backing lists, and the dead prefix is compacted away only once it is both
long and at least as large as the live data — O(1) amortized per append
instead of O(n).

On top of the ring sit three streaming read paths, all gated by the
``streaming`` flag and all byte-identical to a naive rescan of the
retained samples (the golden and hypothesis suites enforce this):

* **trailing windows** (``average_over`` / ``max_over``) are served by
  per-duration :class:`~repro.metrics.window.WindowAggregate` rolling
  states — O(1) amortized instead of O(window);
* **historical ranges** (``aggregate_between`` and friends, what the
  14-day pattern analyzer reads) are served from the coarse
  :class:`~repro.metrics.rollup.RollupTier` buckets plus raw edges;
* **windowed percentiles** with a declared tolerance are served from a
  :class:`~repro.metrics.sketch.HistogramSketch` maintained alongside the
  window state; without a tolerance the exact sorting path runs.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro.metrics.aggregate import percentile
from repro.metrics.rollup import DEFAULT_ROLLUP_PERIOD, RollupTier
from repro.metrics.sketch import HistogramSketch
from repro.metrics.window import WindowAggregate
from repro.types import Seconds

#: Module default for the streaming read paths; stores pass their own.
STREAMING_DEFAULT = True

#: Compact the ring only when the dead prefix reaches this length *and*
#: is at least as long as the live suffix (amortized O(1) per append).
COMPACT_MIN = 64

#: Series retaining more than this automatically grow a rollup tier
#: (the pattern analyzer's 14-day series; the 2-day default stays raw).
ROLLUP_AUTO_RETENTION: Seconds = 3 * 24 * 3600.0


class TimeSeries:
    """Append-only ``(time, value)`` samples with a retention horizon."""

    def __init__(
        self,
        retention: Optional[Seconds] = None,
        streaming: Optional[bool] = None,
        rollup_period: Optional[Seconds] = None,
        telemetry=None,
    ) -> None:
        if retention is not None and retention <= 0:
            raise ValueError(f"retention must be positive: {retention}")
        self.retention = retention
        self.streaming = STREAMING_DEFAULT if streaming is None else streaming
        self._times: List[Seconds] = []
        self._values: List[float] = []
        #: Physical index of the first live (retained) sample.
        self._head = 0
        #: Absolute index of physical position 0 — the count of samples
        #: compacted away — so window state survives compactions.
        self._abs0 = 0
        #: Per-duration rolling window states, created lazily on read.
        self._aggs: Dict[float, WindowAggregate] = {}
        #: Rollups are maintained on the append path whenever configured
        #: (cheap: one exact-add into the newest bucket) and *served* only
        #: while streaming is on, so toggling never leaves them stale.
        if rollup_period is not None:
            self._rollup: Optional[RollupTier] = RollupTier(rollup_period)
        elif retention is not None and retention > ROLLUP_AUTO_RETENTION:
            self._rollup = RollupTier(DEFAULT_ROLLUP_PERIOD)
        else:
            self._rollup = None
        self._telemetry = telemetry
        #: Introspection counters (see MetricStore telemetry publishing).
        self.window_queries = 0
        self.window_fast = 0
        self.rollup_reads = 0
        self.compactions = 0

    def __len__(self) -> int:
        return len(self._times) - self._head

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def record(self, time: Seconds, value: float) -> None:
        """Append a sample at ``time``."""
        times = self._times
        if times and time < times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {times[-1]}"
            )
        value = float(value)
        times.append(time)
        self._values.append(value)
        if self._rollup is not None:
            self._rollup.add(time, value)
        self._trim(time)

    def _trim(self, now: Seconds) -> None:
        if self.retention is None:
            return
        horizon = now - self.retention
        head = self._head
        new_head = bisect_left(self._times, horizon, head)
        if new_head == head:
            return
        # Let the streaming state subtract what it is about to lose while
        # the values are still addressable; the just-appended sample is
        # always live, so a live tail exists.
        if self._aggs:
            cut_abs = self._abs0 + new_head
            for agg in self._aggs.values():
                agg.forget_before(cut_abs, self._values, self._abs0)
        if self._rollup is not None:
            self._rollup.trim_before(self._times[new_head])
        self._head = new_head
        if new_head >= COMPACT_MIN and new_head * 2 >= len(self._times):
            del self._times[:new_head]
            del self._values[:new_head]
            self._abs0 += new_head
            self._head = 0
            self.compactions += 1

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def latest(self) -> Optional[float]:
        """The most recent value, or ``None`` if empty."""
        return self._values[-1] if len(self._times) > self._head else None

    def latest_time(self) -> Optional[Seconds]:
        """The most recent sample time, or ``None`` if empty."""
        return self._times[-1] if len(self._times) > self._head else None

    def window(self, start: Seconds, end: Seconds) -> List[Tuple[Seconds, float]]:
        """Samples with ``start <= time <= end``."""
        lo = bisect_left(self._times, start, self._head)
        hi = bisect_right(self._times, end, self._head)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def values_in(self, start: Seconds, end: Seconds) -> List[float]:
        """Just the values with ``start <= time <= end``."""
        lo = bisect_left(self._times, start, self._head)
        hi = bisect_right(self._times, end, self._head)
        return self._values[lo:hi]

    def all_points(self) -> List[Tuple[Seconds, float]]:
        """Every retained sample (mostly for reports and tests)."""
        head = self._head
        return list(zip(self._times[head:], self._values[head:]))

    # ------------------------------------------------------------------
    # Trailing-window queries (the scaler/balancer hot path)
    # ------------------------------------------------------------------
    def _window_agg(self, duration: Seconds, now: Seconds) -> Optional[WindowAggregate]:
        """The up-to-date rolling state for this trailing window, or
        ``None`` when the query cannot be served incrementally (empty
        series, ``now`` behind the newest sample, or a window start that
        moved backwards)."""
        n = len(self._times)
        if n == self._head or now < self._times[-1]:
            return None
        start = now - duration
        agg = self._aggs.get(duration)
        if agg is None:
            # Seed a cold aggregate at the window's left edge so the first
            # read costs O(window), not O(ring) (ingesting the whole ring
            # just to evict most of it again).
            pos = bisect_left(self._times, start, self._head)
            agg = WindowAggregate(duration, self._abs0 + pos)
            self._aggs[duration] = agg
        elif start < agg.last_start:
            return None
        agg.ingest(self._values, self._abs0, n)
        agg.advance(self._times, self._values, self._abs0, start)
        return agg

    def _note_window_read(self, fast: bool) -> None:
        self.window_queries += 1
        if fast:
            self.window_fast += 1
        if self._telemetry is not None:
            self._telemetry.inc(
                "metrics.window.fast" if fast else "metrics.window.fallback"
            )

    def average_over(self, duration: Seconds, now: Seconds) -> Optional[float]:
        """Mean of samples in the trailing ``duration`` window, or ``None``.

        This implements readings like "average memory over the last 10
        minutes" (paper section IV-B) and "average input rate in the last
        30 minutes" (section V-C). Both paths divide the correctly
        rounded window sum by the count, so they agree bit for bit.
        """
        if self.streaming:
            agg = self._window_agg(duration, now)
            if agg is not None:
                self._note_window_read(fast=True)
                if agg.count == 0:
                    return None
                return agg.sum() / agg.count
        self._note_window_read(fast=False)
        values = self.values_in(now - duration, now)
        if not values:
            return None
        return math.fsum(values) / len(values)

    def max_over(self, duration: Seconds, now: Seconds) -> Optional[float]:
        """Max of samples in the trailing window, or ``None`` (peak usage)."""
        if self.streaming:
            agg = self._window_agg(duration, now)
            if agg is not None:
                self._note_window_read(fast=True)
                return agg.max() if agg.count else None
        self._note_window_read(fast=False)
        values = self.values_in(now - duration, now)
        return max(values) if values else None

    def percentile_over(
        self,
        duration: Seconds,
        now: Seconds,
        q: float,
        tolerance: Optional[float] = None,
    ) -> Optional[float]:
        """The ``q``-th percentile of the trailing window, or ``None``.

        With ``tolerance=None`` the exact sorting path runs. Declaring a
        tolerance opts into the histogram sketch (relative error bound
        ``tolerance``; see :mod:`repro.metrics.sketch`) — the sketch is
        maintained incrementally alongside the window state, and because
        its integer bucket counts add/remove symmetrically, the streaming
        and rescan answers are identical.
        """
        if tolerance is None:
            values = self.values_in(now - duration, now)
            return percentile(values, q) if values else None
        if self.streaming:
            agg = self._window_agg(duration, now)
            if agg is not None:
                self._note_window_read(fast=True)
                if agg.sketch is None or agg.sketch.alpha != tolerance:
                    sketch = HistogramSketch(tolerance)
                    abs0 = self._abs0
                    for v in self._values[agg.lo - abs0:agg.hi - abs0]:
                        sketch.add(v)
                    agg.sketch = sketch
                if agg.count == 0:
                    return None
                return agg.sketch.percentile(q)
        self._note_window_read(fast=False)
        values = self.values_in(now - duration, now)
        if not values:
            return None
        sketch = HistogramSketch(tolerance)
        for v in values:
            sketch.add(v)
        return sketch.percentile(q)

    # ------------------------------------------------------------------
    # Historical-range queries (the pattern analyzer's 14-day reads)
    # ------------------------------------------------------------------
    def aggregate_between(
        self, start: Seconds, end: Seconds
    ) -> Tuple[float, int, Optional[float]]:
        """``(sum, count, max)`` over ``start <= time <= end``.

        The sum is the correctly rounded (``math.fsum``) sum of the
        window's values on both the rollup-backed and the raw path, so
        the two agree bit for bit; max is exact under regrouping.
        """
        times, values = self._times, self._values
        lo = bisect_left(times, start, self._head)
        hi = bisect_right(times, end, self._head)
        if hi <= lo:
            return 0.0, 0, None
        rollup = self._rollup
        if self.streaming and rollup is not None and len(rollup):
            cov = rollup.covering(start, end)
            if cov is not None:
                b_lo, b_hi = cov
                first_bs, last_end = rollup.range_bounds(b_lo, b_hi)
                left_hi = bisect_left(times, first_bs, self._head)
                right_lo = bisect_left(times, last_end, self._head)
                # Flat accumulator: raw edge values plus the buckets'
                # expansion terms, correctly rounded by one fsum below.
                acc: List[float] = values[lo:left_hi]
                edge_max = max(acc, default=None)
                bucket_count, bucket_max = rollup.accumulate(b_lo, b_hi, acc)
                count = (left_hi - lo) + bucket_count + (hi - right_lo)
                right = values[right_lo:hi]
                acc.extend(right)
                max_value = max(
                    (
                        m for m in (
                            edge_max, bucket_max, max(right, default=None)
                        )
                        if m is not None
                    ),
                    default=None,
                )
                self.rollup_reads += 1
                if self._telemetry is not None:
                    self._telemetry.inc("metrics.rollup.reads")
                return math.fsum(acc), count, max_value
        chunk = values[lo:hi]
        return math.fsum(chunk), hi - lo, max(chunk)

    def mean_between(self, start: Seconds, end: Seconds) -> Optional[float]:
        """Mean over ``start <= time <= end``, or ``None`` if empty."""
        total, count, _ = self.aggregate_between(start, end)
        return total / count if count else None

    def max_between(self, start: Seconds, end: Seconds) -> Optional[float]:
        """Max over ``start <= time <= end``, or ``None`` if empty."""
        return self.aggregate_between(start, end)[2]

    def count_between(self, start: Seconds, end: Seconds) -> int:
        """Number of samples with ``start <= time <= end``."""
        return self.aggregate_between(start, end)[1]

    # ------------------------------------------------------------------
    # Engine control
    # ------------------------------------------------------------------
    def set_streaming(self, enabled: bool) -> None:
        """Switch the streaming read paths on or off.

        Rolling window states are discarded on any toggle — they are
        rebuilt lazily on the next read, so a series toggled off and back
        on never serves stale state.
        """
        if enabled == self.streaming:
            return
        self.streaming = enabled
        self._aggs.clear()

    def __repr__(self) -> str:
        return (
            f"TimeSeries(samples={len(self)}, retention={self.retention}, "
            f"streaming={self.streaming})"
        )
