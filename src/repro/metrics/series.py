"""A single time series with retention and windowed queries."""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.metrics.aggregate import mean
from repro.types import Seconds


class TimeSeries:
    """Append-only ``(time, value)`` samples with a retention horizon.

    Samples must arrive in non-decreasing time order (the simulation clock
    guarantees this). Old samples beyond ``retention`` are trimmed lazily on
    append, bounding memory for long runs — the pattern analyzer keeps 14
    days, everything else far less.
    """

    def __init__(self, retention: Optional[Seconds] = None) -> None:
        if retention is not None and retention <= 0:
            raise ValueError(f"retention must be positive: {retention}")
        self.retention = retention
        self._times: List[Seconds] = []
        self._values: List[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: Seconds, value: float) -> None:
        """Append a sample at ``time``."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(float(value))
        self._trim(time)

    def _trim(self, now: Seconds) -> None:
        if self.retention is None:
            return
        horizon = now - self.retention
        cut = bisect.bisect_left(self._times, horizon)
        if cut:
            del self._times[:cut]
            del self._values[:cut]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latest(self) -> Optional[float]:
        """The most recent value, or ``None`` if empty."""
        return self._values[-1] if self._values else None

    def latest_time(self) -> Optional[Seconds]:
        """The most recent sample time, or ``None`` if empty."""
        return self._times[-1] if self._times else None

    def window(self, start: Seconds, end: Seconds) -> List[Tuple[Seconds, float]]:
        """Samples with ``start <= time <= end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return list(zip(self._times[lo:hi], self._values[lo:hi]))

    def values_in(self, start: Seconds, end: Seconds) -> List[float]:
        """Just the values with ``start <= time <= end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_right(self._times, end)
        return self._values[lo:hi]

    def average_over(self, duration: Seconds, now: Seconds) -> Optional[float]:
        """Mean of samples in the trailing ``duration`` window, or ``None``.

        This implements readings like "average memory over the last 10
        minutes" (paper section IV-B) and "average input rate in the last 30
        minutes" (section V-C).
        """
        values = self.values_in(now - duration, now)
        if not values:
            return None
        return mean(values)

    def max_over(self, duration: Seconds, now: Seconds) -> Optional[float]:
        """Max of samples in the trailing window, or ``None`` (peak usage)."""
        values = self.values_in(now - duration, now)
        return max(values) if values else None

    def all_points(self) -> List[Tuple[Seconds, float]]:
        """Every retained sample (mostly for reports and tests)."""
        return list(zip(self._times, self._values))

    def __repr__(self) -> str:
        return f"TimeSeries(samples={len(self)}, retention={self.retention})"
