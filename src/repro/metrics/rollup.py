"""Coarse time-bucketed rollups for long-retention series.

The pattern analyzer keeps 14 days of per-minute input rates and rereads
them on every downscale decision — max over a 4-hour window per lookback
day, means over 30-minute windows (paper section V-C). Scanning raw
samples makes each of those reads O(window); a rollup tier pre-aggregates
the series into fixed, clock-aligned buckets (5 minutes by default) so a
historical read touches O(window / bucket) bucket summaries plus the few
raw samples at the window's ragged edges.

Exactness: each bucket stores its sample count, its max, and its sum as a
Shewchuk expansion (see :mod:`repro.metrics.window`). Combining bucket
expansions with the edge samples into one accumulator and rounding once
yields the correctly rounded sum of the raw window — bit-identical to
``math.fsum`` over the raw slice — and max is exact under any regrouping.

A bucket is only served while every sample it absorbed is still retained
by the raw series; buckets that straddle the retention horizon are
dropped and their surviving raw tail is read directly. This keeps rollup
reads equal to what a raw rescan of the *retained* samples would return.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.metrics.window import exact_add

#: Default bucket width: 5 minutes, five of the paper's per-minute samples.
DEFAULT_ROLLUP_PERIOD: float = 300.0

#: Serve a read from the rollup tier only when it spans at least this many
#: whole buckets; narrower reads scan raw samples (cheaper than edge
#: bookkeeping, and trailing-window reads are already O(1) incremental).
MIN_ROLLUP_BUCKETS = 2


class RollupTier:
    """Clock-aligned ``(count, exact-sum, max)`` buckets of one series."""

    __slots__ = ("period", "_starts", "_counts", "_sums", "_maxes")

    def __init__(self, period: float = DEFAULT_ROLLUP_PERIOD) -> None:
        if period <= 0:
            raise ValueError(f"rollup period must be positive: {period}")
        self.period = period
        self._starts: List[float] = []
        self._counts: List[int] = []
        #: Per-bucket Shewchuk expansions of the exact bucket sum.
        self._sums: List[List[float]] = []
        self._maxes: List[float] = []

    def __len__(self) -> int:
        return len(self._starts)

    def bucket_start(self, time: float) -> float:
        """The clock-aligned start of the bucket covering ``time``."""
        return math.floor(time / self.period) * self.period

    # ------------------------------------------------------------------
    # Maintenance (driven by TimeSeries on its append path)
    # ------------------------------------------------------------------
    def add(self, time: float, value: float) -> None:
        """Absorb one sample (times arrive in non-decreasing order)."""
        start = self.bucket_start(time)
        if self._starts and start <= self._starts[-1]:
            index = len(self._starts) - 1
            self._counts[index] += 1
            exact_add(self._sums[index], value)
            if value > self._maxes[index]:
                self._maxes[index] = value
        else:
            self._starts.append(start)
            self._counts.append(1)
            self._sums.append([value])
            self._maxes.append(value)

    def trim_before(self, first_live_time: float) -> None:
        """Drop buckets that include any sample older than the retained raw.

        A bucket starting before the first retained raw sample may carry
        evicted samples in its aggregates; it can no longer be served
        exactly, so it is dropped whole (its retained remainder is read
        raw).
        """
        cut = bisect_left(self._starts, first_live_time)
        if cut:
            del self._starts[:cut]
            del self._counts[:cut]
            del self._sums[:cut]
            del self._maxes[:cut]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def covering(self, start: float, end: float) -> Optional[Tuple[int, int]]:
        """Bucket index range ``[b_lo, b_hi)`` fully inside ``[start, end]``.

        A bucket covers sample times ``[bs, bs + period)``; it is usable
        for the inclusive window iff ``bs >= start`` and
        ``bs + period <= end``. Returns ``None`` when fewer than
        ``MIN_ROLLUP_BUCKETS`` qualify.
        """
        starts = self._starts
        b_lo = bisect_left(starts, start)
        b_hi = bisect_right(starts, end - self.period)
        # Float subtraction can misplace the boundary by one; fix up.
        while b_hi < len(starts) and starts[b_hi] + self.period <= end:
            b_hi += 1
        while b_hi > b_lo and starts[b_hi - 1] + self.period > end:
            b_hi -= 1
        if b_hi - b_lo < MIN_ROLLUP_BUCKETS:
            return None
        return b_lo, b_hi

    def range_bounds(self, b_lo: int, b_hi: int) -> Tuple[float, float]:
        """``(first_bucket_start, last_bucket_end)`` of a covering range."""
        return self._starts[b_lo], self._starts[b_hi - 1] + self.period

    def accumulate(
        self, b_lo: int, b_hi: int, acc: List[float]
    ) -> Tuple[int, Optional[float]]:
        """Fold buckets ``[b_lo, b_hi)`` into ``acc``, a flat float list.

        ``math.fsum`` does not need its inputs non-overlapping — it
        correctly rounds the exact real sum of whatever floats it is
        given — so bucket expansions are simply concatenated onto ``acc``
        rather than merged term by term; the caller rounds once at the
        end. Count and max fold with the C builtins over the parallel
        lists. Returns ``(sample_count, max_value)``.
        """
        if b_hi <= b_lo:
            return 0, None
        extend = acc.extend
        for partials in self._sums[b_lo:b_hi]:
            extend(partials)
        return (
            sum(self._counts[b_lo:b_hi]),
            max(self._maxes[b_lo:b_hi]),
        )

    def __repr__(self) -> str:
        return f"RollupTier(period={self.period}, buckets={len(self)})"
