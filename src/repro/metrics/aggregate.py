"""Aggregation helpers: mean, standard deviation, percentiles, CDFs.

Implemented from scratch (no numpy dependency in the library itself) so the
core package stays dependency-free; the benchmarks may use numpy for plots.

``mean`` and ``stdev`` are single-pass (Welford) implementations: they
consume any iterable without materializing it and without a second pass.
Welford's update accumulates ``(v - m) / n`` corrections instead of a raw
sum, so results can differ from the old two-pass formulas in the last few
ulps — callers treat both as approximate (the paper's imbalance measure,
report tables); nothing keys byte-exact behaviour off them.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.metrics.sketch import HistogramSketch

#: Below this many values the exact sort is cheaper than building a
#: sketch, so a declared tolerance is ignored.
SKETCH_MIN_VALUES = 64


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input (convenient for metrics).

    Single pass, streaming-friendly: works on any iterable.
    """
    count = 0
    running = 0.0
    for value in values:
        count += 1
        running += (value - running) / count
    return running if count else 0.0


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values.

    The paper uses the standard deviation of per-task processing rates to
    measure imbalanced input (section V-A). Welford's single-pass update
    replaces the old two-pass sum-of-squared-deviations: one traversal,
    no list materialization, and better conditioning for large means.
    """
    count = 0
    running_mean = 0.0
    m2 = 0.0
    for value in values:
        count += 1
        delta = value - running_mean
        running_mean += delta / count
        m2 += delta * (value - running_mean)
    if count < 2:
        return 0.0
    return math.sqrt(max(0.0, m2) / count)


def percentile(
    values: Sequence[float], q: float, tolerance: Optional[float] = None
) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Matches numpy's default ("linear") method so benchmark output is
    comparable with standard tooling.

    ``tolerance`` is the exactness flag: ``None`` (the default) always
    sorts and interpolates exactly. Callers that declare a relative error
    tolerance (reports, balancer summaries) get the O(n) histogram-sketch
    path instead of the O(n log n) sort once the input is large enough to
    matter; see :class:`repro.metrics.sketch.HistogramSketch` for the
    error contract.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    if not values:
        raise ValueError("percentile of empty sequence")
    if tolerance is not None and len(values) >= SKETCH_MIN_VALUES:
        sketch = HistogramSketch(tolerance)
        for value in values:
            sketch.add(value)
        return sketch.percentile(q)
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative_fraction)`` points.

    Used to regenerate the paper's Fig. 5 (CPU and memory usage CDFs of
    Scuba Tailer tasks).
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly below ``threshold`` (CDF evaluation)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value < threshold) / len(values)
