"""Aggregation helpers: mean, standard deviation, percentiles, CDFs.

Implemented from scratch (no numpy dependency in the library itself) so the
core package stays dependency-free; the benchmarks may use numpy for plots.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input (convenient for metrics)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Iterable[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values.

    The paper uses the standard deviation of per-task processing rates to
    measure imbalanced input (section V-A).
    """
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Matches numpy's default ("linear") method so benchmark output is
    comparable with standard tooling.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative_fraction)`` points.

    Used to regenerate the paper's Fig. 5 (CPU and memory usage CDFs of
    Scuba Tailer tasks).
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly below ``threshold`` (CDF evaluation)."""
    if not values:
        return 0.0
    return sum(1 for value in values if value < threshold) / len(values)
