"""The metric store: named series per (entity, metric) pair.

Entities are free-form strings — job ids, task ids, container ids, host ids
— so one store serves every layer. Series are created on first write with
the store's default retention; callers with special needs (the pattern
analyzer's 14 days) pass an explicit retention at creation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.series import TimeSeries
from repro.types import Seconds

#: Series retention when none is specified: two days, enough for every
#: trailing-window read in the paper except the pattern analyzer's.
DEFAULT_RETENTION: Seconds = 2 * 24 * 3600.0


class MetricStore:
    """All time series in one cluster."""

    def __init__(self, default_retention: Seconds = DEFAULT_RETENTION) -> None:
        self.default_retention = default_retention
        self._series: Dict[Tuple[str, str], TimeSeries] = {}
        #: When False the ingestion path is down: writes are dropped (a
        #: gap appears in every series) while reads keep serving whatever
        #: was recorded before — the realistic shape of a metric-store
        #: outage, and what makes scaler decisions run on stale data.
        self.available = True
        #: Samples dropped while unavailable (for reports and tests).
        self.dropped_points = 0

    def fail(self) -> None:
        """Begin an availability window: ingestion drops samples."""
        self.available = False

    def recover(self) -> None:
        """End the availability window."""
        self.available = True

    def series(
        self,
        entity: str,
        metric: str,
        retention: Optional[Seconds] = None,
    ) -> TimeSeries:
        """The series for ``(entity, metric)``, created on first use."""
        key = (entity, metric)
        if key not in self._series:
            self._series[key] = TimeSeries(
                retention if retention is not None else self.default_retention
            )
        return self._series[key]

    def record(self, entity: str, metric: str, time: Seconds, value: float) -> None:
        """Append one sample (silently dropped while unavailable)."""
        if not self.available:
            self.dropped_points += 1
            return
        self.series(entity, metric).record(time, value)

    def latest(self, entity: str, metric: str) -> Optional[float]:
        """Most recent value, or ``None`` if the series is empty/missing."""
        key = (entity, metric)
        if key not in self._series:
            return None
        return self._series[key].latest()

    def entities_with(self, metric: str) -> List[str]:
        """All entities that have ever reported ``metric`` (sorted)."""
        return sorted(
            entity for entity, name in self._series if name == metric
        )

    def drop_entity(self, entity: str) -> None:
        """Forget every series of a deleted entity."""
        stale = [key for key in self._series if key[0] == entity]
        for key in stale:
            del self._series[key]

    def __repr__(self) -> str:
        return f"MetricStore(series={len(self._series)})"
