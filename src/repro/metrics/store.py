"""The metric store: named series per (entity, metric) pair.

Entities are free-form strings — job ids, task ids, container ids, host ids
— so one store serves every layer. Series are created on first write with
the store's default retention; callers with special needs (the pattern
analyzer's 14 days) pass an explicit retention at creation.

At fleet scale the store is on the simulation's hottest path, so it keeps
two inverted indexes — entity → metrics and metric → entities — updated on
series creation/deletion, making ``entities_with`` and ``drop_entity``
O(answer) instead of O(all series), and offers :meth:`record_many`, the
batched ingestion path the task managers and collectors use to land one
coalesced sample set per engine event instead of one store call per task.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.metrics.series import TimeSeries
from repro.types import Seconds

#: Series retention when none is specified: two days, enough for every
#: trailing-window read in the paper except the pattern analyzer's.
DEFAULT_RETENTION: Seconds = 2 * 24 * 3600.0


class MetricStore:
    """All time series in one cluster."""

    def __init__(
        self,
        default_retention: Seconds = DEFAULT_RETENTION,
        streaming: bool = True,
        telemetry=None,
    ) -> None:
        self.default_retention = default_retention
        #: Whether new (and toggled) series use the streaming read paths;
        #: flip with :meth:`set_streaming` for golden on/off comparisons.
        self.streaming = streaming
        self._series: Dict[Tuple[str, str], TimeSeries] = {}
        #: Inverted indexes: entity -> metric names, metric -> entities.
        self._entity_index: Dict[str, Set[str]] = {}
        self._metric_index: Dict[str, Set[str]] = {}
        #: Optional telemetry sink (duck-typed ``.inc``); mechanism
        #: counters live under the ``metrics.*`` namespace, which the
        #: deterministic telemetry export excludes.
        self._telemetry = telemetry
        #: When False the ingestion path is down: writes are dropped (a
        #: gap appears in every series) while reads keep serving whatever
        #: was recorded before — the realistic shape of a metric-store
        #: outage, and what makes scaler decisions run on stale data.
        self.available = True
        #: Samples dropped while unavailable (for reports and tests).
        self.dropped_points = 0
        #: Ingestion counters (introspection and benchmarks).
        self.samples_ingested = 0
        self.batches_ingested = 0

    def fail(self) -> None:
        """Begin an availability window: ingestion drops samples."""
        self.available = False

    def recover(self) -> None:
        """End the availability window."""
        self.available = True

    # ------------------------------------------------------------------
    # Series lifecycle
    # ------------------------------------------------------------------
    def series(
        self,
        entity: str,
        metric: str,
        retention: Optional[Seconds] = None,
    ) -> TimeSeries:
        """The series for ``(entity, metric)``, created on first use."""
        key = (entity, metric)
        existing = self._series.get(key)
        if existing is not None:
            return existing
        created = TimeSeries(
            retention if retention is not None else self.default_retention,
            streaming=self.streaming,
            telemetry=self._telemetry,
        )
        self._series[key] = created
        self._entity_index.setdefault(entity, set()).add(metric)
        self._metric_index.setdefault(metric, set()).add(entity)
        return created

    def drop_entity(self, entity: str) -> None:
        """Forget every series of a deleted entity (O(its own series))."""
        metrics = self._entity_index.pop(entity, None)
        if not metrics:
            return
        for metric in metrics:
            del self._series[(entity, metric)]
            entities = self._metric_index.get(metric)
            if entities is not None:
                entities.discard(entity)
                if not entities:
                    del self._metric_index[metric]

    def entities_with(self, metric: str) -> List[str]:
        """All entities that have ever reported ``metric`` (sorted)."""
        return sorted(self._metric_index.get(metric, ()))

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def record(self, entity: str, metric: str, time: Seconds, value: float) -> None:
        """Append one sample (silently dropped while unavailable)."""
        if not self.available:
            self.dropped_points += 1
            return
        self.series(entity, metric).record(time, value)
        self.samples_ingested += 1

    def record_many(
        self, time: Seconds, samples: Iterable[Tuple[str, str, float]]
    ) -> int:
        """Append a batch of ``(entity, metric, value)`` samples at ``time``.

        The batched fast path: one availability check and one telemetry
        update for the whole batch, series resolved straight off the key
        dict. Callers coalesce per-entity sampling — a task manager lands
        all of its tasks' samples for one step in a single call. Returns
        the number of samples ingested (0 while unavailable).
        """
        if not self.available:
            self.dropped_points += sum(1 for _ in samples)
            return 0
        get = self._series.get
        count = 0
        for entity, metric, value in samples:
            existing = get((entity, metric))
            if existing is None:
                existing = self.series(entity, metric)
            existing.record(time, value)
            count += 1
        self.samples_ingested += count
        self.batches_ingested += 1
        if self._telemetry is not None and count:
            self._telemetry.inc("metrics.ingest.batches")
            self._telemetry.inc("metrics.ingest.samples", count)
        return count

    def load_slice(self, piece) -> int:
        """Ingest a :class:`~repro.metrics.mergeable.MetricSlice`.

        Rows land in the slice's canonical ``(time, entity, metric)``
        order, batched per distinct time through :meth:`record_many`, so
        a store fed merged slices is byte-identical to one fed the same
        rows sample by sample in time order. Returns samples ingested.
        """
        ingested = 0
        batch: List[Tuple[str, str, float]] = []
        batch_time: Optional[Seconds] = None
        for time, entity, metric, value in piece.canonical():
            if batch and time != batch_time:
                ingested += self.record_many(batch_time, batch)
                batch = []
            batch_time = time
            batch.append((entity, metric, value))
        if batch:
            ingested += self.record_many(batch_time, batch)
        return ingested

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def latest(self, entity: str, metric: str) -> Optional[float]:
        """Most recent value, or ``None`` if the series is empty/missing."""
        existing = self._series.get((entity, metric))
        return None if existing is None else existing.latest()

    # ------------------------------------------------------------------
    # Engine control
    # ------------------------------------------------------------------
    def set_streaming(self, enabled: bool) -> None:
        """Toggle the streaming read paths store-wide (existing series too).

        Reads are byte-identical either way; the toggle exists so the
        golden determinism suite can prove exactly that.
        """
        self.streaming = enabled
        for series in self._series.values():
            series.set_streaming(enabled)

    def set_telemetry(self, telemetry) -> None:
        """Attach a telemetry sink to the store and its existing series."""
        self._telemetry = telemetry
        for series in self._series.values():
            series._telemetry = telemetry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def read_stats(self) -> Dict[str, int]:
        """Aggregate per-series read/maintenance counters (for reports)."""
        stats = {
            "series": len(self._series),
            "samples_ingested": self.samples_ingested,
            "batches_ingested": self.batches_ingested,
            "window_queries": 0,
            "window_fast": 0,
            "rollup_reads": 0,
            "compactions": 0,
        }
        for series in self._series.values():
            stats["window_queries"] += series.window_queries
            stats["window_fast"] += series.window_fast
            stats["rollup_reads"] += series.rollup_reads
            stats["compactions"] += series.compactions
        return stats

    def __repr__(self) -> str:
        return f"MetricStore(series={len(self._series)})"
