"""Fixed-resolution histogram sketch for streaming percentiles.

A DDSketch-style log-bucketed histogram: every positive value lands in
bucket ``ceil(log_gamma(v))`` with ``gamma = (1 + alpha) / (1 - alpha)``,
and the bucket's representative value is off from any value it holds by a
relative error of at most ``alpha``. Negative values mirror into their own
bucket table and zeros are counted separately, so the sketch accepts any
finite input.

Accuracy contract (the "exactness flag" callers declare): the estimate
returned for the ``q``-th percentile is within relative error ``alpha``
of an order statistic adjacent to the target rank ``(q / 100) * (n - 1)``.
For interpolating percentiles this is the honest guarantee — when the two
adjacent order statistics are far apart (tiny ``n``, heavy tails) the
interpolated exact value can sit between buckets, which is why callers
that cannot tolerate that keep ``tolerance=None`` and take the exact
sorting path.

Counts are plain integers added and removed symmetrically, so a sketch
maintained incrementally over a sliding window is bucket-for-bucket
identical to one built in a single pass over the same values — the
property the streaming-on/off golden tests rely on.
"""

from __future__ import annotations

import math
from typing import Dict

#: Default relative accuracy when a caller asks for "sketched" without
#: declaring a tolerance: 1 %.
DEFAULT_ALPHA = 0.01


class HistogramSketch:
    """Mergeable log-bucket histogram with bounded relative error."""

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_pos", "_neg", "_zeros", "count")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1): {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zeros = 0
        self.count = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: float, n: int = 1) -> None:
        """Count ``value`` ``n`` times."""
        if value > 0.0:
            key = self._key(value)
            self._pos[key] = self._pos.get(key, 0) + n
        elif value < 0.0:
            key = self._key(-value)
            self._neg[key] = self._neg.get(key, 0) + n
        else:
            self._zeros += n
        self.count += n

    def remove(self, value: float, n: int = 1) -> None:
        """Uncount ``value`` (windowed eviction); exact inverse of add."""
        if value > 0.0:
            table, key = self._pos, self._key(value)
        elif value < 0.0:
            table, key = self._neg, self._key(-value)
        else:
            self._zeros -= n
            self.count -= n
            return
        remaining = table.get(key, 0) - n
        if remaining > 0:
            table[key] = remaining
        else:
            table.pop(key, None)
        self.count -= n

    def merge(self, other: "HistogramSketch") -> None:
        """Fold another sketch of the same resolution into this one."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches of different alpha: "
                f"{self.alpha} != {other.alpha}"
            )
        for key, n in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + n
        for key, n in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + n
        self._zeros += other._zeros
        self.count += other.count

    def clear(self) -> None:
        self._pos.clear()
        self._neg.clear()
        self._zeros = 0
        self.count = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _bucket_value(self, key: int) -> float:
        """Representative value of bucket ``key``: the midpoint of
        ``(gamma^(key-1), gamma^key]``, within ``alpha`` of every member."""
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def percentile(self, q: float) -> float:
        """Estimate of the ``q``-th percentile (0-100); see module docstring."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        if self.count <= 0:
            raise ValueError("percentile of empty sketch")
        rank = (q / 100.0) * (self.count - 1)
        # Walk buckets in ascending value order: negatives from largest
        # magnitude down, then zeros, then positives from smallest up.
        seen = 0
        for key in sorted(self._neg, reverse=True):
            seen += self._neg[key]
            if seen > rank:
                return -self._bucket_value(key)
        seen += self._zeros
        if seen > rank:
            return 0.0
        for key in sorted(self._pos):
            seen += self._pos[key]
            if seen > rank:
                return self._bucket_value(key)
        # rank == count - 1 lands here only via float round-off.
        if self._pos:
            return self._bucket_value(max(self._pos))
        if self._zeros:
            return 0.0
        return -self._bucket_value(min(self._neg))

    def __len__(self) -> int:
        return len(self._pos) + len(self._neg) + (1 if self._zeros else 0)

    def __repr__(self) -> str:
        return (
            f"HistogramSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self)})"
        )
