"""Warehouse tables with daily partitions."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import TurbineError


class WarehouseError(TurbineError):
    """A warehouse operation failed (unknown table, bad partition range)."""


class WarehouseTable:
    """A named table partitioned by day index."""

    def __init__(self, name: str) -> None:
        if not name:
            raise WarehouseError("table name must be non-empty")
        self.name = name
        #: day index (0 = epoch day) -> partition size in MB.
        self._partitions: Dict[int, float] = {}

    def add_partition(self, day: int, size_mb: float) -> None:
        """Land one day's partition (idempotent overwrite)."""
        if size_mb < 0:
            raise WarehouseError(f"partition size must be non-negative: {size_mb}")
        self._partitions[day] = size_mb

    def days(self) -> List[int]:
        """All days with landed partitions, sorted."""
        return sorted(self._partitions)

    def size_mb(self, day: int) -> float:
        """Size of one day's partition (0 when not landed)."""
        return self._partitions.get(day, 0.0)

    def size_between(self, first_day: int, last_day: int) -> float:
        """Total MB over an inclusive day range."""
        if last_day < first_day:
            raise WarehouseError(
                f"bad range: {first_day}..{last_day}"
            )
        return sum(
            size for day, size in self._partitions.items()
            if first_day <= day <= last_day
        )

    def __repr__(self) -> str:
        return f"WarehouseTable({self.name!r}, days={len(self._partitions)})"


class DataWarehouse:
    """The registry of warehouse tables."""

    def __init__(self) -> None:
        self.tables: Dict[str, WarehouseTable] = {}

    def ensure_table(self, name: str) -> WarehouseTable:
        """Get or create a table."""
        if name not in self.tables:
            self.tables[name] = WarehouseTable(name)
        return self.tables[name]

    def get_table(self, name: str) -> WarehouseTable:
        try:
            return self.tables[name]
        except KeyError:
            raise WarehouseError(f"unknown table {name}") from None

    def land_daily(
        self, name: str, sizes_mb: List[float], first_day: int = 0
    ) -> WarehouseTable:
        """Land a run of consecutive daily partitions."""
        table = self.ensure_table(name)
        for offset, size in enumerate(sizes_mb):
            table.add_partition(first_day + offset, size)
        return table
