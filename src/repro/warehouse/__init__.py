"""Data Warehouse substrate.

Fig. 2 shows the provisioning pipeline emitting a *batch* graph alongside
the stream graph: "A query can be executed in batch mode and/or in
streaming mode. The batch mode is useful when processing historical data,
and it uses systems and data from our Data Warehouse."

This package simulates the warehouse: named tables with daily partitions
measured in MB, enough for the batch runner to plan and execute backfills
over historical ranges.
"""

from repro.warehouse.tables import DataWarehouse, WarehouseTable

__all__ = ["DataWarehouse", "WarehouseTable"]
