"""Failure injection.

The paper's evaluation relies on induced failures: Fig. 7 manually triggers
fail-over on a few machines; section IV-C's protocol is exercised by host
loss and connection failures; storms (Fig. 9) disconnect a whole datacenter.
This module schedules those events on the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.tupperware import TupperwareCluster
from repro.sim.engine import Engine
from repro.types import HostId, Seconds


@dataclass
class FailurePlan:
    """A scripted host failure (and optional recovery)."""

    host_id: HostId
    fail_at: Seconds
    recover_at: Optional[Seconds] = None

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.fail_at:
            raise ValueError("recover_at must be after fail_at")


@dataclass
class FailureRecord:
    """What the injector actually did (for assertions and reports)."""

    host_id: HostId
    time: Seconds
    kind: str  # "fail" | "recover"
    #: Which scenario injected the event; lets overlapping chaos
    #: scenarios stay distinguishable in ``repro timeline``.
    label: str = ""


class FailureInjector:
    """Schedules scripted and random host failures on the engine."""

    def __init__(self, engine: Engine, cluster: TupperwareCluster) -> None:
        self._engine = engine
        self._cluster = cluster
        self.history: List[FailureRecord] = []

    # ------------------------------------------------------------------
    # Scripted failures
    # ------------------------------------------------------------------
    def schedule(self, plan: FailurePlan, label: str = "scripted") -> None:
        """Arrange for ``plan`` to happen at its configured times."""
        self._engine.call_at(
            plan.fail_at, lambda: self._fail(plan.host_id, label)
        )
        if plan.recover_at is not None:
            self._engine.call_at(
                plan.recover_at, lambda: self._recover(plan.host_id, label)
            )

    def schedule_all(
        self, plans: List[FailurePlan], label: str = "scripted"
    ) -> None:
        """Schedule many scripted failures at once."""
        for plan in plans:
            self.schedule(plan, label=label)

    # ------------------------------------------------------------------
    # Immediate failures (chaos scenarios inject through these so every
    # host event lands in ``history`` with its scenario label)
    # ------------------------------------------------------------------
    def fail_now(self, host_id: HostId, label: str = "") -> None:
        """Fail ``host_id`` right now, recording the event."""
        self._fail(host_id, label)

    def recover_now(self, host_id: HostId, label: str = "") -> None:
        """Recover ``host_id`` right now, recording the event."""
        self._recover(host_id, label)

    # ------------------------------------------------------------------
    # Random failures
    # ------------------------------------------------------------------
    def enable_random_failures(
        self,
        mean_time_between_failures: Seconds,
        mean_time_to_recover: Seconds,
        label: str = "random-failures",
    ) -> None:
        """Fail random live hosts with exponential inter-arrival times.

        Each failed host recovers after an exponential downtime. Draws come
        from a forked RNG stream so enabling failures does not perturb other
        randomized components.
        """
        if mean_time_between_failures <= 0 or mean_time_to_recover <= 0:
            raise ValueError("failure and recovery times must be positive")
        rng = self._engine.rng.fork(label)

        def next_failure() -> None:
            live = self._cluster.live_hosts()
            if live:
                host = rng.choice(live)
                self._fail(host.host_id, label)
                downtime = rng.expovariate(1.0 / mean_time_to_recover)
                self._engine.call_in(
                    downtime, lambda h=host.host_id: self._recover(h, label)
                )
            gap = rng.expovariate(1.0 / mean_time_between_failures)
            self._engine.call_in(gap, next_failure)

        first_gap = rng.expovariate(1.0 / mean_time_between_failures)
        self._engine.call_in(first_gap, next_failure)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fail(self, host_id: HostId, label: str = "") -> None:
        if host_id not in self._cluster.hosts:
            return  # Host was decommissioned before the event fired.
        self._cluster.fail_host(host_id)
        self.history.append(
            FailureRecord(host_id, self._engine.now, "fail", label=label)
        )

    def _recover(self, host_id: HostId, label: str = "") -> None:
        if host_id not in self._cluster.hosts:
            return
        self._cluster.recover_host(host_id)
        self.history.append(
            FailureRecord(host_id, self._engine.now, "recover", label=label)
        )
