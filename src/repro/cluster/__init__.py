"""Cluster substrate — a simulated Tupperware.

The paper layers Turbine on top of Tupperware, Facebook's Borg-like cluster
manager, which hands Turbine an allocation of Linux containers ("Turbine
Containers") on physical hosts. This package simulates exactly that
interface: hosts with multi-dimensional capacity, parent containers carved
out of hosts, and failure injection (host loss, agent restart) so the
failover protocols of section IV-C can be exercised.
"""

from repro.cluster.container import TurbineContainer
from repro.cluster.failures import FailureInjector, FailurePlan
from repro.cluster.host import Host
from repro.cluster.resources import ResourceVector
from repro.cluster.tupperware import TupperwareCluster

__all__ = [
    "ResourceVector",
    "Host",
    "TurbineContainer",
    "TupperwareCluster",
    "FailureInjector",
    "FailurePlan",
]
