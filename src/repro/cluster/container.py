"""Turbine containers.

"The Turbine Container serves as the parent container managing a pool of
resources on each physical host. Stream processing tasks are run as children
containers below the Turbine Container." (paper section VIII). A container
tracks per-task resource reservations; the local Task Manager that runs
inside it lives in :mod:`repro.tasks.manager`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.resources import ResourceVector
from repro.errors import CapacityError, ClusterError
from repro.types import ContainerId, HostId, TaskId

#: Default container shape. The paper mentions a 26 GB memory capacity as an
#: example (section IV-B); CPU is sized so a host takes roughly 4 containers
#: and the 1/5-of-container vertical-scaling limit (section V-E) leaves room
#: for multi-threaded tasks.
DEFAULT_CONTAINER_CAPACITY = ResourceVector(
    cpu=10.0, memory_gb=26.0, disk_gb=400.0, network_mbps=2000.0
)


class TurbineContainer:
    """A parent Linux container obtained from Tupperware."""

    def __init__(
        self,
        container_id: ContainerId,
        capacity: Optional[ResourceVector] = None,
    ) -> None:
        self.container_id = container_id
        self.capacity = (
            capacity if capacity is not None else DEFAULT_CONTAINER_CAPACITY
        )
        if self.capacity.any_negative():
            raise ClusterError(f"container {container_id} has negative capacity")
        self.host_id: Optional[HostId] = None
        #: Region inherited from the host at attach time.
        self.region: str = "default"
        self.alive = True
        #: Per-task resource reservations of the child containers.
        self.reservations: Dict[TaskId, ResourceVector] = {}

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def reserved(self) -> ResourceVector:
        """Sum of all child task reservations."""
        total = ResourceVector.zero()
        for reservation in self.reservations.values():
            total = total + reservation
        return total

    @property
    def available(self) -> ResourceVector:
        """Capacity not yet reserved by child tasks."""
        return (self.capacity - self.reserved).clamped_non_negative()

    def utilization(self) -> float:
        """Dominant-share utilization of reservations against capacity."""
        return self.reserved.utilization_of(self.capacity)

    # ------------------------------------------------------------------
    # Child task reservations
    # ------------------------------------------------------------------
    def reserve(self, task_id: TaskId, request: ResourceVector) -> None:
        """Reserve resources for a child task.

        Reservations are allowed to exceed capacity: Turbine tolerates
        transient over-commitment and relies on the balancer to move shards
        off hot containers. A hard failure is raised only for a dead
        container or a duplicate reservation — both are protocol errors.
        """
        if not self.alive:
            raise ClusterError(f"container {self.container_id} is dead")
        if task_id in self.reservations:
            raise CapacityError(
                f"task {task_id} already reserved in {self.container_id}"
            )
        self.reservations[task_id] = request

    def resize(self, task_id: TaskId, request: ResourceVector) -> None:
        """Change an existing reservation (vertical scaling)."""
        if task_id not in self.reservations:
            raise CapacityError(
                f"task {task_id} has no reservation in {self.container_id}"
            )
        self.reservations[task_id] = request

    def release(self, task_id: TaskId) -> ResourceVector:
        """Drop a child task's reservation and return what it held."""
        try:
            return self.reservations.pop(task_id)
        except KeyError:
            raise CapacityError(
                f"task {task_id} has no reservation in {self.container_id}"
            ) from None

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Kill the container (host failure or forced fail-over)."""
        self.alive = False
        self.reservations.clear()

    def reboot(self) -> None:
        """Reboot after a Shard Manager connection timeout (section IV-C).

        The rebooted container comes back empty; whether it keeps its shards
        depends on whether it reconnects before the fail-over interval.
        """
        self.alive = True
        self.reservations.clear()

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (
            f"TurbineContainer({self.container_id!r}, {state}, "
            f"tasks={len(self.reservations)}, host={self.host_id!r})"
        )
