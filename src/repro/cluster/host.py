"""Physical hosts.

The production Scuba Tailer cluster runs on machines with 256 GB of memory
and 48–56 CPU cores (paper section VI); those are the defaults here. A host
carries zero or more Turbine containers; when the host dies, every container
on it dies with it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.container import TurbineContainer
from repro.cluster.resources import ResourceVector
from repro.errors import ClusterError
from repro.types import ContainerId, HostId

#: Default host shape, matching the paper's Scuba Tailer fleet.
DEFAULT_HOST_CAPACITY = ResourceVector(
    cpu=48.0, memory_gb=256.0, disk_gb=2000.0, network_mbps=10_000.0
)


class Host:
    """A physical machine that hosts Turbine containers."""

    def __init__(
        self,
        host_id: HostId,
        capacity: Optional[ResourceVector] = None,
        region: str = "default",
    ) -> None:
        self.host_id = host_id
        self.capacity = capacity if capacity is not None else DEFAULT_HOST_CAPACITY
        if self.capacity.any_negative():
            raise ClusterError(f"host {host_id} has negative capacity")
        #: Region/datacenter label; the balancer can pin shards to regions
        #: (the Scuba fleet runs "in three replicated regions", section VI).
        self.region = region
        self.alive = True
        self.containers: Dict[ContainerId, TurbineContainer] = {}

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    @property
    def allocated(self) -> ResourceVector:
        """Total capacity handed out to containers on this host."""
        total = ResourceVector.zero()
        for container in self.containers.values():
            total = total + container.capacity
        return total

    @property
    def free(self) -> ResourceVector:
        """Capacity not yet carved into containers."""
        return (self.capacity - self.allocated).clamped_non_negative()

    def can_fit(self, request: ResourceVector) -> bool:
        """True if a container of shape ``request`` fits on this host."""
        return self.alive and request.fits_within(self.free)

    # ------------------------------------------------------------------
    # Container lifecycle
    # ------------------------------------------------------------------
    def attach(self, container: TurbineContainer) -> None:
        """Place a container on this host."""
        if not self.alive:
            raise ClusterError(f"host {self.host_id} is dead")
        if container.container_id in self.containers:
            raise ClusterError(
                f"container {container.container_id} already on host {self.host_id}"
            )
        if not container.capacity.fits_within(self.free):
            raise ClusterError(
                f"container {container.container_id} does not fit on host "
                f"{self.host_id} (free={self.free!r})"
            )
        container.host_id = self.host_id
        container.region = self.region
        self.containers[container.container_id] = container

    def detach(self, container_id: ContainerId) -> TurbineContainer:
        """Remove a container from this host and return it."""
        try:
            return self.containers.pop(container_id)
        except KeyError:
            raise ClusterError(
                f"container {container_id} not on host {self.host_id}"
            ) from None

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Kill this host; every container on it dies too."""
        self.alive = False
        for container in self.containers.values():
            container.kill()

    def recover(self) -> None:
        """Bring the host back up with no containers (they must be re-placed)."""
        self.alive = True
        self.containers.clear()

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (
            f"Host({self.host_id!r}, {state}, "
            f"containers={len(self.containers)})"
        )
