"""Multi-dimensional resource vectors.

Turbine adjusts resource allocation "in multiple dimensions (CPU, memory,
disk and others)" (paper section I). Everything that carries a footprint —
hosts, containers, shards, tasks, scaling plans — is expressed as a
:class:`ResourceVector` so the same arithmetic serves the balancer's
bin-packing, the scaler's estimates, and the capacity manager's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Names of the dimensions, in canonical order.
DIMENSIONS: Tuple[str, ...] = ("cpu", "memory_gb", "disk_gb", "network_mbps")


@dataclass(frozen=True)
class ResourceVector:
    """An immutable (cpu, memory, disk, network) tuple with vector algebra.

    Attributes:
        cpu: CPU cores (fractional cores allowed — most Scuba tailer tasks
            use well under one core, paper Fig. 5a).
        memory_gb: resident memory in GiB.
        disk_gb: local disk in GiB (stateful jobs only, usually).
        network_mbps: network bandwidth in Mbit/s.
    """

    cpu: float = 0.0
    memory_gb: float = 0.0
    disk_gb: float = 0.0
    network_mbps: float = 0.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.memory_gb + other.memory_gb,
            self.disk_gb + other.disk_gb,
            self.network_mbps + other.network_mbps,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu - other.cpu,
            self.memory_gb - other.memory_gb,
            self.disk_gb - other.disk_gb,
            self.network_mbps - other.network_mbps,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """This vector multiplied component-wise by ``factor``."""
        return ResourceVector(
            self.cpu * factor,
            self.memory_gb * factor,
            self.disk_gb * factor,
            self.network_mbps * factor,
        )

    def clamped_non_negative(self) -> "ResourceVector":
        """Each component floored at zero (useful after subtraction)."""
        return ResourceVector(
            max(0.0, self.cpu),
            max(0.0, self.memory_gb),
            max(0.0, self.disk_gb),
            max(0.0, self.network_mbps),
        )

    def component_max(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum — the peak of two footprints."""
        return ResourceVector(
            max(self.cpu, other.cpu),
            max(self.memory_gb, other.memory_gb),
            max(self.disk_gb, other.disk_gb),
            max(self.network_mbps, other.network_mbps),
        )

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True when every component is at most the capacity's component."""
        return (
            self.cpu <= capacity.cpu + 1e-9
            and self.memory_gb <= capacity.memory_gb + 1e-9
            and self.disk_gb <= capacity.disk_gb + 1e-9
            and self.network_mbps <= capacity.network_mbps + 1e-9
        )

    def is_zero(self) -> bool:
        """True when every component is (numerically) zero."""
        return all(abs(value) < 1e-12 for __, value in self.items())

    def any_negative(self) -> bool:
        """True when any component is negative (invalid as a footprint)."""
        return any(value < -1e-9 for __, value in self.items())

    # ------------------------------------------------------------------
    # Utilization
    # ------------------------------------------------------------------
    def utilization_of(self, capacity: "ResourceVector") -> float:
        """Dominant-share utilization of this load against a capacity.

        Returns the maximum per-dimension ratio, skipping dimensions where
        the capacity is zero (they cannot constrain placement). This is the
        quantity the balancer keeps within its utilization band.
        """
        ratios = [
            load / cap
            for (__, load), (__, cap) in zip(self.items(), capacity.items())
            if cap > 0
        ]
        return max(ratios) if ratios else 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[str, float]]:
        """Yield ``(dimension_name, value)`` pairs in canonical order."""
        yield "cpu", self.cpu
        yield "memory_gb", self.memory_gb
        yield "disk_gb", self.disk_gb
        yield "network_mbps", self.network_mbps

    def as_dict(self) -> dict:
        """A plain dict, e.g. for JSON serialization into job configs."""
        return dict(self.items())

    @classmethod
    def from_dict(cls, data: dict) -> "ResourceVector":
        """Inverse of :meth:`as_dict`; missing dimensions default to zero."""
        unknown = set(data) - set(DIMENSIONS)
        if unknown:
            raise ValueError(f"unknown resource dimensions: {sorted(unknown)}")
        return cls(**{key: float(value) for key, value in data.items()})

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={value:g}" for name, value in self.items() if value
        )
        return f"ResourceVector({parts or '0'})"
