"""The Tupperware stand-in: host fleet and container allocation.

Turbine "integrates with Facebook's container manager (Tupperware) and
obtains an allocation of Linux containers" (paper section IV). This class
provides that allocation API plus the host add/remove operations that
section IV-D says are fully automated ("making Turbine elastic to use up
all available resources").
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.cluster.container import DEFAULT_CONTAINER_CAPACITY, TurbineContainer
from repro.cluster.host import Host
from repro.cluster.resources import ResourceVector
from repro.errors import CapacityError, ClusterError
from repro.types import ContainerId, HostId


class TupperwareCluster:
    """A fleet of hosts and the Turbine containers carved out of them."""

    def __init__(self) -> None:
        self.hosts: Dict[HostId, Host] = {}
        self.containers: Dict[ContainerId, TurbineContainer] = {}
        self._container_counter = itertools.count()
        #: Callbacks invoked with the host id whenever a host dies. The
        #: Shard Manager subscribes to learn about lost containers.
        self.on_host_failure: List[Callable[[HostId], None]] = []

    # ------------------------------------------------------------------
    # Host management
    # ------------------------------------------------------------------
    def add_host(
        self,
        host_id: HostId,
        capacity: Optional[ResourceVector] = None,
        region: str = "default",
    ) -> Host:
        """Register a new physical host."""
        if host_id in self.hosts:
            raise ClusterError(f"host {host_id} already exists")
        host = Host(host_id, capacity, region=region)
        self.hosts[host_id] = host
        return host

    def add_hosts(self, count: int, prefix: str = "host") -> List[Host]:
        """Register ``count`` identical hosts named ``{prefix}-{i}``."""
        start = len(self.hosts)
        return [self.add_host(f"{prefix}-{start + i}") for i in range(count)]

    def remove_host(self, host_id: HostId) -> None:
        """Decommission a host. Containers on it are killed first."""
        host = self._get_host(host_id)
        self.fail_host(host_id)
        del self.hosts[host.host_id]

    def fail_host(self, host_id: HostId) -> None:
        """Simulate a host crash; kills its containers and notifies listeners."""
        host = self._get_host(host_id)
        if not host.alive:
            return
        dead_container_ids = list(host.containers)
        host.fail()
        for container_id in dead_container_ids:
            del self.containers[container_id]
        for callback in self.on_host_failure:
            callback(host_id)

    def recover_host(self, host_id: HostId) -> None:
        """Bring a failed host back into the pool, empty."""
        self._get_host(host_id).recover()

    def _get_host(self, host_id: HostId) -> Host:
        try:
            return self.hosts[host_id]
        except KeyError:
            raise ClusterError(f"unknown host {host_id}") from None

    # ------------------------------------------------------------------
    # Container allocation
    # ------------------------------------------------------------------
    def allocate_container(
        self,
        capacity: Optional[ResourceVector] = None,
        host_id: Optional[HostId] = None,
    ) -> TurbineContainer:
        """Carve a Turbine container out of a host.

        With no ``host_id``, the least-allocated live host that fits is
        chosen (ties broken by host id for determinism).
        """
        shape = capacity if capacity is not None else DEFAULT_CONTAINER_CAPACITY
        if host_id is not None:
            host = self._get_host(host_id)
            if not host.can_fit(shape):
                raise CapacityError(
                    f"host {host_id} cannot fit a container of {shape!r}"
                )
        else:
            host = self._pick_host(shape)
        container_id = f"turbine-{next(self._container_counter)}"
        container = TurbineContainer(container_id, shape)
        host.attach(container)
        self.containers[container_id] = container
        return container

    def allocate_fleet(
        self,
        containers_per_host: int,
        capacity: Optional[ResourceVector] = None,
    ) -> List[TurbineContainer]:
        """Allocate ``containers_per_host`` containers on every live host."""
        allocated = []
        for host in self.live_hosts():
            for __ in range(containers_per_host):
                allocated.append(
                    self.allocate_container(capacity, host_id=host.host_id)
                )
        return allocated

    def _pick_host(self, shape: ResourceVector) -> Host:
        candidates = [host for host in self.live_hosts() if host.can_fit(shape)]
        if not candidates:
            raise CapacityError(
                f"no live host can fit a container of {shape!r}"
            )
        return min(
            candidates,
            key=lambda host: (host.allocated.utilization_of(host.capacity), host.host_id),
        )

    def release_container(self, container_id: ContainerId) -> None:
        """Return a container's resources to its host."""
        try:
            container = self.containers.pop(container_id)
        except KeyError:
            raise ClusterError(f"unknown container {container_id}") from None
        if container.host_id is not None and container.host_id in self.hosts:
            host = self.hosts[container.host_id]
            if container_id in host.containers:
                host.detach(container_id)
        container.kill()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_hosts(self) -> List[Host]:
        """All hosts currently up, in id order (deterministic)."""
        return sorted(
            (host for host in self.hosts.values() if host.alive),
            key=lambda host: host.host_id,
        )

    def live_containers(self) -> List[TurbineContainer]:
        """All containers currently up, in id order (deterministic)."""
        return sorted(
            (c for c in self.containers.values() if c.alive),
            key=lambda container: container.container_id,
        )

    def total_capacity(self) -> ResourceVector:
        """Aggregate capacity of all live hosts."""
        total = ResourceVector.zero()
        for host in self.live_hosts():
            total = total + host.capacity
        return total

    def total_reserved(self) -> ResourceVector:
        """Aggregate child-task reservations across live containers."""
        total = ResourceVector.zero()
        for container in self.live_containers():
            total = total + container.reserved
        return total

    def __repr__(self) -> str:
        return (
            f"TupperwareCluster(hosts={len(self.hosts)}, "
            f"containers={len(self.containers)})"
        )
