"""Command encoding for Job Store state-machine replication.

Every Job Store mutation is serialized as a :class:`Command` — the
operation name plus exactly the arguments needed to re-execute it — and
appended to the replicated command log in execution order. Replicas
apply commands through :func:`apply_command`, which calls the *same*
store methods the original caller used, so replay semantics can never
drift from live semantics: the log-equivalence suite proves that a
fresh store fed the command stream produces a snapshot byte-identical
to the origin store's.

Encoding is canonical JSON (sorted keys, no whitespace variance) so the
log payloads themselves are deterministic per seed and byte-comparable
across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import TurbineError
from repro.jobs.configs import ConfigLevel
from repro.jobs.store import JobStore
from repro.types import JobState


class ReplicationError(TurbineError):
    """A replication protocol operation failed (bad command, no quorum
    candidate, snapshot unavailable)."""


#: Operations the replicated state machine understands — exactly the
#: Job Store's mutation surface (see ``JobStore._emit`` call sites).
COMMAND_OPS = (
    "create_job",
    "delete_job",
    "set_state",
    "write_expected",
    "commit_running",
    "mark_dirty",
)


@dataclass(frozen=True)
class Command:
    """One serialized Job Store mutation."""

    op: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in COMMAND_OPS:
            raise ReplicationError(f"unknown command op: {self.op!r}")


def encode_command(op: str, args: Dict[str, Any]) -> str:
    """Serialize one command to canonical JSON."""
    if op not in COMMAND_OPS:
        raise ReplicationError(f"unknown command op: {op!r}")
    return json.dumps(
        {"op": op, "args": args}, sort_keys=True, separators=(",", ":")
    )


def decode_command(payload: str) -> Command:
    """Parse a :func:`encode_command` payload."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as error:
        raise ReplicationError(f"malformed command payload: {error}") from None
    if not isinstance(data, dict) or "op" not in data:
        raise ReplicationError(f"malformed command payload: {payload!r}")
    return Command(op=data["op"], args=dict(data.get("args", {})))


def apply_command(store: JobStore, command: Command) -> None:
    """Replay one command against ``store``.

    Commands are logged only after the leader executed them
    successfully, and the leader is the log's sole appender, so replay
    in log order is conflict-free by construction: every
    ``write_expected`` carries the expected version the leader observed,
    and a replica at the same log position holds the same version.
    """
    args = command.args
    if command.op == "create_job":
        store.create_job(args["job_id"])
    elif command.op == "delete_job":
        store.delete_job(args["job_id"])
    elif command.op == "set_state":
        store.set_state(args["job_id"], JobState(args["state"]))
    elif command.op == "write_expected":
        store.write_expected(
            args["job_id"],
            ConfigLevel[args["level"]],
            args["config"],
            args["expected_version"],
        )
    elif command.op == "commit_running":
        store.commit_running(
            args["job_id"], args["config"], quiet=bool(args.get("quiet"))
        )
    elif command.op == "mark_dirty":
        store.mark_dirty(args["job_id"])
    else:  # pragma: no cover — Command.__post_init__ rejects these
        raise ReplicationError(f"unknown command op: {command.op!r}")
