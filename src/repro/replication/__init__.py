"""Replicated control plane: Job Store state-machine replication.

Turbine keeps its source of truth in a replicated store; this package
reproduces that property for the simulation's Job Store. Mutations are
serialized as commands onto a dedicated Scribe command log and applied
in log order by every replica, so each replica is a deterministic state
machine over the same input stream (see PAPERS.md, "stream-based
state-machine replication"). A sim-time lease elects the leader; on
leader loss a follower is caught up to the log head and promoted in
place of the endpoint, restoring write availability in seconds instead
of the 40-second single-instance reboot clock.
"""

from repro.replication.commands import (
    COMMAND_OPS,
    Command,
    ReplicationError,
    apply_command,
    decode_command,
    encode_command,
)
from repro.replication.group import (
    CATCHUP_INTERVAL,
    COMMAND_LOG_NAME,
    DEFAULT_REPLICAS,
    FOLLOWER,
    HEARTBEAT_INTERVAL,
    LEADER,
    LEASE_TIMEOUT,
    Lease,
    Replica,
    ReplicationEvent,
    ReplicationGroup,
)

__all__ = [
    "COMMAND_OPS",
    "Command",
    "ReplicationError",
    "apply_command",
    "decode_command",
    "encode_command",
    "CATCHUP_INTERVAL",
    "COMMAND_LOG_NAME",
    "DEFAULT_REPLICAS",
    "FOLLOWER",
    "HEARTBEAT_INTERVAL",
    "LEADER",
    "LEASE_TIMEOUT",
    "Lease",
    "Replica",
    "ReplicationEvent",
    "ReplicationGroup",
]
