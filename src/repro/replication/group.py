"""State-machine replication of the Job Store over a Scribe command log.

The Job Store is a deterministic state machine: its visible state is a
pure function of the mutation sequence it executed. Replication
therefore follows the stream-based SMR recipe (PAPERS.md): the serving
store (the *endpoint* — the object every client holds) taps every
successful mutation into a dedicated Scribe :class:`CommandLog`, and
each follower replica applies the log in order into its own shadow
store. Because the leader is the log's sole appender and applies
synchronously, log order equals execution order, and every replica at
log position *i* holds exactly the state the endpoint held after its
*i*-th mutation — the property the log-equivalence suite proves byte
for byte.

Roles and failover:

* **Leader** — the replica whose state *is* the endpoint. It renews a
  sim-time lease every ``heartbeat_interval``; clients keep writing
  through the endpoint exactly as they would to a singleton store, so
  with no faults a replicated platform is byte-identical to an
  unreplicated one (the golden transparency suite).
* **Followers** — poll the log every ``catchup_interval`` and apply new
  commands to their shadow stores. A follower whose next index fell
  behind the log's retention horizon — or that just (re)joined with an
  empty disk — installs a snapshot from the leader first, then tails
  the log.
* **Failover** — when the leader dies the endpoint becomes unavailable
  (clients degrade exactly as during a store outage: the State Syncer
  skips rounds on last-known-good state). Once the lease expires, the
  group deterministically elects the live follower with the highest
  applied index (ties broken by lowest replica id), catches it up to
  the log head, and installs its state into the endpoint in place.
  Write availability returns after roughly ``lease_timeout`` — seconds,
  versus the 40-second reboot clock a singleton restart pays — and no
  committed mutation is lost or re-applied, because the promoted state
  is the log-applied state.

Everything runs on the simulation engine with no randomness, so
elections and catch-up are deterministic per seed. In fault-free
operation the group emits no events and perturbs no shared state;
:attr:`events` only ever records failovers, rejoins, and snapshot
installs, which is what keeps replication-on/off timelines identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.jobs.store import JobStore
from repro.obs.bounded import BoundedList
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.replication.commands import (
    ReplicationError,
    apply_command,
    decode_command,
    encode_command,
)
from repro.scribe.bus import ScribeBus
from repro.scribe.log import RetentionError
from repro.sim.engine import Engine
from repro.types import Seconds

#: Scribe log carrying the Job Store's serialized mutations.
COMMAND_LOG_NAME = "turbine.jobstore-commands"

#: Default replica-set size (leader + two followers).
DEFAULT_REPLICAS = 3

#: How often the leader renews its lease (and expiry is checked).
HEARTBEAT_INTERVAL: Seconds = 3.0

#: Lease lifetime per renewal; failover starts when it lapses.
LEASE_TIMEOUT: Seconds = 10.0

#: How often followers poll the command log.
CATCHUP_INTERVAL: Seconds = 5.0

#: Retained replication events (failovers are rare; this is ample).
EVENT_RETENTION = 4096

#: Replica roles.
LEADER = "leader"
FOLLOWER = "follower"


@dataclass(frozen=True)
class ReplicationEvent:
    """One replication-plane incident (never emitted fault-free)."""

    time: Seconds
    kind: str    # "leader-lost" | "leader-elected" | "replica-down" | ...
    detail: str


@dataclass
class Lease:
    """The leadership lease: who serves writes, and until when."""

    holder: Optional[str]
    expires_at: Seconds
    term: int = 1


@dataclass
class Replica:
    """One member of the replica set."""

    replica_id: str
    role: str = FOLLOWER
    #: Shadow store (followers only; the leader's state is the endpoint).
    store: Optional[JobStore] = None
    #: Next log index to apply; ``None`` = fresh process, must install a
    #: snapshot before tailing the log.
    applied: Optional[int] = None
    alive: bool = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"Replica({self.replica_id!r}, {self.role}, {state}, "
            f"applied={self.applied})"
        )


class ReplicationGroup:
    """Replicates one Job Store endpoint over a Scribe command log."""

    def __init__(
        self,
        engine: Engine,
        endpoint: JobStore,
        scribe: ScribeBus,
        replicas: int = DEFAULT_REPLICAS,
        heartbeat_interval: Seconds = HEARTBEAT_INTERVAL,
        lease_timeout: Seconds = LEASE_TIMEOUT,
        catchup_interval: Seconds = CATCHUP_INTERVAL,
        log_retention: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if replicas < 2:
            raise ReplicationError(
                f"a replica set needs at least 2 members: {replicas}"
            )
        if lease_timeout <= heartbeat_interval:
            raise ReplicationError(
                "lease_timeout must exceed heartbeat_interval "
                f"({lease_timeout} <= {heartbeat_interval})"
            )
        self._engine = engine
        self._endpoint = endpoint
        self._telemetry = telemetry or NULL_TELEMETRY
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.catchup_interval = catchup_interval
        #: The replicated command log (a dedicated Scribe log partition).
        self.log = scribe.ensure_log(COMMAND_LOG_NAME, retention=log_retention)
        #: True when the log covers the store's entire history (empty
        #: store and empty log at attach). A genesis log lets a replica
        #: with no state rebuild by full replay, without a live leader to
        #: serve a snapshot — the recovery path out of a total outage.
        self._genesis_log = (
            self.log.head_index == 0 and not endpoint.job_ids()
        )
        # Bootstrap: replica-0 leads; followers start from a snapshot of
        # the endpoint taken now (mutations that predate attachment are
        # not in the log, exactly like a production log enabled mid-life).
        self.replicas: Dict[str, Replica] = {}
        bootstrap = endpoint.dump_snapshot()
        for index in range(replicas):
            replica_id = f"replica-{index}"
            if index == 0:
                replica = Replica(replica_id, role=LEADER)
            else:
                replica = Replica(
                    replica_id,
                    role=FOLLOWER,
                    store=JobStore.load_snapshot(bootstrap),
                    applied=self.log.head_index,
                )
            self.replicas[replica_id] = replica
        self.leader_id: Optional[str] = "replica-0"
        self.lease = Lease(
            holder="replica-0", expires_at=engine.now + lease_timeout
        )
        #: Failover/rejoin/snapshot incidents (timeline source
        #: ``replication``); empty for a fault-free run by design.
        self.events: List[ReplicationEvent] = BoundedList(
            maxlen=EVENT_RETENTION
        )
        #: Completed failovers as ``(promoted_at, leaderless_seconds)``.
        self.failovers: List[tuple] = []
        self._leader_lost_at: Optional[Seconds] = None
        self._lease_timer = None
        self._catchup_timer = None
        endpoint.set_command_sink(self._on_command)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the lease and catch-up timers."""
        if self._lease_timer is None:
            self._lease_timer = self._engine.every(
                self.heartbeat_interval, self._lease_tick,
                name="replication-lease",
            )
        if self._catchup_timer is None:
            self._catchup_timer = self._engine.every(
                self.catchup_interval, self._catchup_tick,
                name="replication-catchup",
            )

    def stop(self) -> None:
        """Cancel the timers (used by teardown-style tests)."""
        for timer in (self._lease_timer, self._catchup_timer):
            if timer is not None:
                timer.cancel()
        self._lease_timer = None
        self._catchup_timer = None

    # ------------------------------------------------------------------
    # Command tap (endpoint → log)
    # ------------------------------------------------------------------
    def _on_command(self, op: str, args: Dict[str, Any]) -> None:
        self.log.append(encode_command(op, args))
        self._telemetry.inc("repl.commands_appended")

    # ------------------------------------------------------------------
    # Lease and election
    # ------------------------------------------------------------------
    def _lease_tick(self) -> None:
        now = self._engine.now
        leader = (
            self.replicas[self.leader_id]
            if self.leader_id is not None
            else None
        )
        if leader is not None and leader.alive:
            self.lease.holder = leader.replica_id
            self.lease.expires_at = now + self.lease_timeout
            self._telemetry.inc("repl.heartbeats")
        elif now >= self.lease.expires_at:
            self._elect()

    def _elect(self) -> None:
        """Deterministic election among catch-up-capable live followers.

        The winner is the follower with the highest applied index (most
        caught up ⇒ shortest promotion), ties broken by lowest replica
        id — a pure function of visible state, so same-seed runs elect
        the same leader at the same tick.
        """
        candidates = [
            replica
            for replica in self.replicas.values()
            if replica.alive
            and replica.role == FOLLOWER
            and replica.applied is not None
            and replica.applied >= self.log.first_index
        ]
        if not candidates:
            self._telemetry.inc("repl.elections_stalled")
            return
        winner = min(
            candidates, key=lambda r: (-(r.applied or 0), r.replica_id)
        )
        self.lease.term += 1
        self._telemetry.inc("repl.elections")
        self._promote(winner)

    def _promote(self, replica: Replica) -> None:
        """Catch a follower up to the log head and make it the endpoint."""
        assert replica.store is not None and replica.applied is not None
        self._apply_available(replica)
        if replica.applied < self.log.head_index:  # pragma: no cover
            raise ReplicationError(
                f"{replica.replica_id} could not reach the log head "
                f"({replica.applied} < {self.log.head_index})"
            )
        now = self._engine.now
        self._endpoint.install_state(replica.store)
        self._endpoint.recover()
        replica.role = LEADER
        replica.store = None
        replica.applied = None
        self.leader_id = replica.replica_id
        self.lease.holder = replica.replica_id
        self.lease.expires_at = now + self.lease_timeout
        leaderless = (
            now - self._leader_lost_at
            if self._leader_lost_at is not None
            else 0.0
        )
        self._leader_lost_at = None
        self.failovers.append((now, leaderless))
        self._telemetry.inc("repl.promotions")
        self._telemetry.observe("repl.failover_seconds", leaderless)
        self._record(
            "leader-elected",
            f"{replica.replica_id} term {self.lease.term} "
            f"(leaderless {leaderless:g}s)",
        )

    # ------------------------------------------------------------------
    # Follower catch-up and snapshot transfer
    # ------------------------------------------------------------------
    def _catchup_tick(self) -> None:
        for replica_id in sorted(self.replicas):
            replica = self.replicas[replica_id]
            if replica.alive and replica.role == FOLLOWER:
                self._catch_up(replica)

    def _catch_up(self, replica: Replica) -> None:
        if replica.applied is None or replica.applied < self.log.first_index:
            self._install_snapshot(replica)
            return
        self._apply_available(replica)

    def _apply_available(self, replica: Replica) -> None:
        assert replica.store is not None and replica.applied is not None
        try:
            records = self.log.read_from(replica.applied)
        except RetentionError:
            # The horizon passed between ticks; snapshot next round.
            replica.applied = None
            return
        for index, payload in records:
            apply_command(replica.store, decode_command(payload))
            replica.applied = index + 1
            self._telemetry.inc("repl.commands_applied")

    def _install_snapshot(self, replica: Replica) -> None:
        """Full state transfer from the leader, then tail the log.

        Only the leader can serve a snapshot (its state is the endpoint
        and is exactly at the log head); while the group is leaderless a
        lagging replica simply waits.
        """
        leader = (
            self.replicas[self.leader_id]
            if self.leader_id is not None
            else None
        )
        if leader is None or not leader.alive or not self.log.online:
            return
        snapshot_index = self.log.head_index
        replica.store = JobStore.load_snapshot(self._endpoint.dump_snapshot())
        replica.applied = snapshot_index
        self._telemetry.inc("repl.snapshot_installs")
        self._record(
            "snapshot-install",
            f"{replica.replica_id} at log index {snapshot_index}",
        )

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def crash(self, target: str = "leader") -> str:
        """Kill one replica (``"leader"`` resolves to the current one).

        A dead leader takes endpoint availability with it — clients see
        a store outage until the lease lapses and a follower promotes.
        Returns the resolved replica id so the chaos engine can restart
        the same process later.
        """
        replica_id = (
            self.leader_id if target in ("", "leader") else target
        )
        if replica_id is None:
            raise ReplicationError("no leader to crash")
        try:
            replica = self.replicas[replica_id]
        except KeyError:
            raise ReplicationError(f"unknown replica {replica_id}") from None
        if not replica.alive:
            return replica_id
        replica.alive = False
        replica.store = None
        replica.applied = None
        self._telemetry.inc("repl.replica_crashes")
        if replica_id == self.leader_id:
            self.leader_id = None
            self._leader_lost_at = self._engine.now
            self._endpoint.fail()
            self._record(
                "leader-lost", f"{replica_id} term {self.lease.term}"
            )
        else:
            replica.role = FOLLOWER
            self._record("replica-down", replica_id)
        return replica_id

    def restart(self, replica_id: str) -> None:
        """Rejoin a crashed replica as a fresh follower.

        The process lost its disk: it comes back with no state, which
        routes it through snapshot transfer on the next catch-up tick —
        unless the log covers the store's entire history, in which case
        full replay from index 0 rebuilds it with no leader involved
        (the only way out of a total replica-set outage).
        """
        try:
            replica = self.replicas[replica_id]
        except KeyError:
            raise ReplicationError(f"unknown replica {replica_id}") from None
        if replica.alive:
            return
        replica.alive = True
        replica.role = FOLLOWER
        replica.store = JobStore()
        replica.applied = 0 if self._genesis_log else None
        self._telemetry.inc("repl.replica_restarts")
        self._record("replica-rejoin", replica_id)

    def trim_log(self) -> int:
        """Advance the retention horizon to the log head (chaos hook:
        "the data a lagging replica still needed has aged out")."""
        dropped = self.log.trim(self.log.head_index)
        self._telemetry.inc("repl.log_trims")
        return dropped

    # ------------------------------------------------------------------
    # Convergence view
    # ------------------------------------------------------------------
    @property
    def has_leader(self) -> bool:
        """Whether a live leader currently serves the endpoint."""
        return (
            self.leader_id is not None
            and self.replicas[self.leader_id].alive
        )

    def lagging_replicas(self) -> List[str]:
        """Live followers not yet at the log head (catch-up in flight).

        Dead replicas are *not* listed: a crashed process is an open
        fault, not a replica in catch-up, and must not hold the
        convergence verdict hostage while its fault window is open.
        """
        head = self.log.head_index
        lagging = []
        for replica_id in sorted(self.replicas):
            replica = self.replicas[replica_id]
            if replica.alive and replica.role == FOLLOWER:
                if replica.applied is None or replica.applied < head:
                    lagging.append(replica_id)
        return lagging

    @property
    def in_sync(self) -> bool:
        """Leader present and every live follower at the log head."""
        return self.has_leader and not self.lagging_replicas()

    def replica_snapshot(self, replica_id: str) -> str:
        """One replica's state as a snapshot (the endpoint's for the
        leader); the proof-suite primitive for byte-identity checks."""
        replica = self.replicas[replica_id]
        if replica.role == LEADER:
            return self._endpoint.dump_snapshot()
        if replica.store is None:
            raise ReplicationError(f"{replica_id} holds no state")
        return replica.store.dump_snapshot()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, kind: str, detail: str) -> None:
        self.events.append(
            ReplicationEvent(self._engine.now, kind, detail)
        )

    def __repr__(self) -> str:
        up = sum(1 for replica in self.replicas.values() if replica.alive)
        return (
            f"ReplicationGroup(leader={self.leader_id}, "
            f"replicas={up}/{len(self.replicas)} up, "
            f"log_head={self.log.head_index})"
        )
