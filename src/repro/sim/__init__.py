"""Discrete-event simulation kernel.

Everything in the Turbine reproduction is driven by this engine: services
register periodic timers (the State Syncer's 30-second round, the Task
Manager's 60-second refresh, the Shard Manager's balancing interval) and the
engine delivers callbacks in deterministic time order. Determinism is a core
design goal — the same seed always produces the same run, which makes the
paper's experiments reproducible bit-for-bit.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine, Timer
from repro.sim.events import Event, EventQueue
from repro.sim.rng import SeededRng

__all__ = ["SimClock", "Engine", "Timer", "Event", "EventQueue", "SeededRng"]
