"""The discrete-event engine.

The engine owns the clock and the event queue. Services interact with it in
two ways:

* one-shot events — ``engine.call_in(delay, fn)`` / ``engine.call_at(t, fn)``
* periodic timers — ``engine.every(interval, fn)`` returns a :class:`Timer`
  that re-arms itself after each firing and can be paused or cancelled.

Timers are the backbone of the reproduction: the paper's services are all
periodic (State Syncer every 30 s, Task Manager refresh every 60 s, shard
load report every 10 min, balancer every 30 min), so modelling them as
self-re-arming timers reproduces the propagation latencies the paper quotes
(e.g. 1–2 minute end-to-end scheduling, section IV-D).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import SeededRng
from repro.types import Seconds


class Timer:
    """A periodic timer managed by the engine.

    The timer re-schedules itself after each firing. ``cancel()`` stops it
    permanently; ``pause()`` / ``resume()`` toggle it. A paused timer does
    *not* keep its phase: resuming schedules the next firing one full
    interval from the resume time.
    """

    def __init__(
        self,
        engine: "Engine",
        interval: Seconds,
        callback: Callable[[], Any],
        name: str = "",
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive: {interval}")
        self._engine = engine
        self.interval = float(interval)
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._cancelled = False
        self._paused = False
        self.fire_count = 0

    @property
    def active(self) -> bool:
        """True while the timer will keep firing."""
        return not self._cancelled and not self._paused

    def cancel(self) -> None:
        """Stop the timer permanently."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def pause(self) -> None:
        """Stop firing until :meth:`resume` is called."""
        self._paused = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def resume(self) -> None:
        """Re-arm a paused timer one full interval from now (the paused
        phase is discarded, per the class docstring)."""
        if self._cancelled:
            raise SimulationError(f"cannot resume cancelled timer {self.name!r}")
        if not self._paused:
            return
        self._paused = False
        self._arm()

    def _arm(self, delay: Optional[Seconds] = None) -> None:
        """Schedule the next firing ``delay`` seconds from now (defaults
        to one interval). No-op while cancelled or paused, so every arming
        path — including the very first one — honours both states."""
        if self._cancelled or self._paused:
            return
        self._event = self._engine.queue.push(
            self._engine.now + (self.interval if delay is None else delay),
            self._fire,
        )

    def _fire(self) -> None:
        if self._cancelled or self._paused:
            return
        self.fire_count += 1
        # Re-arm before invoking the callback so a callback that raises does
        # not silently kill the periodic service.
        self._arm()
        self._callback()

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else ("paused" if self._paused else "active")
        return f"Timer(name={self.name!r}, interval={self.interval}, {state})"


class Engine:
    """Deterministic discrete-event simulation engine."""

    def __init__(
        self,
        seed: int = 0,
        start: Seconds = 0.0,
        instrumentation: Optional[Any] = None,
        rng: Optional[SeededRng] = None,
    ) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        #: Pass ``rng`` to share a forked stream (the parallel substrate
        #: gives partition *i* its engine ``root.fork(f"partition-{i}")``);
        #: otherwise a fresh root generator is built from ``seed``.
        self.rng = rng if rng is not None else SeededRng(seed)
        self._running = False
        #: Optional per-event hook (duck-typed ``record_event(engine, cb)``;
        #: see :class:`repro.obs.telemetry.EngineInstrumentation`). ``None``
        #: keeps dispatch on the zero-overhead path.
        self.instrumentation = instrumentation

    @property
    def now(self) -> Seconds:
        """Current simulated time."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: Seconds, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < {self.now}"
            )
        return self.queue.push(time, callback)

    def call_in(self, delay: Seconds, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative: {delay}")
        return self.queue.push(self.now + delay, callback)

    def every(
        self,
        interval: Seconds,
        callback: Callable[[], Any],
        name: str = "",
        initial_delay: Optional[Seconds] = None,
    ) -> Timer:
        """Create and arm a periodic timer.

        ``initial_delay`` controls the first firing (defaults to one full
        interval); pass a jittered value to de-synchronize replicas.
        """
        timer = Timer(self, interval, callback, name=name)
        first = interval if initial_delay is None else initial_delay
        if first < 0:
            raise SimulationError(f"initial delay must be non-negative: {first}")
        timer._arm(first)
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, callback: Callable[[], Any]) -> None:
        """Deliver one callback, through the instrumentation hook if set."""
        if self.instrumentation is None:
            callback()
        else:
            self.instrumentation.record_event(self, callback)

    def step(self) -> bool:
        """Deliver the next event. Returns False when the queue is empty."""
        next_time = self.queue.peek_time()
        if next_time is None:
            return False
        time, callback = self.queue.pop()
        self.clock.advance_to(time)
        self._dispatch(callback)
        return True

    def run_until(self, deadline: Seconds) -> None:
        """Deliver events up to and including ``deadline``.

        The clock finishes exactly at ``deadline`` even when no event falls
        on it, so back-to-back ``run_until`` calls tile time precisely.
        """
        if deadline < self.now:
            raise SimulationError(
                f"deadline is in the past: {deadline} < {self.now}"
            )
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > deadline:
                    break
                time, callback = self.queue.pop()
                self.clock.advance_to(time)
                self._dispatch(callback)
        finally:
            self._running = False
        self.clock.advance_to(deadline)

    def drain_until(self, barrier: Seconds) -> int:
        """Deliver events strictly *below* ``barrier``; return the count.

        This is the round-barrier primitive of the parallel substrate: a
        partition processes everything that happens before the barrier
        timestamp and then stops, leaving any event scheduled at exactly
        ``barrier`` for the next round (after the control plane has run
        at the barrier). The clock still finishes exactly at ``barrier``
        so back-to-back rounds tile time precisely — which means an event
        left at the barrier fires first in the next round, at a time
        equal to the then-current clock.
        """
        if barrier < self.now:
            raise SimulationError(
                f"barrier is in the past: {barrier} < {self.now}"
            )
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        processed = 0
        try:
            while True:
                next_time = self.queue.peek_time()
                if next_time is None or next_time >= barrier:
                    break
                time, callback = self.queue.pop()
                self.clock.advance_to(time)
                self._dispatch(callback)
                processed += 1
        finally:
            self._running = False
        self.clock.advance_to(barrier)
        return processed

    def run_for(self, duration: Seconds) -> None:
        """Deliver events for the next ``duration`` seconds."""
        if duration < 0:
            raise SimulationError(f"duration must be non-negative: {duration}")
        self.run_until(self.now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Deliver events until the queue is empty; returns the count.

        ``max_events`` guards against runaway self-scheduling loops (every
        periodic timer makes the queue technically never-empty, so ``drain``
        is only meaningful in timer-free unit tests).
        """
        delivered = 0
        while delivered < max_events and self.step():
            delivered += 1
        if delivered >= max_events and self.queue.peek_time() is not None:
            raise SimulationError(
                f"drain exceeded {max_events} events; "
                "did a periodic timer leak into a drain-based test?"
            )
        return delivered

    def __repr__(self) -> str:
        return f"Engine(now={self.now:.3f}, pending={len(self.queue)})"
