"""Simulation clock.

The clock is advanced only by the engine; services read it to timestamp
metrics, heartbeats, and configuration versions. Keeping the clock separate
from the engine lets substrate components depend on time without being able
to (accidentally) advance it.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.types import Seconds


class SimClock:
    """A monotonically non-decreasing simulated wall clock.

    The engine owns the single mutable reference; everyone else should treat
    the clock as read-only via :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: Seconds = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start before zero: {start}")
        self._now: Seconds = float(start)

    @property
    def now(self) -> Seconds:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: Seconds) -> None:
        """Move the clock forward to ``t``.

        Only the engine should call this. Moving backwards is an error —
        it would reorder already-delivered events.
        """
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {t} < {self._now}"
            )
        self._now = float(t)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
