"""Seeded random number generation helpers.

All randomness in the simulation flows through :class:`SeededRng` so a run
is fully determined by its seed. Components that need independent streams
derive child generators with :meth:`fork`, which keeps their draws decoupled
(adding a draw in one component does not perturb another component's
sequence).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A deterministic random source with convenience helpers."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "SeededRng":
        """Derive an independent child generator.

        The child's seed mixes the parent seed with ``label`` so that two
        forks with different labels produce unrelated streams, while the
        same (seed, label) pair always produces the same stream. The mix
        uses a stable digest — not Python's ``hash()``, which is salted
        per process and would break run-to-run reproducibility.
        """
        digest = hashlib.md5(f"{self._seed}:{label}".encode("utf-8")).digest()
        child_seed = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return SeededRng(child_seed)

    def uniform(self, low: float, high: float) -> float:
        """A float drawn uniformly from ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """An int drawn uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def expovariate(self, rate: float) -> float:
        """An exponential inter-arrival time with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """A normal draw."""
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        """A log-normal draw (used for task footprint distributions)."""
        return self._random.lognormvariate(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """A uniformly random element of ``items``."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """``k`` distinct elements of ``items``, in random order."""
        return self._random.sample(items, k)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def random(self) -> float:
        """A float in ``[0, 1)``."""
        return self._random.random()

    def jitter(self, value: float, fraction: float) -> float:
        """``value`` perturbed by up to ``±fraction`` of itself.

        Used to de-synchronize periodic timers the way real deployments do
        (e.g. Task Manager refresh threads do not all fire together).
        """
        if fraction < 0:
            raise ValueError("jitter fraction must be non-negative")
        return value * (1.0 + self._random.uniform(-fraction, fraction))
