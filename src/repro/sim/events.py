"""Event queue for the discrete-event engine.

Events are ordered by ``(time, sequence)``. The sequence number breaks ties
deterministically: two events scheduled for the same instant fire in the
order they were scheduled, which keeps runs reproducible regardless of heap
internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.errors import SimulationError
from repro.types import Seconds


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Comparison is by ``(time, seq)`` only; the callback itself never takes
    part in ordering.
    """

    time: Seconds
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    #: Cancelled events stay in the heap but are skipped on pop. This is the
    #: standard "lazy deletion" idiom for heapq-based schedulers.
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue skips it."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: Seconds, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule before time zero: {time}")
        event = Event(time=float(time), seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[Seconds]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Tuple[Seconds, Callable[[], Any]]:
        """Remove and return the next live event as ``(time, callback)``."""
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        return event.time, event.callback

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
