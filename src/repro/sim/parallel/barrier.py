"""The control plane that runs at round barriers.

Between barriers the partitions integrate their task slices in complete
isolation; *at* each barrier the coordinator merges their deltas and
runs the control-plane services exactly once, on partition 0's side of
the fence (inline in the coordinator process):

* **auto-scaler** — per-job task-count scaling on merged lag seconds,
  with hysteresis and a cooldown on the way down (paper section V);
* **load balancer** — a vertical thread multiplier once a job is pinned
  at its task-count limit (paper: tasks scale threads when the count
  cannot grow);
* **state syncer** — reconciles the commands it issued with what the
  partitions applied, and re-credits scale-down orphan lag to the job's
  task 0 one round later;
* **SLO tracker** — per-job lag-objective judgements, error budgets, and
  edge-triggered breach/recovery events.

Every decision reads only the merged view (integer sums + entity-keyed
crash records) and spec-derived scalars, so the command stream — and
with it every export — is independent of the partition count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics import MetricSlice, MetricStore
from repro.obs.telemetry import Telemetry
from repro.ops.timeline import TimelineEvent
from repro.sim.parallel.fleet import FleetSpec
from repro.sim.parallel.merge import MergedRound
from repro.sim.parallel.partition import PartitionPlan

#: SLO availability target for the lag objective (fraction of barrier
#: evaluations allowed to be in breach = 1 - target).
SLO_TARGET = 0.99

#: Scale-down hysteresis: this many consecutive low-lag barriers.
DOWNSCALE_STREAK = 3

#: Lag (as a fraction of the objective) below which a barrier counts
#: toward the downscale streak.
DOWNSCALE_FRACTION = 0.05

#: Vertical multiplier ceiling for the balancer.
MAX_THREADS_MULT = 4.0

#: Wire-command application order (partitions apply sequentially).
_COMMAND_RANK = {"threads": 0, "scale": 1, "credit": 2}

#: Width the plan-skew gauges are computed at. The *actual* plan depends
#: on the run's partition count, so its skew cannot appear in exports
#: that must be byte-identical across widths; folding the (partition-
#: independent) shard costs at one fixed reference width keeps the
#: balance observable without breaking that invariant.
PLAN_SKEW_REFERENCE_WIDTH = 4


@dataclass(frozen=True)
class ScaleAction:
    """One control-plane decision, for fingerprints and reports."""

    time: float
    job_id: str
    kind: str  # scale-up | scale-down | threads-up
    old: float
    new: float


class _JobControl:
    """Coordinator-side state for one job."""

    __slots__ = (
        "count", "initial_count", "threads_mult", "low_streak",
        "last_scale", "slo_evals", "slo_bad", "breached", "budget_spent",
        "crashes",
    )

    def __init__(self, count: int) -> None:
        self.count = count
        self.initial_count = count
        self.threads_mult = 1.0
        self.low_streak = 0
        self.last_scale = float("-inf")
        self.slo_evals = 0
        self.slo_bad = 0
        self.breached = False
        self.budget_spent = False
        self.crashes = 0


class ControlPlane:
    """Merged-view control running once per barrier on the coordinator."""

    def __init__(
        self, spec: FleetSpec, shard_costs: Optional[List[int]] = None
    ) -> None:
        self.spec = spec
        self.store = MetricStore()
        self.telemetry = Telemetry(enabled=True)
        if shard_costs:
            self._record_plan_skew(shard_costs)
        self.timeline: List[TimelineEvent] = []
        self.actions: List[ScaleAction] = []
        self._jobs = {job.job_id: job for job in spec.jobs}
        self._control: Dict[str, _JobControl] = {
            job.job_id: _JobControl(job.task_count) for job in spec.jobs
        }
        self._job_order = sorted(self._jobs)
        self._rounds = 0
        self._last_commands: List[Tuple] = []
        self._stats_digest = hashlib.md5()
        self._final_totals: Dict[str, Tuple[int, int]] = {}
        self.crash_total = 0

    def _record_plan_skew(self, shard_costs: List[int]) -> None:
        """Gauge the load-aware pack against the modulo fold.

        Both gauges fold the same measured shard costs at
        :data:`PLAN_SKEW_REFERENCE_WIDTH`, so they are deterministic and
        identical at every actual partition count — safe for the
        deterministic telemetry export.
        """
        width = min(PLAN_SKEW_REFERENCE_WIDTH, self.spec.num_shards)
        lpt = PartitionPlan.load_aware(
            self.spec.num_shards, width, shard_costs
        )
        modulo = PartitionPlan(self.spec.num_shards, width)
        self.telemetry.set_gauge("parallel.plan.skew", lpt.skew(shard_costs))
        self.telemetry.set_gauge(
            "parallel.plan.skew_modulo", modulo.skew(shard_costs)
        )

    # ------------------------------------------------------------------
    def on_round(self, barrier: float, merged: MergedRound) -> List[Tuple]:
        """Consume one merged round; return next round's wire commands."""
        self._rounds += 1
        self.telemetry.inc("parallel.rounds")
        self._land_stats(merged)
        self._syncer(barrier, merged)
        self._record_crashes(barrier, merged)
        commands: List[Tuple] = []
        latest = merged.latest(barrier)
        self._final_totals = latest
        total_lag_u = 0
        total_tasks = 0
        for job_id in self._job_order:
            lag_u, _proc_u = latest.get(job_id, (0, 0))
            total_lag_u += lag_u
            control = self._control[job_id]
            total_tasks += control.count
            lag_s = self._lag_seconds(job_id, barrier, lag_u)
            self._track_slo(barrier, job_id, lag_s)
            commands.extend(self._scale(barrier, job_id, lag_s))
        for job_id in sorted(merged.orphans):
            lag_u = merged.orphans[job_id]
            commands.append(("credit", job_id, lag_u))
            self.telemetry.inc("parallel.commands.credit")
            self._event(
                barrier, "state-syncer", "lag-credit",
                f"job={job_id} lag_mb={lag_u / 1e6:.3f}",
            )
        self.telemetry.set_gauge("fleet.lag_mb", total_lag_u / 1e6)
        self.telemetry.set_gauge("fleet.tasks", float(total_tasks))
        commands.sort(key=lambda c: (_COMMAND_RANK[c[0]], c[1]))
        self._last_commands = commands
        return commands

    # ------------------------------------------------------------------
    def _lag_seconds(self, job_id: str, t: float, lag_u: int) -> float:
        rate = self._jobs[job_id].rate_at(t)
        return (lag_u / 1e6) / max(rate, 1e-9)

    def _land_stats(self, merged: MergedRound) -> None:
        """Land merged samples into the store in canonical order."""
        rows = merged.rows()
        piece = MetricSlice()
        for row in rows:
            self._stats_digest.update(
                json.dumps(list(row), sort_keys=True).encode("utf-8")
            )
            t, job, lag_u, proc_u = row
            piece.add(t, job, "lag_mb", lag_u / 1e6)
            piece.add(t, job, "processed_mb", proc_u / 1e6)
        self.store.load_slice(piece)

    def _syncer(self, barrier: float, merged: MergedRound) -> None:
        applied = len(self._last_commands)
        if applied:
            self.telemetry.inc("parallel.syncer.applied", applied)
            self._event(
                barrier, "state-syncer", "sync-round", f"applied={applied}"
            )

    def _record_crashes(self, barrier: float, merged: MergedRound) -> None:
        if not merged.crashes:
            return
        per_job: Dict[str, int] = {}
        for _t, job_id, _tindex in merged.crashes:
            per_job[job_id] = per_job.get(job_id, 0) + 1
        for job_id in sorted(per_job):
            count = per_job[job_id]
            self._control[job_id].crashes += count
            self.crash_total += count
            self.telemetry.inc("parallel.crashes", count)
            self._event(
                barrier, "task-manager", "task-crashes",
                f"job={job_id} count={count}",
            )

    # ------------------------------------------------------------------
    def _scale(self, barrier: float, job_id: str, lag_s: float) -> List[Tuple]:
        job = self._jobs[job_id]
        control = self._control[job_id]
        commands: List[Tuple] = []
        if lag_s > job.lag_objective_s:
            control.low_streak = 0
            if control.count < job.task_count_limit:
                new = min(
                    job.task_count_limit,
                    max(control.count + 1, (control.count * 3 + 1) // 2),
                )
                commands.append(("scale", job_id, new))
                self._note_scale(barrier, job_id, "scale-up", control, new)
            elif (
                lag_s > 2.0 * job.lag_objective_s
                and control.threads_mult < MAX_THREADS_MULT
            ):
                new_mult = control.threads_mult + 1.0
                commands.append(("threads", job_id, new_mult))
                self.actions.append(ScaleAction(
                    barrier, job_id, "threads-up", control.threads_mult,
                    new_mult,
                ))
                self.telemetry.inc("parallel.commands.threads")
                self._event(
                    barrier, "load-balancer", "threads-up",
                    f"job={job_id} mult={control.threads_mult:.0f}"
                    f"->{new_mult:.0f} lag_s={lag_s:.1f}",
                )
                control.threads_mult = new_mult
        elif (
            lag_s < DOWNSCALE_FRACTION * job.lag_objective_s
            and control.count > control.initial_count
        ):
            control.low_streak += 1
            cooled = (
                barrier - control.last_scale
                >= 2.0 * self.spec.round_interval
            )
            if control.low_streak >= DOWNSCALE_STREAK and cooled:
                new = max(
                    control.initial_count,
                    control.count - max(1, control.count // 5),
                )
                if new < control.count:
                    commands.append(("scale", job_id, new))
                    self._note_scale(
                        barrier, job_id, "scale-down", control, new
                    )
                control.low_streak = 0
        else:
            control.low_streak = 0
        return commands

    def _note_scale(
        self,
        barrier: float,
        job_id: str,
        kind: str,
        control: _JobControl,
        new: int,
    ) -> None:
        self.actions.append(
            ScaleAction(barrier, job_id, kind, control.count, new)
        )
        self.telemetry.inc(f"parallel.commands.{kind}")
        self._event(
            barrier, "auto-scaler", kind,
            f"job={job_id} tasks={control.count}->{new}",
        )
        control.count = new
        control.last_scale = barrier

    # ------------------------------------------------------------------
    def _track_slo(self, barrier: float, job_id: str, lag_s: float) -> None:
        job = self._jobs[job_id]
        control = self._control[job_id]
        control.slo_evals += 1
        bad = lag_s > job.lag_objective_s
        if bad:
            control.slo_bad += 1
            self.telemetry.inc("slo.lag.bad")
        self.telemetry.inc("slo.lag.evals")
        if bad != control.breached:
            control.breached = bad
            kind = "slo-breach" if bad else "slo-recovered"
            self._event(
                barrier, "slo-tracker", kind,
                f"job={job_id} lag_s={lag_s:.1f} "
                f"objective_s={job.lag_objective_s:.1f}",
            )
        if not control.budget_spent and self._budget_burned(control) >= 1.0:
            control.budget_spent = True
            self._event(
                barrier, "slo-tracker", "budget-exhausted",
                f"job={job_id} bad={control.slo_bad}/{control.slo_evals}",
            )

    @staticmethod
    def _budget_burned(control: _JobControl) -> float:
        allowed = (1.0 - SLO_TARGET) * control.slo_evals
        if allowed <= 0.0:
            return 0.0
        return control.slo_bad / allowed

    # ------------------------------------------------------------------
    def _event(self, time: float, source: str, kind: str, detail: str) -> None:
        self.timeline.append(TimelineEvent(time, source, kind, detail))

    # ------------------------------------------------------------------
    # Exports — all canonical, all partition-count independent.
    # ------------------------------------------------------------------
    def slo_report(self, now: float) -> Dict:
        slos: Dict[str, Dict] = {}
        for job_id in self._job_order:
            job = self._jobs[job_id]
            control = self._control[job_id]
            slos[job_id] = {
                "objective_s": job.lag_objective_s,
                "target": SLO_TARGET,
                "evals": control.slo_evals,
                "bad": control.slo_bad,
                "breached": control.breached,
                "budget_burned": round(self._budget_burned(control), 6),
            }
        return {
            "generated_at": now,
            "rounds": self._rounds,
            "slos": slos,
        }

    def fingerprint(self, now: float) -> Dict:
        final: Dict[str, Dict] = {}
        for job_id in self._job_order:
            control = self._control[job_id]
            lag_u, proc_u = self._final_totals.get(job_id, (0, 0))
            final[job_id] = {
                "task_count": control.count,
                "threads_mult": control.threads_mult,
                "lag_u": lag_u,
                "processed_u": proc_u,
                "crashes": control.crashes,
            }
        return {
            "spec": self.spec.to_summary(),
            "final": final,
            "actions": [
                [a.time, a.job_id, a.kind, a.old, a.new] for a in self.actions
            ],
            "slo": self.slo_report(now),
            "rounds": self._rounds,
            "crash_total": self.crash_total,
            "stats_digest": self._stats_digest.hexdigest(),
        }

    def timeline_text(self) -> str:
        events = sorted(
            self.timeline, key=lambda e: (e.time, e.source, e.detail)
        )
        return "".join(str(event) + "\n" for event in events)
