"""The sharded parallel simulation substrate.

One Python event loop caps fleet size no matter how fast each hot path
gets. This package partitions the simulated fleet by the existing MD5
task-to-shard mapping (paper section IV-A1) into N independent event
engines — each with its own :class:`~repro.sim.engine.Engine`, a
``SeededRng.fork(f"partition-{i}")`` stream, and a task-runtime /
metric-store slice — synchronized at control-plane round barriers, and
optionally executed across cores via :mod:`multiprocessing` with pickled
per-round deltas.

The merge step keeps every export (fingerprint, timeline, SLO report,
deterministic telemetry, metric series) **byte-identical** to the
single-loop run. Two design rules make that provable:

* every observable random draw is keyed by a *stable entity label*
  (task id), never by the partition that happens to host the entity —
  the per-partition fork streams drive only partition-local concerns;
* every observable aggregate crosses the partition boundary as a
  fixed-point integer (micro-MB), so merge addition is associative and
  commutative, and the coordinator always reduces deltas in canonical
  (time, job, partition-independent) order.

See ``DESIGN.md`` ("Parallel substrate") for the full argument.
"""

from repro.sim.parallel.barrier import ControlPlane, ScaleAction
from repro.sim.parallel.fleet import (
    FleetJob,
    FleetSpec,
    PartitionRunner,
    RoundDelta,
    measure_shard_costs,
    standard_fleet,
)
from repro.sim.parallel.merge import MergedRound, merge_deltas
from repro.sim.parallel.partition import (
    PartitionPlan,
    partition_for_shard,
    partition_for_task,
)
from repro.sim.parallel.plane import (
    DataPlaneSlice,
    PlatformDataPlane,
    TaskStepProfile,
)
from repro.sim.parallel.runner import (
    ParallelResult,
    ParallelSimulation,
    run_fleet,
)

__all__ = [
    "ControlPlane",
    "DataPlaneSlice",
    "FleetJob",
    "FleetSpec",
    "MergedRound",
    "ParallelResult",
    "ParallelSimulation",
    "PartitionPlan",
    "PartitionRunner",
    "PlatformDataPlane",
    "RoundDelta",
    "ScaleAction",
    "TaskStepProfile",
    "measure_shard_costs",
    "merge_deltas",
    "partition_for_shard",
    "partition_for_task",
    "run_fleet",
    "standard_fleet",
]
