"""The partitioning rule: MD5 task → shard → partition.

The data plane already buckets every task into a shard by MD5 hash
(:func:`repro.tasks.shard.shard_index_for_task`); the parallel substrate
reuses that exact mapping and folds shards onto partitions with a plain
modulus. Both steps are pure functions of stable identifiers, so any
process — a worker that just started, the coordinator, a test — computes
the same slicing without coordination, which is the same property that
lets Turbine's Task Managers agree on shard membership without talking
to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import SimulationError
from repro.tasks.shard import shard_index_for_task


def partition_for_shard(shard_index: int, num_partitions: int) -> int:
    """The partition that owns ``shard_index`` (round-robin fold)."""
    if num_partitions <= 0:
        raise SimulationError(
            f"num_partitions must be positive: {num_partitions}"
        )
    return shard_index % num_partitions


def partition_for_task(
    task_id: str, num_shards: int, num_partitions: int
) -> int:
    """The partition that simulates ``task_id``."""
    return partition_for_shard(
        shard_index_for_task(task_id, num_shards), num_partitions
    )


@dataclass(frozen=True)
class PartitionPlan:
    """A fleet's static slicing into partitions.

    Frozen on purpose: the shard → partition fold never changes during a
    run (tasks move between *shards* only by being created or deleted,
    which the control plane does at barriers), so the plan can be built
    once and shipped to workers by value.
    """

    num_shards: int
    num_partitions: int

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise SimulationError(
                f"num_shards must be positive: {self.num_shards}"
            )
        if self.num_partitions <= 0:
            raise SimulationError(
                f"num_partitions must be positive: {self.num_partitions}"
            )
        if self.num_partitions > self.num_shards:
            raise SimulationError(
                f"cannot split {self.num_shards} shards into "
                f"{self.num_partitions} partitions (each partition needs "
                "at least one shard)"
            )

    def owns_shard(self, shard_index: int, partition_index: int) -> bool:
        """Whether ``partition_index`` simulates ``shard_index``."""
        return shard_index % self.num_partitions == partition_index

    def owns_task(self, task_id: str, partition_index: int) -> bool:
        """Whether ``partition_index`` simulates ``task_id``."""
        return (
            partition_for_task(task_id, self.num_shards, self.num_partitions)
            == partition_index
        )

    def shards_of(self, partition_index: int) -> List[int]:
        """All shard indexes owned by one partition (ascending)."""
        if not 0 <= partition_index < self.num_partitions:
            raise SimulationError(
                f"partition index out of range: {partition_index}"
            )
        return list(
            range(partition_index, self.num_shards, self.num_partitions)
        )
