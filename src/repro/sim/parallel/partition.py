"""The partitioning rule: MD5 task → shard → partition.

The data plane already buckets every task into a shard by MD5 hash
(:func:`repro.tasks.shard.shard_index_for_task`); the parallel substrate
reuses that exact mapping and folds shards onto partitions with a plain
modulus. Both steps are pure functions of stable identifiers, so any
process — a worker that just started, the coordinator, a test — computes
the same slicing without coordination, which is the same property that
lets Turbine's Task Managers agree on shard membership without talking
to each other.

When per-shard step costs are known (measured over a warmup window), the
modulo fold can be replaced by a *load-aware* plan:
:meth:`PartitionPlan.load_aware` packs shards onto partitions with
deterministic LPT (greedy longest-processing-time, ties broken by shard
index) and falls back to the modulo fold whenever greedy packing would
not improve the max-partition cost — so a load-aware plan is provably
never worse than the modulo one on the metric that bounds wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.tasks.shard import shard_index_for_task


def partition_for_shard(shard_index: int, num_partitions: int) -> int:
    """The partition that owns ``shard_index`` (round-robin fold)."""
    if num_partitions <= 0:
        raise SimulationError(
            f"num_partitions must be positive: {num_partitions}"
        )
    return shard_index % num_partitions


def partition_for_task(
    task_id: str, num_shards: int, num_partitions: int
) -> int:
    """The partition that simulates ``task_id``."""
    return partition_for_shard(
        shard_index_for_task(task_id, num_shards), num_partitions
    )


@dataclass(frozen=True)
class PartitionPlan:
    """A fleet's static slicing into partitions.

    Frozen on purpose: the shard → partition fold never changes during a
    run (tasks move between *shards* only by being created or deleted,
    which the control plane does at barriers), so the plan can be built
    once and shipped to workers by value.

    ``assignment`` is ``None`` for the default modulo fold, or a tuple of
    ``num_shards`` partition indexes for an explicit (load-aware) fold.
    Either way the plan is a pure value: pickling it to a worker yields a
    plan that answers :meth:`owns_shard` identically.
    """

    num_shards: int
    num_partitions: int
    assignment: Optional[Tuple[int, ...]] = field(default=None)

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise SimulationError(
                f"num_shards must be positive: {self.num_shards}"
            )
        if self.num_partitions <= 0:
            raise SimulationError(
                f"num_partitions must be positive: {self.num_partitions}"
            )
        if self.num_partitions > self.num_shards:
            raise SimulationError(
                f"cannot split {self.num_shards} shards into "
                f"{self.num_partitions} partitions (each partition needs "
                "at least one shard)"
            )
        if self.assignment is not None:
            if len(self.assignment) != self.num_shards:
                raise SimulationError(
                    f"assignment length {len(self.assignment)} != "
                    f"num_shards {self.num_shards}"
                )
            for shard, partition in enumerate(self.assignment):
                if not 0 <= partition < self.num_partitions:
                    raise SimulationError(
                        f"assignment[{shard}] = {partition} out of range "
                        f"for {self.num_partitions} partitions"
                    )

    @classmethod
    def load_aware(
        cls,
        num_shards: int,
        num_partitions: int,
        shard_costs: Sequence[float],
    ) -> "PartitionPlan":
        """Pack shards onto partitions by measured cost (deterministic LPT).

        Shards are taken in decreasing-cost order (ties by ascending shard
        index) and each is assigned to the currently least-loaded partition
        (ties by fewest shards, then lowest partition index). If the greedy
        packing does not beat the modulo fold on max-partition cost, the
        modulo plan is returned instead — ``load_aware`` is never worse
        than modulo on the cost of the hottest partition.
        """
        modulo = cls(num_shards, num_partitions)
        lpt = cls.lpt(num_shards, num_partitions, shard_costs)
        if lpt.max_cost(shard_costs) > modulo.max_cost(shard_costs):
            return modulo
        return lpt

    @classmethod
    def lpt(
        cls,
        num_shards: int,
        num_partitions: int,
        shard_costs: Sequence[float],
    ) -> "PartitionPlan":
        """The pure greedy-LPT pack (no modulo fallback).

        Deterministic by construction: shards visit in ``(-cost, index)``
        order and each lands on the least-loaded partition (ties by
        fewest shards, then lowest index). Because the visit order sorts
        by cost and the target choice depends only on accumulated loads,
        the resulting *partition-cost multiset* is a function of the
        cost multiset alone — permuting which shard carries which cost
        permutes the assignment but not the packing (the property suite
        asserts this).
        """
        if len(shard_costs) != num_shards:
            raise SimulationError(
                f"need one cost per shard: got {len(shard_costs)} costs "
                f"for {num_shards} shards"
            )
        order = sorted(
            range(num_shards), key=lambda s: (-shard_costs[s], s)
        )
        loads = [0.0] * num_partitions
        counts = [0] * num_partitions
        assignment = [0] * num_shards
        for shard in order:
            target = min(
                range(num_partitions),
                key=lambda p: (loads[p], counts[p], p),
            )
            assignment[shard] = target
            loads[target] += shard_costs[shard]
            counts[target] += 1
        return cls(num_shards, num_partitions, tuple(assignment))

    def owns_shard(self, shard_index: int, partition_index: int) -> bool:
        """Whether ``partition_index`` simulates ``shard_index``."""
        if self.assignment is not None:
            return self.assignment[shard_index] == partition_index
        return shard_index % self.num_partitions == partition_index

    def partition_of_shard(self, shard_index: int) -> int:
        """The partition that owns ``shard_index`` under this plan."""
        if not 0 <= shard_index < self.num_shards:
            raise SimulationError(
                f"shard index out of range: {shard_index}"
            )
        if self.assignment is not None:
            return self.assignment[shard_index]
        return shard_index % self.num_partitions

    def owns_task(self, task_id: str, partition_index: int) -> bool:
        """Whether ``partition_index`` simulates ``task_id``."""
        return (
            self.partition_of_shard(
                shard_index_for_task(task_id, self.num_shards)
            )
            == partition_index
        )

    def shards_of(self, partition_index: int) -> List[int]:
        """All shard indexes owned by one partition (ascending)."""
        if not 0 <= partition_index < self.num_partitions:
            raise SimulationError(
                f"partition index out of range: {partition_index}"
            )
        if self.assignment is not None:
            return [
                shard
                for shard, partition in enumerate(self.assignment)
                if partition == partition_index
            ]
        return list(
            range(partition_index, self.num_shards, self.num_partitions)
        )

    def partition_costs(self, shard_costs: Sequence[float]) -> Tuple[float, ...]:
        """Total cost landing on each partition under this plan."""
        if len(shard_costs) != self.num_shards:
            raise SimulationError(
                f"need one cost per shard: got {len(shard_costs)} costs "
                f"for {self.num_shards} shards"
            )
        totals = [0.0] * self.num_partitions
        for shard, cost in enumerate(shard_costs):
            totals[self.partition_of_shard(shard)] += cost
        return tuple(totals)

    def max_cost(self, shard_costs: Sequence[float]) -> float:
        """Cost of the hottest partition — the wall-clock bound."""
        return max(self.partition_costs(shard_costs))

    def skew(self, shard_costs: Sequence[float]) -> float:
        """``max/mean`` partition cost; 1.0 is a perfect pack."""
        costs = self.partition_costs(shard_costs)
        mean = sum(costs) / len(costs)
        if mean <= 0:
            return 1.0
        return max(costs) / mean
