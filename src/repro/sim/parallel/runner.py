"""The parallel round loop: N partitions, one coordinator.

The execution plan is the same for every mode:

1. every partition applies the previous barrier's commands and runs its
   engine to the next barrier (``drain_until`` — events strictly below);
2. the coordinator merges the round deltas canonically;
3. the control plane runs once on the merged view and emits the next
   round's commands.

With ``use_processes=False`` all partitions run in-process, in index
order. With ``use_processes=True`` partitions 1..N-1 live in worker
processes fed over pipes, while partition 0 runs inline in the
coordinator process (the control plane runs "on partition 0") —
the coordinator sends the round to every worker *first*, computes
partition 0 while they work, then collects. Both modes produce the same
deltas, so exports are byte-identical across modes and partition counts;
only wall-clock differs. If worker processes cannot start (exotic
platforms, restricted sandboxes) the runner falls back to in-process
execution and records that in the result.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.parallel.barrier import ControlPlane
from repro.sim.parallel.fleet import (
    FleetSpec,
    PartitionRunner,
    RoundDelta,
    measure_shard_costs,
)
from repro.sim.parallel.merge import merge_deltas
from repro.sim.parallel.partition import PartitionPlan


def _worker_main(
    conn, spec: FleetSpec, num_partitions: int, index: int, plan=None
):
    """Worker process: one partition, driven round by round over a pipe."""
    runner = PartitionRunner(spec, num_partitions, index, plan=plan)
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _kind, barrier, commands = message
            conn.send(runner.run_round(barrier, commands))
    finally:
        conn.close()


@dataclass
class ParallelResult:
    """Everything a run produces.

    The export fields (``fingerprint_json``, ``timeline_text``,
    ``slo_json``, ``telemetry_jsonl``, the metric ``store``) are
    byte-identical across partition counts and execution modes; the
    diagnostic fields (``wall_s``, ``events``, ``used_processes``) are
    not and must never be written into a compared artifact.
    """

    fingerprint: dict
    fingerprint_json: str
    timeline_text: str
    slo_json: str
    telemetry_jsonl: str
    store: object
    partitions: int
    rounds: int
    used_processes: bool
    wall_s: float
    events: int
    #: Diagnostic: whether the load-aware plan was used, and its
    #: max/mean partition cost at the *actual* width (the reference-width
    #: gauges live in telemetry; these two are for run summaries only).
    load_aware: bool = False
    plan_skew: float = 1.0


class ParallelSimulation:
    """Run one fleet spec across N partitions."""

    def __init__(
        self,
        spec: FleetSpec,
        partitions: int = 1,
        use_processes: bool = False,
        load_aware: bool = False,
    ) -> None:
        if partitions <= 0:
            raise SimulationError(
                f"partitions must be positive: {partitions}"
            )
        if partitions > spec.num_shards:
            raise SimulationError(
                f"cannot split {spec.num_shards} shards into "
                f"{partitions} partitions"
            )
        self.spec = spec
        self.partitions = partitions
        self.use_processes = use_processes
        self.load_aware = load_aware
        self.shard_costs: List[int] = []
        self.plan = None
        if load_aware:
            # A pure function of the spec, so the plan (and its skew
            # gauges) are identical at every partition count and mode.
            self.shard_costs = measure_shard_costs(spec)
            self.plan = PartitionPlan.load_aware(
                spec.num_shards, partitions, self.shard_costs
            )

    # ------------------------------------------------------------------
    def run(self) -> ParallelResult:
        started = time.perf_counter()
        control = ControlPlane(self.spec, shard_costs=self.shard_costs)
        barriers = self.spec.barriers()
        if self.use_processes and self.partitions > 1:
            deltas_by_round, used_processes = self._run_rounds_processes(
                control, barriers
            )
        else:
            deltas_by_round = self._run_rounds_inline(control, barriers)
            used_processes = False
        wall_s = time.perf_counter() - started
        duration = self.spec.duration
        events = sum(
            delta.events for deltas in deltas_by_round for delta in deltas
        )
        fingerprint = control.fingerprint(duration)
        return ParallelResult(
            fingerprint=fingerprint,
            fingerprint_json=json.dumps(
                fingerprint, sort_keys=True, indent=2
            ) + "\n",
            timeline_text=control.timeline_text(),
            slo_json=json.dumps(
                control.slo_report(duration), sort_keys=True, indent=2
            ) + "\n",
            telemetry_jsonl=control.telemetry.to_jsonl(deterministic=True),
            store=control.store,
            partitions=self.partitions,
            rounds=len(barriers),
            used_processes=used_processes,
            wall_s=wall_s,
            events=events,
            load_aware=self.load_aware,
            plan_skew=(
                self.plan.skew(self.shard_costs)
                if self.plan is not None else 1.0
            ),
        )

    # ------------------------------------------------------------------
    def _run_rounds_inline(
        self, control: ControlPlane, barriers: Sequence[float]
    ) -> List[List[RoundDelta]]:
        runners = [
            PartitionRunner(self.spec, self.partitions, index, plan=self.plan)
            for index in range(self.partitions)
        ]
        commands: List[Tuple] = []
        all_deltas: List[List[RoundDelta]] = []
        for barrier in barriers:
            deltas = [
                runner.run_round(barrier, commands) for runner in runners
            ]
            all_deltas.append(deltas)
            commands = control.on_round(barrier, merge_deltas(deltas))
        return all_deltas

    def _run_rounds_processes(
        self, control: ControlPlane, barriers: Sequence[float]
    ) -> Tuple[List[List[RoundDelta]], bool]:
        """Partition 0 inline, partitions 1..N-1 in worker processes.

        Any failure to *start* the workers falls back to the inline path;
        a failure mid-run is a real error and propagates (the run cannot
        be trusted after a worker died holding a partition's state).
        """
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context("spawn")
        # Build partition 0 BEFORE forking: its construction warms the
        # module-level MD5 shard table, which forked workers then
        # inherit copy-on-write instead of recomputing the digests.
        local = PartitionRunner(self.spec, self.partitions, 0, plan=self.plan)
        workers = []
        pipes = []
        try:
            for index in range(1, self.partitions):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn, self.spec, self.partitions, index,
                        self.plan,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append(process)
                pipes.append(parent_conn)
        except OSError:  # pragma: no cover - fork-restricted sandboxes
            for process in workers:
                process.terminate()
            return self._run_rounds_inline(control, barriers), False
        commands: List[Tuple] = []
        all_deltas: List[List[RoundDelta]] = []
        try:
            for barrier in barriers:
                for conn in pipes:
                    conn.send(("round", barrier, commands))
                local_delta = local.run_round(barrier, commands)
                deltas = [local_delta] + [conn.recv() for conn in pipes]
                all_deltas.append(deltas)
                commands = control.on_round(barrier, merge_deltas(deltas))
        finally:
            for conn in pipes:
                try:
                    conn.send(("stop",))
                    conn.close()
                except (OSError, BrokenPipeError):
                    pass
            for process in workers:
                process.join(timeout=30)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
        return all_deltas, True


def run_fleet(
    spec: FleetSpec,
    partitions: int = 1,
    use_processes: bool = False,
    load_aware: bool = False,
) -> ParallelResult:
    """Convenience wrapper: build and run in one call."""
    return ParallelSimulation(
        spec,
        partitions=partitions,
        use_processes=use_processes,
        load_aware=load_aware,
    ).run()
