"""Canonical merge of per-partition round deltas.

The merge is the load-bearing half of the byte-identity argument: given
the deltas of one round from any number of partitions, it must produce
the same :class:`MergedRound` regardless of how tasks were distributed
or in which order deltas arrived. It holds because

* stats and orphan lag are fixed-point integers quantized **per task**
  upstream — integer addition is associative and commutative, so
  grouping by (time, job) and summing is partition-count-invariant;
* crash records are entity-keyed facts — merging is a set union,
  emitted in canonical ``(time, job, task_index)`` order;
* nothing partition-scoped (event counts, delta sizes, arrival order)
  ever flows into the merged view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.parallel.fleet import RoundDelta


@dataclass
class MergedRound:
    """One round's fleet-wide view, identical for any partition count."""

    #: ``(t, job_id) -> (lag_u, processed_u)`` integer sums.
    stats: Dict[Tuple[float, str], Tuple[int, int]] = field(
        default_factory=dict
    )
    #: Crash records in canonical ``(time, job, task_index)`` order.
    crashes: List[Tuple[float, str, int]] = field(default_factory=list)
    #: ``job_id -> lag_u`` orphaned by scale-downs applied this round.
    orphans: Dict[str, int] = field(default_factory=dict)
    #: Total engine events across partitions (diagnostic only — this is
    #: partition-dependent and must never reach an export).
    events: int = 0

    def stat_times(self) -> List[float]:
        """Distinct sample times, ascending."""
        return sorted({t for t, _job in self.stats})

    def rows(self) -> List[Tuple[float, str, int, int]]:
        """All samples as ``(t, job, lag_u, processed_u)``, canonical order."""
        return [
            (t, job, lag_u, proc_u)
            for (t, job), (lag_u, proc_u) in sorted(self.stats.items())
        ]

    def latest(self, t: float) -> Dict[str, Tuple[int, int]]:
        """The per-job sums sampled exactly at ``t`` (normally a barrier)."""
        return {
            job: sums for (time, job), sums in self.stats.items() if time == t
        }


def merge_deltas(deltas: Sequence[RoundDelta]) -> MergedRound:
    """Fold one round's partition deltas into the fleet-wide view.

    Deltas are processed in ascending partition order for definiteness,
    but the result provably does not depend on it: every reduction below
    is an integer sum or a sorted union.
    """
    if not deltas:
        raise SimulationError("cannot merge an empty round")
    seen = set()
    for delta in deltas:
        if delta.partition_index in seen:
            raise SimulationError(
                f"duplicate delta for partition {delta.partition_index}"
            )
        seen.add(delta.partition_index)
    merged = MergedRound()
    for delta in sorted(deltas, key=lambda d: d.partition_index):
        for t, job, lag_u, proc_u in delta.stats:
            key = (t, job)
            prev = merged.stats.get(key)
            if prev is None:
                merged.stats[key] = (lag_u, proc_u)
            else:
                merged.stats[key] = (prev[0] + lag_u, prev[1] + proc_u)
        merged.crashes.extend(delta.crashes)
        for job, lag_u in delta.orphans:
            merged.orphans[job] = merged.orphans.get(job, 0) + lag_u
        merged.events += delta.events
    merged.crashes.sort()
    return merged
