"""The parallel data plane for the full Turbine platform.

The platform's per-tick data-plane work — planning every running task's
step (water-filling its partition slice against committed checkpoints)
and the desired-cores contention pass before it — is a pure function of
a small read-only view: category heads, committed offsets, and per-task
spec scalars. This module fans that planning out over partition slices
while the single authoritative engine keeps every control-plane decision
exactly where it always ran:

* a :class:`DataPlaneSlice` is the worker-side mirror of one slice's
  inputs (heads, offsets, spec profiles). Workers start **empty** — no
  forked platform state — and are fed deltas at every tick, so nothing
  unpicklable ever crosses the pipe;
* the coordinator (:class:`PlatformDataPlane`) owns the platform's one
  step timer. Each tick is a two-phase barrier exchange copying the
  fork+pipe idiom of :mod:`repro.sim.parallel.runner`: (1) sync + the
  desired-cores pass, (2) per-container throttles out, per-task
  :class:`~repro.tasks.runtime.StepPlan` tuples back;
* every plan is applied **centrally**, in canonical slot order (manager
  spawn order, then each manager's task order), through the same
  :func:`~repro.tasks.runtime.apply_step_plan` the serial path uses — so
  checkpoints, downstream publishes, OOM handling, metric ingestion, and
  therefore every export are byte-identical at any partition count.

Routing reuses the substrate's shard → partition fold: the task's MD5
shard (already tracked by its Task Manager) indexes a
:class:`~repro.sim.parallel.partition.PartitionPlan`. After a warmup
window of measured per-shard step cost the plane replans with
deterministic LPT, marking every job's offsets dirty so worker mirrors
resync before the new routing takes effect. Fault injection and watches
never run on workers: chaos mutates authoritative state between ticks,
and the next tick's head/offset sync routes the consequences to the
owning partition at the barrier.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.parallel.partition import PartitionPlan
from repro.tasks.runtime import (
    IDLE_PLAN,
    StepPlan,
    plan_desired_cores,
    plan_task_step,
)
from repro.types import TaskState

#: Micro-MB fixed point for per-shard cost accounting (matches
#: :data:`repro.tasks.sliced.MICRO_MB`): integer sums are associative,
#: so the measured costs — and the plan built from them — are identical
#: at every partition count.
_COST_SCALE = 1_000_000.0

#: Width the deterministic plan-skew gauges are computed at (see
#: :data:`repro.sim.parallel.barrier.PLAN_SKEW_REFERENCE_WIDTH`): the
#: actual plan depends on the run's partition count, so only a
#: fixed-width fold of the (partition-independent) costs may be
#: exported.
PLAN_SKEW_REFERENCE_WIDTH = 4

#: Default number of plane ticks measured before the LPT replan.
DEFAULT_WARMUP_TICKS = 30


class TaskStepProfile(NamedTuple):
    """The spec scalars a worker needs to plan one task's steps.

    A plain tuple of primitives: shipped once per (task, settings
    fingerprint) and compared by value to decide re-shipping.
    """

    job_id: str
    input_category: str
    task_index: int
    task_count: int
    max_rate_mb: float
    rate_per_thread_mb: float
    memory_overhead_gb: float
    stateful: bool
    state_key_cardinality: int
    reserved_memory_gb: float


def profile_of(spec) -> TaskStepProfile:
    """Extract the planning profile from a :class:`TaskSpec`."""
    return TaskStepProfile(
        job_id=spec.job_id,
        input_category=spec.input_category or "",
        task_index=spec.task_index,
        task_count=spec.task_count,
        # Same float expression as RunningTask.max_rate_mb().
        max_rate_mb=spec.rate_per_thread_mb * spec.threads,
        rate_per_thread_mb=spec.rate_per_thread_mb,
        memory_overhead_gb=spec.memory_overhead_gb,
        stateful=spec.stateful,
        state_key_cardinality=spec.state_key_cardinality,
        reserved_memory_gb=spec.resources.memory_gb,
    )


def _shard_index(shard_id: str) -> int:
    """``shard-00042`` → 42 (the platform's shard-id naming)."""
    return int(shard_id.rsplit("-", 1)[1])


class DataPlaneSlice:
    """Worker-side mirror: everything one slice needs to plan steps.

    Holds only plain data — category heads/online flags, committed
    offsets, spec profiles — updated by :meth:`sync` deltas from the
    coordinator plus self-applied commits from its own plans. The mirror
    is exact by construction (floats cross the pipe bit-for-bit), so a
    plan computed here equals the plan the coordinator would compute
    in place.
    """

    def __init__(self) -> None:
        #: task_id -> TaskStepProfile
        self.specs: Dict[str, TaskStepProfile] = {}
        #: category -> (heads tuple, online tuple)
        self.heads: Dict[str, Tuple[Tuple[float, ...], Tuple[bool, ...]]] = {}
        #: job_id -> {partition_id: committed offset}
        self.offsets: Dict[str, Dict[str, float]] = {}
        #: task_id -> [(partition index, partition id)] in slice order
        self._pids: Dict[str, List[Tuple[int, str]]] = {}
        self._roster: List[Tuple] = []
        self._entries: Dict[int, List[Tuple[float, float]]] = {}

    def sync(
        self,
        heads: Dict[str, Tuple[Tuple[float, ...], Tuple[bool, ...]]],
        checkpoints: Dict[str, Dict[str, float]],
        specs: Dict[str, TaskStepProfile],
    ) -> None:
        """Land a coordinator delta (changed heads, dirty-job offsets,
        new/changed spec profiles) on the mirror."""
        self.heads.update(heads)
        for job_id, snapshot in checkpoints.items():
            # Replace-per-job semantics: a wiped job must lose its
            # mirrored offsets, not merge over them.
            self.offsets[job_id] = dict(snapshot)
        for task_id, profile in specs.items():
            self.specs[task_id] = profile
            self._pids.pop(task_id, None)

    def _pid_list(
        self, task_id: str, profile: TaskStepProfile
    ) -> List[Tuple[int, str]]:
        """The task's partition slice — same membership and order as
        ``Category.partition_slice`` (ascending index, ``index %
        task_count == task_index``)."""
        cached = self._pids.get(task_id)
        if cached is not None:
            return cached
        category = profile.input_category
        count = len(self.heads[category][0])
        pids = [
            (index, f"{category}/{index}")
            for index in range(count)
            if profile.task_count > 0
            and index % profile.task_count == profile.task_index
        ]
        self._pids[task_id] = pids
        return pids

    def desired(self, roster: Sequence[Tuple]) -> List[Tuple[int, float]]:
        """Phase 1: per-slot desired cores, caching each task's partition
        entries for phase 2.

        ``roster`` rows are ``(slot, container_ordinal, task_id, running,
        restore_remaining_mb, dt)``.
        """
        self._roster = list(roster)
        self._entries = {}
        out: List[Tuple[int, float]] = []
        for slot, _cont, task_id, running, restore_remaining, dt in roster:
            profile = self.specs[task_id]
            entries: List[Tuple[float, float]] = []
            available_sum = 0.0
            if profile.input_category:
                heads, online = self.heads[profile.input_category]
                job_offsets = self.offsets.get(profile.job_id, {})
                available: List[float] = []
                for index, pid in self._pid_list(task_id, profile):
                    offset = job_offsets.get(pid, 0.0)
                    backlog = heads[index] - offset
                    entries.append(
                        (backlog if online[index] else 0.0, offset)
                    )
                    available.append(backlog)
                available_sum = sum(available)
            self._entries[slot] = entries
            out.append((
                slot,
                plan_desired_cores(
                    running=running,
                    dt=dt,
                    restoring=restore_remaining > 1e-9,
                    available_sum_mb=available_sum,
                    max_rate_mb=profile.max_rate_mb,
                    rate_per_thread_mb=profile.rate_per_thread_mb,
                ),
            ))
        return out

    def plans(
        self, throttles: Sequence[float]
    ) -> List[Tuple[int, StepPlan]]:
        """Phase 2: per-slot step plans under the broadcast throttles.

        Each plan's commits are self-applied to the mirrored offsets, so
        next tick's reads are current without any coordinator re-ship.
        """
        out: List[Tuple[int, StepPlan]] = []
        for slot, cont, task_id, running, restore_remaining, dt in self._roster:
            if not running:
                out.append((slot, IDLE_PLAN))
                continue
            profile = self.specs[task_id]
            plan = plan_task_step(
                entries=self._entries[slot],
                dt=dt,
                throttle=throttles[cont],
                restore_remaining_mb=restore_remaining,
                max_rate_mb=profile.max_rate_mb,
                rate_per_thread_mb=profile.rate_per_thread_mb,
                memory_overhead_gb=profile.memory_overhead_gb,
                stateful=profile.stateful,
                state_key_cardinality=profile.state_key_cardinality,
                task_count=profile.task_count,
                reserved_memory_gb=profile.reserved_memory_gb,
            )
            if plan.commits:
                pids = self._pids[task_id]
                job_offsets = self.offsets.setdefault(profile.job_id, {})
                for seq, new_offset in plan.commits:
                    job_offsets[pids[seq][1]] = new_offset
            out.append((slot, plan))
        return out


def _plane_worker_main(conn) -> None:
    """Worker process: one empty-start slice, driven tick by tick."""
    slice_ = DataPlaneSlice()
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "tick":
                _kind, heads, checkpoints, specs, roster = message
                slice_.sync(heads, checkpoints, specs)
                conn.send(slice_.desired(roster))
            elif kind == "plans":
                conn.send(slice_.plans(message[1]))
    finally:
        conn.close()


class _InlineSlice:
    """In-process slice handle (partitions without worker processes)."""

    def __init__(self) -> None:
        self.slice = DataPlaneSlice()
        self._reply = None

    def start_tick(self, heads, checkpoints, specs, roster) -> None:
        self.slice.sync(heads, checkpoints, specs)
        self._reply = self.slice.desired(roster)

    def start_plans(self, throttles) -> None:
        self._reply = self.slice.plans(throttles)

    def finish(self):
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


class _WorkerSlice:
    """Fork+pipe slice handle: the runner.py worker idiom, per tick."""

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_plane_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def start_tick(self, heads, checkpoints, specs, roster) -> None:
        self.conn.send(("tick", heads, checkpoints, specs, roster))

    def start_plans(self, throttles) -> None:
        self.conn.send(("plans", throttles))

    def finish(self):
        return self.conn.recv()

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.close()
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=30)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()


class PlatformDataPlane:
    """Coordinator: owns the platform's step timer and the tick barrier.

    ``partitions=1`` runs the same slot/plan/apply pipeline with no
    remote slices — the comparison baseline for the byte-identity
    goldens. Worker processes are an execution detail: if they cannot
    start, the plane falls back to in-process slices and records it.
    """

    def __init__(
        self,
        platform,
        partitions: int = 1,
        use_processes: bool = False,
        warmup_ticks: int = DEFAULT_WARMUP_TICKS,
    ) -> None:
        num_shards = platform.config.num_shards
        if partitions <= 0:
            raise SimulationError(
                f"partitions must be positive: {partitions}"
            )
        if partitions > num_shards:
            raise SimulationError(
                f"cannot split {num_shards} shards into "
                f"{partitions} partitions"
            )
        if warmup_ticks <= 0:
            raise SimulationError(
                f"warmup_ticks must be positive: {warmup_ticks}"
            )
        self._platform = platform
        self.partitions = partitions
        self.use_processes = use_processes
        self.warmup_ticks = warmup_ticks
        self.num_shards = num_shards
        #: Routing plan: modulo until the warmup replan.
        self.plan = PartitionPlan(num_shards, partitions)
        #: Actual-width skew after the replan (run summaries only — the
        #: deterministic gauges are emitted at the reference width).
        self.plan_skew = 1.0
        self.replanned = False
        self.ticks = 0
        #: None until the first tick decides; then True (fork workers
        #: engaged) or False (inline slices).
        self.used_processes: Optional[bool] = None
        self._handles: Optional[List] = None
        self._closed = False
        self._timer = None
        self._cost_u = [0] * num_shards
        self._dirty_jobs: set = set()
        self._all_dirty = True
        #: Checkpoint-store mutation counter the mirrors reflect, per
        #: job (recorded after each tick's apply phase). A mismatch at
        #:  the next sync means some control-plane writer moved the
        #: job's cursors between ticks — mirrors must resync.
        self._job_version: Dict[str, int] = {}
        self._remote_jobs: set = set()
        #: Per-category head snapshot + version for change detection.
        self._head_cache: Dict[str, Tuple] = {}
        self._head_version: Dict[str, int] = {}
        #: Per-slice shipped state (index 0 unused — coordinator slice).
        self._slice_heads: List[Dict[str, int]] = [
            {} for _ in range(partitions)
        ]
        self._shipped_specs: List[Dict[str, TaskStepProfile]] = [
            {} for _ in range(partitions)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the plane's single step timer (replaces every manager's)."""
        if self._timer is not None:
            return
        self._timer = self._platform.engine.every(
            self._platform.config.step_interval,
            self._tick,
            name="data-plane-step",
        )

    def close(self) -> None:
        """Stop worker processes; later ticks run on fresh inline slices."""
        if self._handles:
            for handle in self._handles:
                handle.close()
        self._handles = None
        self._closed = True
        # Fresh slices start empty: force a full resync if ticks continue.
        self._all_dirty = True
        self._slice_heads = [{} for _ in range(self.partitions)]
        self._shipped_specs = [{} for _ in range(self.partitions)]

    def mark_job_dirty(self, job_id: str) -> None:
        """A coordinator-side mutation touched this job's checkpoints
        (task start/roll-forward, chaos wipe, deprovision): re-ship its
        offset snapshot to every slice at the next tick."""
        self._dirty_jobs.add(job_id)

    # ------------------------------------------------------------------
    def _ensure_handles(self) -> List:
        if self._handles is not None:
            return self._handles
        handles: List = []
        remote = self.partitions - 1
        if remote > 0 and self.use_processes and not self._closed:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = multiprocessing.get_context("spawn")
            try:
                for _ in range(remote):
                    handles.append(_WorkerSlice(ctx))
                self.used_processes = True
            except OSError:  # pragma: no cover - fork-restricted sandboxes
                for handle in handles:
                    handle.close()
                handles = [_InlineSlice() for _ in range(remote)]
                self.used_processes = False
        else:
            handles = [_InlineSlice() for _ in range(remote)]
            self.used_processes = False
        self._handles = handles
        return handles

    # ------------------------------------------------------------------
    # The tick barrier
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        platform = self._platform
        now = platform.engine.now
        platform.telemetry.inc("dataplane.ticks")
        rows = []
        for manager in platform.task_managers.values():
            dt = manager.data_plane_dt(now)
            if not manager.alive or dt <= 0:
                continue
            items = list(manager.tasks.items())
            if manager.standbys:
                items.extend(manager.standbys.items())
            rows.append((manager, dt, items))
        if not rows:
            self._finish_tick()
            return
        handles = self._ensure_handles()

        # --- Contention scan ----------------------------------------------
        # Pre-tick plans assume each Scribe partition has exactly one
        # reader this tick. Two transients break that: a duplicate task
        # incarnation (fail-over races, promoted standbys), and a mixed
        # task_count while a rescale rolls out (old and new slicings
        # overlap). Those jobs step with *sequential* visibility — their
        # slots stay on the coordinator and their plans are computed at
        # apply time, one by one, exactly like the serial loop. The
        # detection is a pure function of the roster, so it is identical
        # at every partition count.
        contended: set = set()
        seen_task_ids: set = set()
        job_task_count: Dict[str, int] = {}
        for _manager, _dt, items in rows:
            for task_id, task in items:
                job_id = task.spec.job_id
                if task_id in seen_task_ids:
                    contended.add(job_id)
                seen_task_ids.add(task_id)
                known = job_task_count.setdefault(
                    job_id, task.spec.task_count
                )
                if known != task.spec.task_count:
                    contended.add(job_id)

        # --- Slot routing -------------------------------------------------
        # Slots are assigned in canonical order: manager spawn order, then
        # each manager's tasks (then standbys) — the exact order the
        # serial per-manager loop visited them. Standbys have no shard and
        # always stay on the coordinator slice.
        local_roster: List[Tuple[int, int, object, float, bool]] = []
        remote_roster: List[List[Tuple]] = [[] for _ in range(self.partitions)]
        specs_update: List[Dict[str, TaskStepProfile]] = [
            {} for _ in range(self.partitions)
        ]
        slot_shard: List[Optional[int]] = []
        slot_cont: List[int] = []
        slot = 0
        for cont, (manager, dt, items) in enumerate(rows):
            shard_of = manager._task_shard
            for task_id, task in items:
                shard_id = shard_of.get(task_id)
                shard = (
                    _shard_index(shard_id) if shard_id is not None else None
                )
                lazy = task.spec.job_id in contended
                target = 0
                if shard is not None and not lazy and self.partitions > 1:
                    target = self.plan.partition_of_shard(shard)
                slot_shard.append(shard)
                slot_cont.append(cont)
                if target == 0:
                    local_roster.append((slot, cont, task, dt, lazy))
                else:
                    profile = profile_of(task.spec)
                    shipped = self._shipped_specs[target]
                    if shipped.get(task_id) != profile:
                        specs_update[target][task_id] = profile
                        shipped[task_id] = profile
                    remote_roster[target].append((
                        slot,
                        cont,
                        task_id,
                        task.state == TaskState.RUNNING,
                        task.restore_remaining_mb,
                        dt,
                    ))
                slot += 1
        total_slots = slot

        # --- Sync payloads ------------------------------------------------
        heads_payload = self._heads_payload(remote_roster)
        checkpoint_payload = self._checkpoint_payload(remote_roster)
        self._dirty_jobs.clear()
        self._all_dirty = False

        # --- Phase 1: desired cores (workers first, local overlapped) ----
        for target in range(1, self.partitions):
            handles[target - 1].start_tick(
                heads_payload[target],
                checkpoint_payload,
                specs_update[target],
                remote_roster[target],
            )
        desired_by_slot = [0.0] * total_slots
        for slot, _cont, task, dt, _lazy in local_roster:
            desired_by_slot[slot] = task.desired_cores(dt)
        for target in range(1, self.partitions):
            for slot, value in handles[target - 1].finish():
                desired_by_slot[slot] = value
        # Per-container sums accumulate in ascending slot order — the same
        # left-to-right float addition the serial loop performed.
        desired_sums = [0.0] * len(rows)
        for slot in range(total_slots):
            desired_sums[slot_cont[slot]] += desired_by_slot[slot]
        throttles = [
            manager.throttle_for(desired_sums[cont])
            for cont, (manager, _dt, _items) in enumerate(rows)
        ]

        # --- Phase 2: step plans ------------------------------------------
        for target in range(1, self.partitions):
            handles[target - 1].start_plans(throttles)
        plans_by_slot: List[Optional[StepPlan]] = [None] * total_slots
        for slot, cont, task, dt, lazy in local_roster:
            # Contended-job slots stay None: the manager computes them
            # sequentially at apply time (post-apply visibility, exactly
            # like the serial loop).
            if not lazy:
                plans_by_slot[slot] = task.plan_step(dt, throttles[cont])
        for target in range(1, self.partitions):
            for slot, plan in handles[target - 1].finish():
                plans_by_slot[slot] = plan

        # --- Apply centrally, in canonical slot order ---------------------
        position = 0
        for cont, (manager, dt, items) in enumerate(rows):
            plan_list = []
            for _task_id, task in items:
                plan_list.append((task, plans_by_slot[position]))
                position += 1
            manager.apply_data_plane_step(now, dt, throttles[cont], plan_list)

        # Mirrors self-applied their own commits, so after our apply they
        # match the store exactly — record the mutation counter they now
        # reflect (any later bump means an external writer intervened).
        checkpoints = platform.scribe.checkpoints
        for job_id in self._remote_jobs:
            self._job_version[job_id] = checkpoints.version(job_id)

        # --- Cost accounting + warmup replan ------------------------------
        # Lazily-planned (contended) slots stay None here; their cost is
        # skipped — contention is transient and the skip is identical at
        # every partition count.
        for slot in range(total_slots):
            shard = slot_shard[slot]
            plan = plans_by_slot[slot]
            if (
                shard is not None
                and plan is not None
                and plan.ran
                and plan.processed_mb > 0
            ):
                self._cost_u[shard] += int(
                    round(plan.processed_mb * _COST_SCALE)
                )
        self._finish_tick()

    def _finish_tick(self) -> None:
        self.ticks += 1
        if not self.replanned and self.ticks >= self.warmup_ticks:
            self._replan()

    # ------------------------------------------------------------------
    def _heads_payload(self, remote_roster) -> List[Dict]:
        """Changed (or never-shipped) category heads, per slice.

        Detection rides :attr:`Category.head_version` — an O(1) counter
        bumped by every head/online mutation path (traffic, task output,
        partition-loss faults) at the :class:`Partition` layer, so an
        idle category costs a dict probe per tick instead of a
        per-partition value compare.
        """
        needed: List[set] = [set() for _ in range(self.partitions)]
        all_categories = set()
        for target in range(1, self.partitions):
            shipped = self._shipped_specs[target]
            for row in remote_roster[target]:
                category = shipped[row[2]].input_category
                if category:
                    needed[target].add(category)
                    all_categories.add(category)
        scribe = self._platform.scribe
        for category_name in sorted(all_categories):
            category = scribe.get_category(category_name)
            if (
                self._head_version.get(category_name)
                == category.head_version
                and category_name in self._head_cache
            ):
                continue
            self._head_cache[category_name] = (
                tuple(p.head for p in category.partitions),
                tuple(p.online for p in category.partitions),
            )
            self._head_version[category_name] = category.head_version
        payload: List[Dict] = [{} for _ in range(self.partitions)]
        for target in range(1, self.partitions):
            slice_versions = self._slice_heads[target]
            for category_name in needed[target]:
                version = self._head_version[category_name]
                if slice_versions.get(category_name) != version:
                    payload[target][category_name] = self._head_cache[
                        category_name
                    ]
                    slice_versions[category_name] = version
        return payload

    def _checkpoint_payload(self, remote_roster) -> Dict[str, Dict[str, float]]:
        """Offset snapshots for jobs whose checkpoints were mutated
        outside the tick barrier (plus everything on a full resync).

        Staleness is detected two ways: explicit :meth:`mark_job_dirty`
        calls from known writers, and — the safety net — the checkpoint
        store's per-job mutation counter, which the coordinator records
        after every apply phase. Any writer that moves a job's cursors
        between ticks bumps the counter past the recorded value, so the
        job reships even if nobody remembered to hook that writer.
        """
        checkpoints = self._platform.scribe.checkpoints
        roster_jobs = set()
        for target in range(1, self.partitions):
            shipped = self._shipped_specs[target]
            roster_jobs.update(
                shipped[row[2]].job_id for row in remote_roster[target]
            )
        self._remote_jobs = roster_jobs
        if self._all_dirty:
            jobs = self._dirty_jobs | roster_jobs
        else:
            jobs = set(self._dirty_jobs)
            for job_id in roster_jobs:
                if checkpoints.version(job_id) != self._job_version.get(
                    job_id
                ):
                    jobs.add(job_id)
        return {
            job_id: checkpoints.snapshot(job_id) for job_id in sorted(jobs)
        }

    # ------------------------------------------------------------------
    def _replan(self) -> None:
        """Fold measured shard costs into a load-aware plan and gauge the
        skew at the fixed reference width (deterministic at any actual
        partition count; the actual-width skew stays a run summary)."""
        self.replanned = True
        costs = list(self._cost_u)
        self.plan = PartitionPlan.load_aware(
            self.num_shards, self.partitions, costs
        )
        self.plan_skew = self.plan.skew(costs)
        # A task's slice may change under the new fold; worker mirrors
        # must not trust offsets shipped for the old routing.
        self._all_dirty = True
        width = min(PLAN_SKEW_REFERENCE_WIDTH, self.num_shards)
        telemetry = self._platform.telemetry
        telemetry.set_gauge(
            "dataplane.plan.skew",
            PartitionPlan.load_aware(self.num_shards, width, costs).skew(costs),
        )
        telemetry.set_gauge(
            "dataplane.plan.skew_modulo",
            PartitionPlan(self.num_shards, width).skew(costs),
        )

    def __repr__(self) -> str:
        return (
            f"PlatformDataPlane(partitions={self.partitions}, "
            f"ticks={self.ticks}, replanned={self.replanned})"
        )
