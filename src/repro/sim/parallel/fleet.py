"""The fleet model and the per-partition runner.

A *fleet* is a set of jobs, each fanned out into tasks that the MD5
shard mapping scatters across partitions. Each partition hosts one
:class:`PartitionRunner`: its own :class:`~repro.sim.engine.Engine`
(seeded with ``SeededRng(seed).fork(f"partition-{i}")``), its own
:class:`~repro.tasks.sliced.ShardSlicedTasks` slice, and round-local
accumulators that it hands to the coordinator as a :class:`RoundDelta`
at every barrier.

A 1-partition fleet runs through exactly this code path — the parallel
run is the same simulation sliced differently, not a second
implementation to keep in sync.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.parallel.partition import PartitionPlan
from repro.sim.rng import SeededRng
from repro.tasks.sliced import ShardSlicedTasks, stable_u01

TWO_PI = 2.0 * math.pi
DAY_S = 86400.0


@dataclass(frozen=True)
class FleetJob:
    """One streaming job: tasks, diurnal traffic, an SLO, failure rates."""

    job_id: str
    task_count: int
    #: Job-wide arrival baseline, MB/s, split over tasks by stable shares.
    base_rate_mb: float
    #: Diurnal swing as a fraction of the baseline (0.3 → ±30 %).
    amplitude: float
    #: Hour-of-day offset of the traffic peak.
    phase_hours: float
    #: Per-task drain capacity, MB/s, before the vertical multiplier.
    rate_per_task_mb: float
    #: Lag SLO: seconds of backlog at the current arrival rate.
    lag_objective_s: float
    #: Auto-scaler ceiling (paper: per-job task count limits).
    task_count_limit: int
    #: Mean time between crashes of one task, seconds.
    mtbf_s: float
    #: Downtime per crash before the task resumes from checkpoint.
    restore_s: float

    def rate_at(self, t: float) -> float:
        """Arrival rate (MB/s) at simulated time ``t`` — pure, so every
        partition and the coordinator agree on it without messages."""
        swing = math.sin(TWO_PI * (t / DAY_S + self.phase_hours / 24.0))
        return max(0.0, self.base_rate_mb * (1.0 + self.amplitude * swing))


@dataclass(frozen=True)
class FleetSpec:
    """A complete, picklable description of one fleet run."""

    jobs: Tuple[FleetJob, ...]
    seed: int
    num_shards: int
    #: Data-plane integration step (arrival/drain/crash dynamics).
    step_interval: float
    #: Control-plane round barrier interval.
    round_interval: float
    duration: float
    #: Optional mid-round stats sampling; barriers always sample.
    stats_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.jobs:
            raise SimulationError("fleet has no jobs")
        ids = [job.job_id for job in self.jobs]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate job ids in fleet: {ids}")
        if self.num_shards <= 0:
            raise SimulationError(
                f"num_shards must be positive: {self.num_shards}"
            )
        if self.step_interval <= 0:
            raise SimulationError(
                f"step_interval must be positive: {self.step_interval}"
            )
        if self.round_interval < self.step_interval:
            raise SimulationError(
                "round_interval must be >= step_interval: "
                f"{self.round_interval} < {self.step_interval}"
            )
        if self.duration < self.round_interval:
            raise SimulationError(
                "duration must cover at least one round: "
                f"{self.duration} < {self.round_interval}"
            )
        if self.stats_interval is not None and self.stats_interval <= 0:
            raise SimulationError(
                f"stats_interval must be positive: {self.stats_interval}"
            )

    @property
    def total_tasks(self) -> int:
        return sum(job.task_count for job in self.jobs)

    def barriers(self) -> List[float]:
        """Round-barrier timestamps; the last one is always ``duration``.

        Computed as ``k * round_interval`` (not by accumulation) so every
        process derives bit-identical barrier times.
        """
        out: List[float] = []
        k = 1
        while k * self.round_interval < self.duration:
            out.append(k * self.round_interval)
            k += 1
        out.append(self.duration)
        return out

    def to_summary(self) -> Dict:
        """A canonical dict of the spec, for fingerprints."""
        return {
            "jobs": {job.job_id: asdict(job) for job in self.jobs},
            "seed": self.seed,
            "num_shards": self.num_shards,
            "step_interval": self.step_interval,
            "round_interval": self.round_interval,
            "stats_interval": self.stats_interval,
            "duration": self.duration,
        }


@dataclass
class RoundDelta:
    """Everything one partition observed during one round.

    All numeric payloads are either entity-keyed records (crashes) or
    fixed-point integers (stats, orphan lag), per the package's merge
    rules; the delta pickles compactly for the multiprocessing path.
    """

    partition_index: int
    #: ``(t, job_id, lag_u, processed_u)`` samples, time-ordered.
    stats: List[Tuple[float, str, int, int]] = field(default_factory=list)
    #: ``(crash_time, job_id, task_index)`` records.
    crashes: List[Tuple[float, str, int]] = field(default_factory=list)
    #: ``(job_id, lag_u)`` orphaned by scale-downs applied this round.
    orphans: List[Tuple[str, int]] = field(default_factory=list)
    #: Engine events delivered (diagnostic only: partition-dependent, so
    #: it must never feed an export).
    events: int = 0


class PartitionRunner:
    """One partition's engine, task slice, and round-local accumulators."""

    def __init__(
        self,
        spec: FleetSpec,
        num_partitions: int,
        partition_index: int,
        plan: Optional[PartitionPlan] = None,
    ) -> None:
        self.spec = spec
        self.partition_index = partition_index
        if plan is None:
            plan = PartitionPlan(spec.num_shards, num_partitions)
        elif (
            plan.num_shards != spec.num_shards
            or plan.num_partitions != num_partitions
        ):
            raise SimulationError(
                f"plan shape {plan.num_shards}x{plan.num_partitions} does "
                f"not match fleet {spec.num_shards}x{num_partitions}"
            )
        self.plan = plan
        root = SeededRng(spec.seed)
        self.engine = Engine(
            start=0.0, rng=root.fork(f"partition-{partition_index}")
        )
        self.tasks = ShardSlicedTasks(
            jobs=spec.jobs,
            seed=spec.seed,
            num_shards=spec.num_shards,
            owns=lambda shard: self.plan.owns_shard(shard, partition_index),
        )
        self._job_order = self.tasks.job_order
        self._jobs_by_id = {job.job_id: job for job in spec.jobs}
        self._sorted_jobs = [self._jobs_by_id[j] for j in self._job_order]
        self._last_step = 0.0
        self._stats: List[Tuple[float, str, int, int]] = []
        self._crashes: List[Tuple[float, str, int]] = []
        self._orphans: List[Tuple[str, int]] = []
        self.events_processed = 0
        self.engine.every(
            spec.step_interval, self._on_step, name=f"p{partition_index}-step"
        )
        if (
            spec.stats_interval is not None
            and spec.stats_interval < spec.round_interval
        ):
            self.engine.every(
                spec.stats_interval,
                self._on_stats,
                name=f"p{partition_index}-stats",
            )

    # ------------------------------------------------------------------
    def _advance_to(self, t: float) -> None:
        """Integrate the data plane over ``[last_step, t)``."""
        dt = t - self._last_step
        if dt <= 0:
            return
        rates = [job.rate_at(self._last_step) for job in self._sorted_jobs]
        self._crashes.extend(self.tasks.step(self._last_step, dt, rates))
        self._last_step = t

    def _on_step(self) -> None:
        self._advance_to(self.engine.now)

    def _on_stats(self) -> None:
        self._advance_to(self.engine.now)
        self._stats.extend(self.tasks.stats_rows(self.engine.now))

    # ------------------------------------------------------------------
    def run_round(
        self, barrier: float, commands: Sequence[Tuple] = ()
    ) -> RoundDelta:
        """Apply last barrier's commands, run to ``barrier``, emit a delta.

        Commands apply at the current clock (= the previous barrier), so
        a scale decision made at barrier *k* takes effect at the start of
        round *k+1* in every partition simultaneously. The barrier edge
        always integrates the data plane up to the barrier and samples
        stats there, so the control plane sees fresh merged state.
        """
        if commands:
            self._orphans.extend(
                self.tasks.apply_commands(self.engine.now, list(commands))
            )
        self.events_processed += self.engine.drain_until(barrier)
        self._advance_to(barrier)
        self._stats.extend(self.tasks.stats_rows(barrier))
        delta = RoundDelta(
            partition_index=self.partition_index,
            stats=self._stats,
            crashes=self._crashes,
            orphans=self._orphans,
            events=self.events_processed,
        )
        self._stats = []
        self._crashes = []
        self._orphans = []
        return delta

    def __repr__(self) -> str:
        return (
            f"PartitionRunner(index={self.partition_index}, "
            f"now={self.engine.now:.1f}, tasks={self.tasks.owned_task_total()})"
        )


def standard_fleet(
    seed: int,
    total_tasks: int = 1_000,
    num_jobs: int = 10,
    num_shards: int = 64,
    duration: float = DAY_S,
    step_interval: float = 300.0,
    round_interval: float = 3600.0,
    stats_interval: Optional[float] = None,
) -> FleetSpec:
    """A reproducible mixed fleet: diurnal jobs with varied SLOs/failure.

    Every job parameter is derived from ``(seed, job_id)`` via
    :func:`stable_u01`, so the scenario is a pure function of its
    arguments — the golden determinism tests and the CLI build byte-wise
    identical fleets from the same numbers.
    """
    per_job = max(1, total_tasks // num_jobs)
    jobs: List[FleetJob] = []
    for i in range(num_jobs):
        job_id = f"job-{i:04d}"

        def u(label: str, job_id: str = job_id) -> float:
            return stable_u01(seed, f"fleet:{job_id}:{label}")

        jobs.append(
            FleetJob(
                job_id=job_id,
                task_count=per_job,
                base_rate_mb=per_job * (0.60 + 0.35 * u("base")),
                amplitude=0.20 + 0.40 * u("amp"),
                phase_hours=24.0 * u("phase"),
                rate_per_task_mb=1.0,
                lag_objective_s=60.0 + 240.0 * u("slo"),
                task_count_limit=per_job * 2,
                mtbf_s=DAY_S * (2.0 + 6.0 * u("mtbf")),
                restore_s=60.0 + 240.0 * u("restore"),
            )
        )
    return FleetSpec(
        jobs=tuple(jobs),
        seed=seed,
        num_shards=num_shards,
        step_interval=step_interval,
        round_interval=round_interval,
        duration=duration,
        stats_interval=stats_interval,
    )


def measure_shard_costs(spec: FleetSpec, rounds: int = 1) -> List[int]:
    """Per-shard step cost (processed micro-MB) over a warmup window.

    Runs a scratch single-slice copy of the fleet over the first
    ``rounds`` round barriers with no control-plane commands, then folds
    each task's processed volume onto its MD5 shard. The scratch runner
    is discarded: the measurement is a pure function of ``(spec,
    rounds)``, so every process — coordinator, worker, test — derives
    the same costs and therefore the same load-aware plan without any
    coordination.
    """
    if rounds <= 0:
        raise SimulationError(f"rounds must be positive: {rounds}")
    probe = PartitionRunner(spec, num_partitions=1, partition_index=0)
    for barrier in spec.barriers()[:rounds]:
        probe.run_round(barrier)
    return probe.tasks.shard_processed_u()
