"""The Capacity Manager.

"The Capacity Manager monitors resource usage of jobs in a cluster and
makes sure each resource type has sufficient allocation cluster-wide ...
When cluster-level resource usage spikes up — e.g., during disaster
recovery — the Capacity Manager communicates with the Auto Scaler by
sending it the amount of remaining resources in the cluster and instructing
it to prioritize scaling up privileged jobs. In the extreme case of the
cluster running out of resources and becoming unstable, the Capacity
Manager is authorized to stop lower priority jobs and redistribute their
resources towards unblocking higher priority jobs faster." (paper
section V-F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs.bounded import BoundedList

from repro.cluster.tupperware import TupperwareCluster
from repro.errors import DegradedModeError
from repro.jobs.model import KEY_PRIORITY
from repro.jobs.plan import TaskActuator
from repro.jobs.service import JobService
from repro.scaler.proactive import AutoScaler
from repro.sim.engine import Engine, Timer
from repro.types import JobState, Priority, Seconds


@dataclass
class CapacityConfig:
    """Thresholds of the capacity manager."""

    #: Evaluation period.
    interval: Seconds = 300.0
    #: Dominant-share cluster utilization above which only privileged jobs
    #: may scale up.
    pressure_threshold: float = 0.80
    #: Utilization above which the cluster is "unstable" and low-priority
    #: jobs are stopped.
    instability_threshold: float = 0.95
    #: Priority floor imposed under pressure.
    pressure_floor: Priority = Priority.HIGH
    #: Retained :class:`CapacityEvent` audit records (bounded so endless
    #: pressure flapping in soak tests cannot grow memory without limit).
    event_retention: int = 10_000


@dataclass
class CapacityEvent:
    """Audit record: what the capacity manager did and when."""

    time: Seconds
    kind: str  # "pressure_on" | "pressure_off" | "job_stopped" | "job_resumed"
    detail: str = ""


class CapacityManager:
    """Cluster-wide resource oversight and priority-based preemption."""

    def __init__(
        self,
        engine: Engine,
        cluster: TupperwareCluster,
        job_service: JobService,
        scaler: AutoScaler,
        actuator: TaskActuator,
        config: Optional[CapacityConfig] = None,
    ) -> None:
        self._engine = engine
        self._cluster = cluster
        self._service = job_service
        self._scaler = scaler
        self._actuator = actuator
        self.config = config or CapacityConfig()
        self.events: List[CapacityEvent] = BoundedList(
            maxlen=self.config.event_retention
        )
        self.stopped_jobs: List[str] = []
        self._pressure = False
        self._timer: Optional[Timer] = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self._engine.every(
                self.config.interval, self.run_once, name="capacity-manager"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # One evaluation round
    # ------------------------------------------------------------------
    def cluster_utilization(self) -> float:
        """Dominant-share reserved/capacity across live hosts."""
        capacity = self._cluster.total_capacity()
        reserved = self._cluster.total_reserved()
        return reserved.utilization_of(capacity)

    def run_once(self) -> None:
        try:
            self._service.store.ping()
        except DegradedModeError:
            # Job Store outage: stopping/resuming jobs needs store writes;
            # pressure decisions wait for the next round (degraded mode).
            return
        utilization = self.cluster_utilization()
        if utilization >= self.config.instability_threshold:
            self._enter_pressure(utilization)
            self._shed_low_priority(utilization)
        elif utilization >= self.config.pressure_threshold:
            self._enter_pressure(utilization)
        else:
            self._exit_pressure(utilization)
            self._maybe_resume_stopped()

    # ------------------------------------------------------------------
    # Pressure signalling to the Auto Scaler
    # ------------------------------------------------------------------
    def _enter_pressure(self, utilization: float) -> None:
        if self._pressure:
            return
        self._pressure = True
        self._scaler.priority_floor = self.config.pressure_floor
        self.events.append(
            CapacityEvent(
                self._engine.now, "pressure_on",
                f"utilization {utilization:.2f}; privileged jobs only",
            )
        )

    def _exit_pressure(self, utilization: float) -> None:
        if not self._pressure:
            return
        self._pressure = False
        self._scaler.priority_floor = Priority.LOW
        self.events.append(
            CapacityEvent(
                self._engine.now, "pressure_off",
                f"utilization {utilization:.2f}",
            )
        )

    # ------------------------------------------------------------------
    # Last resort: stopping low-priority jobs
    # ------------------------------------------------------------------
    def _shed_low_priority(self, utilization: float) -> None:
        """Stop the lowest-priority jobs until the cluster is stable.

        "Turbine throttles resource consumption by stopping tasks only as a
        last resort, and does so by prioritizing the availability of tasks
        belonging to high business value applications." (section VIII).
        """
        candidates = sorted(
            self._service.active_job_ids(),
            key=lambda job_id: (
                int(
                    self._service.expected_config(job_id).get(
                        KEY_PRIORITY, Priority.NORMAL
                    )
                ),
                job_id,
            ),
        )
        for job_id in candidates:
            if self.cluster_utilization() < self.config.instability_threshold:
                return
            priority = Priority(
                int(
                    self._service.expected_config(job_id).get(
                        KEY_PRIORITY, Priority.NORMAL
                    )
                )
            )
            if priority >= Priority.HIGH:
                break  # never stop privileged jobs
            self._service.store.set_state(job_id, JobState.STOPPED)
            self._actuator.stop_tasks(job_id)
            self.stopped_jobs.append(job_id)
            self.events.append(
                CapacityEvent(
                    self._engine.now, "job_stopped",
                    f"{job_id} (priority {priority.name})",
                )
            )

    def _maybe_resume_stopped(self) -> None:
        """Bring back jobs we stopped, once there is room again."""
        while self.stopped_jobs:
            if self.cluster_utilization() >= self.config.pressure_threshold:
                return
            job_id = self.stopped_jobs.pop(0)
            if not self._service.store.exists(job_id):
                continue
            self._service.store.set_state(job_id, JobState.RUNNING)
            # Re-publishing the config makes the State Syncer re-create
            # the job's tasks on its next round.
            self._bump_for_resync(job_id)
            self.events.append(
                CapacityEvent(self._engine.now, "job_resumed", job_id)
            )

    def _bump_for_resync(self, job_id: str) -> None:
        """Invalidate the running config so the syncer restarts the job."""
        self._service.store.commit_running(job_id, {})

    # ------------------------------------------------------------------
    # Host transfer (storm drills)
    # ------------------------------------------------------------------
    def lend_hosts(self, count: int) -> List[str]:
        """Remove ``count`` live hosts from this cluster and return their
        ids — "authorized to temporarily transfer resources between
        different clusters"."""
        lent = []
        for host in list(self._cluster.live_hosts()):
            if len(lent) >= count:
                break
            self._cluster.remove_host(host.host_id)
            lent.append(host.host_id)
        return lent

    @property
    def under_pressure(self) -> bool:
        return self._pressure
