"""The proactive/preactive Auto Scaler — the paper's second generation.

Architecture per Fig. 4: Symptom Detector → Resource Estimator → Pattern
Analyzer → Plan Generator → Job Service. Each evaluation round builds a
:class:`JobSnapshot` per job, runs the pure decision pipeline, and applies
the resulting plan to the job's SCALER-level configuration through the Job
Service — never touching tasks directly, which is what keeps the three
management layers decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.container import DEFAULT_CONTAINER_CAPACITY
from repro.cluster.resources import ResourceVector
from repro.jobs.configs import ConfigLevel
from repro.jobs.service import JobService
from repro.metrics.store import MetricStore
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    SLOT_SYMPTOM,
    SLOT_WRITE_ORIGIN,
    Tracer,
)
from repro.scaler.detectors import SymptomDetector
from repro.scaler.estimators import ResourceEstimator
from repro.scaler.patterns import PatternAnalyzer
from repro.scaler.plan_generator import Action, PlanGenerator, ScalingDecision
from repro.scaler.snapshot import JobSnapshot, bootstrap_rate_hint, snapshot_job
from repro.resilience import CircuitBreaker, Dependency
from repro.scribe.bus import ScribeBus
from repro.sim.engine import Engine, Timer
from repro.types import JobId, Priority, Seconds


@dataclass
class AutoScalerConfig:
    """Tunables of the proactive scaler."""

    #: Evaluation period.
    interval: Seconds = 120.0
    #: Quiet time before downscales are considered (the paper uses a day;
    #: benchmarks shrink it to keep runs short).
    downscale_after: Seconds = 86400.0
    #: Container shape from which the vertical-scaling limit is derived.
    container_capacity: ResourceVector = field(
        default_factory=lambda: DEFAULT_CONTAINER_CAPACITY
    )
    #: Multiplicative error applied to the staging-period P hint, to model
    #: imperfect bootstrap profiling (1.0 = perfect).
    bootstrap_error: float = 1.0
    #: Ablation switch for the preactive historical-workload pruning.
    pattern_history: bool = True
    #: "the next x hours" a downscale is validated against in history
    #: (section V-C); must cover the gap from trough to peak to be useful.
    pattern_validate_hours: float = 4.0
    #: Ablation switch for vertical-first scaling (section V-E).
    vertical_scaling: bool = True


@dataclass
class AppliedAction:
    """Audit record of one applied scaling decision."""

    time: Seconds
    job_id: JobId
    action: Action
    reason: str
    task_count: Optional[int] = None
    threads: Optional[int] = None
    #: Trace id of the causal chain that produced this action (if traced).
    trace_id: Optional[str] = None


class AutoScaler:
    """The proactive + preactive Auto Scaler (paper sections V-B/V-C)."""

    def __init__(
        self,
        engine: Engine,
        job_service: JobService,
        metrics: MetricStore,
        scribe: ScribeBus,
        config: Optional[AutoScalerConfig] = None,
        tracer: Optional[Tracer] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._engine = engine
        self._service = job_service
        self._metrics = metrics
        self._scribe = scribe
        self.config = config or AutoScalerConfig()
        self._tracer = tracer or NULL_TRACER
        self.detector = SymptomDetector(tracer=self._tracer)
        self.estimator = ResourceEstimator()
        self.analyzer = PatternAnalyzer(
            metrics,
            validate_hours=self.config.pattern_validate_hours,
            history_enabled=self.config.pattern_history,
        )
        self.generator = PlanGenerator(
            self.analyzer,
            self.config.container_capacity,
            downscale_after=self.config.downscale_after,
            allow_vertical=self.config.vertical_scaling,
        )
        #: Capacity pressure floor: upscales below this priority are
        #: suppressed (set by the Capacity Manager, section V-F).
        self.priority_floor: Priority = Priority.LOW
        self.actions: List[AppliedAction] = []
        #: Untriaged problems reported for operator attention.
        self.untriaged: List[AppliedAction] = []
        self._timer: Optional[Timer] = None
        #: Per-job time of the last symptom, for the quiet-window check.
        self._last_unhealthy: Dict[JobId, Seconds] = {}
        #: Resilience edge toward the Job Service / Job Store: rounds are
        #: skipped while the store is out, and the breaker (reset at the
        #: evaluation interval, so every round probes) tracks the outage.
        self._store_dep = Dependency(
            "scaler.job-service",
            clock=lambda: engine.now,
            telemetry=telemetry,
            breaker=CircuitBreaker(
                failure_threshold=2, reset_timeout=self.config.interval
            ),
        )

    # ------------------------------------------------------------------
    # Periodic operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer is None:
            self._timer = self._engine.every(
                self.config.interval, self.run_once, name="auto-scaler"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # One evaluation round
    # ------------------------------------------------------------------
    def run_once(self) -> List[ScalingDecision]:
        """Evaluate every active job; returns the non-trivial decisions."""
        now = self._engine.now
        decisions = []
        job_ids = self._store_dep.probe(self._service.active_job_ids)
        if job_ids is None:
            # Job Store outage: no configs to read or patch. Skip the
            # round; running tasks are unaffected (degraded mode).
            return decisions
        for job_id in job_ids:
            decision = self._evaluate_job(job_id, now)
            if decision is not None and decision.action != Action.NONE:
                decisions.append(decision)
        return decisions

    def _evaluate_job(
        self, job_id: JobId, now: Seconds
    ) -> Optional[ScalingDecision]:
        config = self._service.expected_config(job_id)
        category_name = config.get("input", {}).get("category", "")
        partitions = 0
        if category_name and category_name in self._scribe.categories:
            partitions = self._scribe.get_category(category_name).num_partitions
        snapshot = snapshot_job(
            job_id, config, self._metrics, now, input_partitions=partitions
        )
        if snapshot.running_tasks == 0 and snapshot.input_rate_mb == 0:
            return None  # nothing scheduled yet; no data to act on

        symptoms = self.detector.detect(snapshot)
        if not symptoms.healthy:
            self._last_unhealthy[job_id] = now
        bootstrap = bootstrap_rate_hint(config) * self.config.bootstrap_error
        self.analyzer.rate_per_thread(job_id, bootstrap)  # ensure state
        if symptoms.lagging:
            # A lagging job runs saturated: its throughput refines P.
            self.analyzer.observe_saturated_throughput(snapshot)
        rate = self.analyzer.rate_per_thread(job_id, bootstrap)
        estimate = self.estimator.estimate(snapshot, rate)
        decision = self.generator.decide(
            snapshot,
            symptoms,
            estimate,
            quiet_long_enough=self._quiet_long_enough(snapshot),
            priority_floor=self.priority_floor,
            # Claim (consume) the symptom event so it parents exactly the
            # decision it triggered and never a later unrelated one.
            trace=self._tracer.claim_context(job_id, SLOT_SYMPTOM),
        )
        self._apply(snapshot, decision)
        return decision

    def _quiet_long_enough(self, snapshot: JobSnapshot) -> bool:
        """True when no symptom fired within the configured quiet window
        and we have actually observed the job for that long."""
        now = snapshot.time
        window = self.config.downscale_after
        last_bad = self._last_unhealthy.get(snapshot.job_id)
        if last_bad is not None and now - last_bad < window:
            return False
        lag_series = self._metrics.series(snapshot.job_id, "time_lagged")
        points = lag_series.window(now - window, now)
        if not points:
            return False
        if now - points[0][0] < window * 0.9:
            return False
        return max(value for __, value in points) <= (
            0.1 * snapshot.slo_lag_seconds
        )

    # ------------------------------------------------------------------
    # Applying decisions
    # ------------------------------------------------------------------
    def _apply(self, snapshot: JobSnapshot, decision: ScalingDecision) -> None:
        record = AppliedAction(
            time=snapshot.time,
            job_id=snapshot.job_id,
            action=decision.action,
            reason=decision.reason,
            task_count=decision.task_count,
            threads=decision.threads,
        )
        if decision.action == Action.NONE:
            return
        event = self._tracer.record(
            "auto-scaler", f"action-{decision.action.value}",
            job_id=snapshot.job_id, parent=decision.trace,
            reason=decision.reason,
            task_count=decision.task_count,
            threads=decision.threads,
        )
        if event is not None:
            record.trace_id = event.trace_id
        if decision.action == Action.UNTRIAGED:
            # "When Turbine cannot determine the cause of an untriaged
            # problem, it fires operator alerts."
            self.untriaged.append(record)
            return
        if decision.action == Action.REBALANCE:
            self._rebalance_input(snapshot.job_id)
            self.actions.append(record)
            return
        patch: Dict = {}
        if decision.task_count is not None:
            patch["task_count"] = decision.task_count
        if decision.threads is not None:
            patch["threads_per_task"] = decision.threads
        resources = dict(
            self._service.expected_config(snapshot.job_id).get("resources", {})
        )
        if decision.memory_per_task_gb is not None:
            resources["memory_gb"] = round(decision.memory_per_task_gb, 3)
        if decision.cpu_per_task is not None:
            resources["cpu"] = round(decision.cpu_per_task, 3)
        if resources:
            patch["resources"] = resources
        # The scaler's action is the cause of the Job Store write it is
        # about to make; the Job Service links the write underneath it.
        self._tracer.set_context(snapshot.job_id, SLOT_WRITE_ORIGIN, event)
        self._service.patch(snapshot.job_id, ConfigLevel.SCALER, patch)
        self.actions.append(record)

    def _rebalance_input(self, job_id: JobId) -> None:
        """Even out the input traffic split across partitions.

        Models Scribe-level traffic rebalancing: partition assignment of
        messages is arbitrary, so the bus can redistribute producers across
        partitions, which "rebalance[s] input traffic amongst tasks".
        """
        config = self._service.expected_config(job_id)
        category_name = config.get("input", {}).get("category")
        if category_name:
            self._scribe.get_category(category_name).set_weights(None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def actions_for(self, job_id: JobId) -> List[AppliedAction]:
        return [action for action in self.actions if action.job_id == job_id]
