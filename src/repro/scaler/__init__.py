"""Resource Management layer — *how to run*.

Implements the paper's section V: the Auto Scaler in its three generations
(reactive symptom-driven, proactive estimate-driven, preactive
pattern-pruned), the multi-dimensional resource estimators (equations 2 and
3), the plan generator with its safety rules, the pattern analyzer's
max-throughput adjustment and 14-day historical workload pruning, untriaged
problem reporting, and the Capacity Manager.
"""

from repro.scaler.capacity import CapacityManager
from repro.scaler.detectors import JobSymptoms, SymptomDetector
from repro.scaler.estimators import ResourceEstimate, ResourceEstimator
from repro.scaler.patterns import PatternAnalyzer
from repro.scaler.plan_generator import PlanGenerator, ScalingDecision
from repro.scaler.proactive import AutoScaler, AutoScalerConfig
from repro.scaler.reactive import ReactiveAutoScaler, ReactiveConfig
from repro.scaler.snapshot import JobSnapshot

__all__ = [
    "AutoScaler",
    "AutoScalerConfig",
    "ReactiveAutoScaler",
    "ReactiveConfig",
    "SymptomDetector",
    "JobSymptoms",
    "ResourceEstimator",
    "ResourceEstimate",
    "PatternAnalyzer",
    "PlanGenerator",
    "ScalingDecision",
    "CapacityManager",
    "JobSnapshot",
]
