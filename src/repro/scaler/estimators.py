"""Resource estimators — equations (2) and (3) plus the stateful models.

"The purpose of a Resource Estimator is to estimate the usage of a given
resource (e.g., CPU, memory, network bandwidth, and disk I/O) in a given
job." (paper section V-B).

For stateless jobs, CPU is the constraint and the estimate is

    tasks_needed = (X + B/t) / (P · k)          (equations 2 and 3)

where X is the input rate, B the backlog to recover within time t, P the
estimated max stable per-thread rate, and k the threads per task.

For stateful jobs, memory ∝ key cardinality (aggregations) and disk ∝ the
state size; both shrink per-task as parallelism grows, which is what makes
the plan generator's "correlated adjustment" possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ScalerError
from repro.scaler.snapshot import JobSnapshot
from repro.tasks.runtime import (
    BASE_MEMORY_GB,
    BUFFER_SECONDS,
    DISK_GB_PER_MILLION_KEYS,
    STATE_GB_PER_MILLION_KEYS,
)

#: Safety margin applied on top of the raw CPU estimate so a job is not
#: sized exactly at its observed peak.
DEFAULT_CPU_MARGIN = 0.2

#: Safety margin on per-task memory reservations.
DEFAULT_MEMORY_MARGIN = 0.3


@dataclass(frozen=True)
class ResourceEstimate:
    """The estimator output for one job.

    ``min_task_count`` is the floor below which the job cannot keep up with
    its steady-state input — the number the plan generator refuses to
    downscale past ("It prevents downscaling decisions from causing a
    healthy job to become unhealthy").
    """

    #: Tasks needed for steady-state input (with margin), at current k.
    steady_task_count: int
    #: Tasks needed to also drain the backlog within the recovery budget.
    recovery_task_count: int
    #: Hard floor: steady state without margin.
    min_task_count: int
    #: Per-task reservations at ``recovery_task_count`` parallelism.
    memory_per_task_gb: float
    disk_per_task_gb: float
    cpu_per_task: float
    network_per_task_mbps: float = 0.0


class ResourceEstimator:
    """Computes :class:`ResourceEstimate` from a snapshot and estimated P."""

    def __init__(
        self,
        cpu_margin: float = DEFAULT_CPU_MARGIN,
        memory_margin: float = DEFAULT_MEMORY_MARGIN,
    ) -> None:
        if cpu_margin < 0 or memory_margin < 0:
            raise ScalerError("estimator margins must be non-negative")
        self._cpu_margin = cpu_margin
        self._memory_margin = memory_margin

    def estimate(
        self, snapshot: JobSnapshot, rate_per_thread: float
    ) -> ResourceEstimate:
        """Estimate the job's needs given estimated per-thread rate ``P``.

        Raises :class:`ScalerError` for a non-positive ``P`` — an estimate
        of zero throughput would produce an infinite task count.
        """
        if rate_per_thread <= 0:
            raise ScalerError(
                f"rate_per_thread must be positive: {rate_per_thread}"
            )
        per_task_rate = rate_per_thread * max(1, snapshot.threads)

        x = max(0.0, snapshot.input_rate_mb)
        steady_raw = x / per_task_rate
        steady = max(1, math.ceil(steady_raw * (1.0 + self._cpu_margin)))
        min_count = max(1, math.ceil(steady_raw))

        # Equation (3): include the backlog drained over the recovery budget.
        recovery_rate = x + snapshot.backlog_mb / snapshot.slo_recovery_seconds
        recovery = max(
            steady, math.ceil(recovery_rate / per_task_rate)
        )

        task_count_for_memory = max(1, recovery)
        memory = self._memory_per_task(snapshot, per_task_rate, task_count_for_memory)
        disk = self._disk_per_task(snapshot, task_count_for_memory)
        # One busy thread ≈ one core; reserve for all threads plus margin.
        cpu = max(1, snapshot.threads) * (1.0 + self._cpu_margin)

        # Network: read + write the per-task throughput (MB/s → Mbit/s).
        per_task_throughput = (
            x / task_count_for_memory if task_count_for_memory else 0.0
        )
        network = per_task_throughput * 8.0 * 2.0 * (1.0 + self._cpu_margin)

        return ResourceEstimate(
            steady_task_count=steady,
            recovery_task_count=recovery,
            min_task_count=min_count,
            memory_per_task_gb=memory,
            disk_per_task_gb=disk,
            cpu_per_task=cpu,
            network_per_task_mbps=network,
        )

    def _memory_per_task(
        self, snapshot: JobSnapshot, per_task_rate: float, task_count: int
    ) -> float:
        """Base footprint + input buffer + (stateful) key-cardinality term.

        "For an aggregation job, the memory size is proportional to the key
        cardinality of the input data kept in memory." (section V-B).
        """
        needed = BASE_MEMORY_GB + per_task_rate * BUFFER_SECONDS / 1000.0
        if snapshot.stateful and task_count > 0:
            keys_per_task = snapshot.state_key_cardinality / task_count
            needed += (keys_per_task / 1e6) * STATE_GB_PER_MILLION_KEYS
        return needed * (1.0 + self._memory_margin)

    def _disk_per_task(self, snapshot: JobSnapshot, task_count: int) -> float:
        if not snapshot.stateful or task_count <= 0:
            return 0.0
        keys_per_task = snapshot.state_key_cardinality / task_count
        return (keys_per_task / 1e6) * DISK_GB_PER_MILLION_KEYS
