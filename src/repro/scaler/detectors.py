"""Symptom detectors.

The first-generation scaler "consisted of a collection of Symptom Detectors
and Diagnosis Resolvers ... It monitored pre-configured symptoms of
misbehavior such as lag or backlog, imbalanced input, and tasks running out
of memory (OOM)." (paper section V-A). The detectors survive unchanged into
the proactive generation — what changed is what happens *after* detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.trace import NULL_TRACER, SLOT_SYMPTOM, Tracer
from repro.scaler.snapshot import JobSnapshot

#: Relative spread of per-task processing rates above which the input is
#: considered imbalanced (stdev / mean).
IMBALANCE_THRESHOLD = 0.5


@dataclass(frozen=True)
class JobSymptoms:
    """The detector verdict for one job."""

    lagging: bool
    imbalanced: bool
    oom: bool

    @property
    def healthy(self) -> bool:
        return not (self.lagging or self.imbalanced or self.oom)


class SymptomDetector:
    """Turns a job snapshot into symptoms."""

    def __init__(
        self,
        imbalance_threshold: float = IMBALANCE_THRESHOLD,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if imbalance_threshold <= 0:
            raise ValueError("imbalance threshold must be positive")
        self._imbalance_threshold = imbalance_threshold
        self._tracer = tracer or NULL_TRACER

    def detect(self, snapshot: JobSnapshot) -> JobSymptoms:
        """Evaluate lag (equation 1 vs SLO), imbalance, and OOM.

        An unhealthy verdict roots a new causal trace: the symptom event
        is published for the scaler so whatever action it takes links back
        here (the start of the "why" chain for the resulting change).
        """
        symptoms = JobSymptoms(
            lagging=snapshot.lagging,
            imbalanced=self._is_imbalanced(snapshot),
            oom=snapshot.oom_recently,
        )
        if self._tracer.enabled and not symptoms.healthy:
            event = self._tracer.record(
                "detector", "symptom", job_id=snapshot.job_id,
                lagging=symptoms.lagging,
                imbalanced=symptoms.imbalanced,
                oom=symptoms.oom,
                time_lagged=round(snapshot.time_lagged, 3),
                slo=snapshot.slo_lag_seconds,
            )
            self._tracer.set_context(snapshot.job_id, SLOT_SYMPTOM, event)
        return symptoms

    def _is_imbalanced(self, snapshot: JobSnapshot) -> bool:
        """"Imbalanced input is measured by the standard deviation of
        processing rate across all the tasks belonging to the same job."

        A single-task job cannot be imbalanced, and an idle job's spread is
        noise, so both are excluded.
        """
        if snapshot.running_tasks <= 1:
            return False
        mean_rate = snapshot.per_task_rate
        if mean_rate <= 1e-9:
            return False
        return snapshot.task_rate_stdev / mean_rate > self._imbalance_threshold
