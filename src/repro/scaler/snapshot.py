"""Per-job metric snapshots — the scaler's view of one job.

Gathering every number the detectors, estimators, and pattern analyzer need
into a single immutable snapshot keeps the decision pipeline pure: each
stage is a function of the snapshot, which makes the scaler deterministic
and unit-testable without a live cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.jobs.model import (
    KEY_PERF,
    KEY_PRIORITY,
    KEY_RESOURCES,
    KEY_SLO,
    KEY_STATE_KEY_CARDINALITY,
    KEY_STATEFUL,
    KEY_TASK_COUNT,
    KEY_TASK_COUNT_LIMIT,
    KEY_THREADS,
)
from repro.metrics.store import MetricStore
from repro.types import JobId, Priority, Seconds

#: Trailing window over which the input rate is averaged (the paper reads
#: "the average input rate in the last 30 minutes" for outlier checks and
#: ~10-minute usage averages for load).
RATE_WINDOW: Seconds = 600.0


@dataclass(frozen=True)
class JobSnapshot:
    """Everything the scaler pipeline knows about one job at one instant."""

    job_id: JobId
    time: Seconds
    #: Control-plane view (merged expected config).
    task_count: int
    threads: int
    task_count_limit: int
    memory_per_task_gb: float
    cpu_per_task: float
    stateful: bool
    state_key_cardinality: int
    priority: Priority
    slo_lag_seconds: float
    slo_recovery_seconds: float
    #: Data-plane view (from the metric store).
    input_rate_mb: float
    processing_rate_mb: float
    backlog_mb: float
    time_lagged: float
    task_rate_stdev: float
    oom_recently: bool
    running_tasks: int
    #: Partitions of the input category; parallelism beyond this adds
    #: idle tasks (each partition has exactly one reader). 0 = unknown.
    input_partitions: int = 0

    @property
    def lagging(self) -> bool:
        """Equation-1 lag above the job's SLO threshold."""
        return self.time_lagged > self.slo_lag_seconds

    @property
    def per_task_rate(self) -> float:
        """Observed average processing rate per running task (MB/s)."""
        if self.running_tasks <= 0:
            return 0.0
        return self.processing_rate_mb / self.running_tasks


def snapshot_job(
    job_id: JobId,
    config: Dict[str, Any],
    metrics: MetricStore,
    now: Seconds,
    oom_window: Seconds = 600.0,
    input_partitions: int = 0,
) -> JobSnapshot:
    """Build a snapshot from a merged job config and the metric store."""
    slo = config.get(KEY_SLO, {})
    resources = config.get(KEY_RESOURCES, {})

    def latest(metric: str, default: float = 0.0) -> float:
        value = metrics.latest(job_id, metric)
        return default if value is None else value

    input_series = metrics.series(job_id, "input_rate_mb")
    input_rate = input_series.average_over(RATE_WINDOW, now)
    if input_rate is None:
        input_rate = latest("input_rate_mb")

    oom_series = metrics.series(job_id, "oom_events")
    oom_recently = bool(oom_series.values_in(now - oom_window, now))

    return JobSnapshot(
        job_id=job_id,
        time=now,
        task_count=int(config.get(KEY_TASK_COUNT, 1)),
        threads=int(config.get(KEY_THREADS, 1)),
        task_count_limit=int(config.get(KEY_TASK_COUNT_LIMIT, 32)),
        memory_per_task_gb=float(resources.get("memory_gb", 0.0)),
        cpu_per_task=float(resources.get("cpu", 0.0)),
        stateful=bool(config.get(KEY_STATEFUL, False)),
        state_key_cardinality=int(config.get(KEY_STATE_KEY_CARDINALITY, 0)),
        priority=Priority(int(config.get(KEY_PRIORITY, Priority.NORMAL))),
        slo_lag_seconds=float(slo.get("max_lag_seconds", 90.0)),
        slo_recovery_seconds=float(slo.get("recovery_seconds", 3600.0)),
        input_rate_mb=float(input_rate),
        processing_rate_mb=latest("processing_rate_mb"),
        backlog_mb=latest("bytes_lagged_mb"),
        time_lagged=latest("time_lagged"),
        task_rate_stdev=latest("task_rate_stdev"),
        oom_recently=oom_recently,
        running_tasks=int(latest("running_tasks")),
        input_partitions=input_partitions,
    )


def bootstrap_rate_hint(config: Dict[str, Any]) -> float:
    """The staging-period performance hint for ``P`` (MB/s per thread).

    "Initially, P can be bootstrapped during the staging period (a
    pre-production phase for application correctness verification and
    performance profiling)" — the provisioner config carries the profiled
    value.
    """
    return float(config.get(KEY_PERF, {}).get("rate_per_thread_mb", 2.0))
