"""Automatic root-cause analysis for untriaged problems.

Section V-D gives the taxonomy: "These problems can be caused by many
reasons including temporary hardware issues, bad user updates of the job
logic, dependency failures, and system bugs. Hardware issues typically
impact a single task of a misbehaving job; moving the task to another host
usually resolves this class of problems. If a lag is caused by a recent
user update, allocating more resources helps most of the time ...
Conversely, allocating more resources does not help in the case of
dependency failures or system bugs."

Section IX lists "machine learning techniques for automatic root cause
analysis" as future work; this module implements the rule-based version
the taxonomy directly supports (and the paper's section III mentions an
"auto root-causer" as a service added through the hierarchical config
design). Diagnoses map to the paper's mitigations:

* ``SINGLE_TASK_HARDWARE`` → move the task's shard to another container;
* ``BAD_USER_UPDATE``      → temporary resource boost (scaler will size it);
* ``DEPENDENCY_FAILURE``   → alert only — never scale (it would "generate
  even more traffic for the dependent service");
* ``UNKNOWN``              → operator alert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.jobs.configs import ConfigLevel
from repro.jobs.service import JobService
from repro.metrics.store import MetricStore
from repro.tasks.shard import shard_id_for_task
from repro.tasks.shard_manager import ShardManager
from repro.types import JobId, Seconds, TaskId, TaskState


class Cause(enum.Enum):
    SINGLE_TASK_HARDWARE = "single_task_hardware"
    BAD_USER_UPDATE = "bad_user_update"
    DEPENDENCY_FAILURE = "dependency_failure"
    UNKNOWN = "unknown"


@dataclass
class Diagnosis:
    """The analyzer's verdict for one untriaged job."""

    job_id: JobId
    cause: Cause
    evidence: str
    #: The task implicated by a single-task diagnosis.
    suspect_task: Optional[TaskId] = None
    mitigated: bool = False
    mitigation: str = ""


#: Fraction of a job's tasks that must be healthy for a single straggler
#: to be blamed on hardware.
SINGLE_TASK_HEALTHY_FRACTION = 0.75

#: How recently a package change counts as "a recent user update".
RECENT_UPDATE_WINDOW: Seconds = 1800.0

#: Fraction of the cluster's jobs lagging simultaneously that indicates a
#: shared dependency failure rather than per-job problems.
DEPENDENCY_FRACTION = 0.5


class RootCauseAnalyzer:
    """Classifies untriaged problems and applies the safe mitigations."""

    def __init__(
        self,
        job_service: JobService,
        shard_manager: ShardManager,
        metrics: MetricStore,
    ) -> None:
        self._service = job_service
        self._shard_manager = shard_manager
        self._metrics = metrics
        self.diagnoses: List[Diagnosis] = []
        #: job_id -> (package_version, time) of the last observed change.
        self._package_seen: Dict[JobId, tuple] = {}

    # ------------------------------------------------------------------
    # Change tracking (fed by the caller's periodic loop)
    # ------------------------------------------------------------------
    def observe_configs(self, now: Seconds) -> None:
        """Record package versions so later lag can be correlated with
        recent updates."""
        for job_id in self._service.active_job_ids():
            config = self._service.expected_config(job_id)
            version = config.get("package", {}).get("version", "")
            previous = self._package_seen.get(job_id)
            if previous is None:
                # First sight is provisioning, not a user update.
                self._package_seen[job_id] = (version, now, True)
            elif previous[0] != version:
                self._package_seen[job_id] = (version, now, False)

    def _recently_updated(self, job_id: JobId, now: Seconds) -> bool:
        seen = self._package_seen.get(job_id)
        if seen is None:
            return False
        version, when, is_initial = seen
        if is_initial:
            return False
        return now - when < RECENT_UPDATE_WINDOW

    # ------------------------------------------------------------------
    # Diagnosis
    # ------------------------------------------------------------------
    def diagnose(self, job_id: JobId, now: Seconds) -> Diagnosis:
        """Classify one untriaged job and record the diagnosis."""
        tasks = self._tasks_of(job_id)
        straggler = self._find_single_straggler(tasks)
        if straggler is not None:
            diagnosis = Diagnosis(
                job_id, Cause.SINGLE_TASK_HARDWARE,
                evidence=(
                    f"{len(tasks) - 1}/{len(tasks)} tasks healthy; "
                    f"{straggler} stalled"
                ),
                suspect_task=straggler,
            )
        elif self._cluster_wide_lag(now):
            diagnosis = Diagnosis(
                job_id, Cause.DEPENDENCY_FAILURE,
                evidence="majority of jobs lag simultaneously",
            )
        elif self._recently_updated(job_id, now):
            version = self._package_seen[job_id][0]
            diagnosis = Diagnosis(
                job_id, Cause.BAD_USER_UPDATE,
                evidence=f"package changed to {version!r} shortly before lag",
            )
        else:
            diagnosis = Diagnosis(
                job_id, Cause.UNKNOWN,
                evidence="no hardware, update, or dependency signature",
            )
        self.diagnoses.append(diagnosis)
        return diagnosis

    def _tasks_of(self, job_id: JobId):
        return [
            task
            for manager in self._shard_manager.live_managers()
            for task in manager.tasks.values()
            if task.spec.job_id == job_id
        ]

    def _find_single_straggler(self, tasks) -> Optional[TaskId]:
        """One stalled/crashed task while the rest process normally."""
        if len(tasks) < 3:
            return None
        healthy = [
            t for t in tasks
            if t.state == TaskState.RUNNING and t.last_rate_mb > 0
        ]
        stalled = [t for t in tasks if t not in healthy]
        if len(stalled) == 1 and len(healthy) >= len(tasks) * (
            SINGLE_TASK_HEALTHY_FRACTION
        ):
            return stalled[0].spec.task_id
        return None

    def _cluster_wide_lag(self, now: Seconds) -> bool:
        job_ids = self._service.active_job_ids()
        if len(job_ids) < 2:
            return False
        lagging = 0
        for job_id in job_ids:
            lag = self._metrics.latest(job_id, "time_lagged") or 0.0
            slo = self._service.expected_config(job_id).get("slo", {}).get(
                "max_lag_seconds", 90.0
            )
            if lag > slo:
                lagging += 1
        return lagging / len(job_ids) >= DEPENDENCY_FRACTION

    # ------------------------------------------------------------------
    # Mitigation
    # ------------------------------------------------------------------
    def mitigate(self, diagnosis: Diagnosis) -> bool:
        """Apply the paper's mitigation for a diagnosis; returns success.

        Dependency failures and unknowns are deliberately *not* mitigated
        — they need the human (or the future-work ML) in the loop.
        """
        if diagnosis.cause == Cause.SINGLE_TASK_HARDWARE:
            moved = self._move_task_shard(diagnosis.suspect_task)
            diagnosis.mitigated = moved
            diagnosis.mitigation = (
                f"moved shard of {diagnosis.suspect_task}" if moved
                else "no alternative container available"
            )
            return moved
        if diagnosis.cause == Cause.BAD_USER_UPDATE:
            self._service.patch(
                diagnosis.job_id, ConfigLevel.ONCALL,
                {"task_count_limit": 128},
            )
            diagnosis.mitigated = True
            diagnosis.mitigation = (
                "raised task-count limit; scaler will allocate more resources"
            )
            return True
        diagnosis.mitigation = "alert operator"
        return False

    def _move_task_shard(self, task_id: Optional[TaskId]) -> bool:
        if task_id is None:
            return False
        shard_id = shard_id_for_task(task_id, self._shard_manager.num_shards)
        source = self._shard_manager.assignment.get(shard_id)
        candidates = [
            manager.container_id
            for manager in self._shard_manager.live_managers()
            if manager.container_id != source
        ]
        if not candidates:
            return False
        destination = min(candidates)  # deterministic pick
        self._shard_manager._move_shard(shard_id, source, destination)
        return True
