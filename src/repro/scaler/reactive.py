"""The first-generation reactive Auto Scaler (Algorithm 2).

"The first generation of the auto scaler was similar to Dhalion. It
consisted of a collection of Symptom Detectors and Diagnosis Resolvers and
was purely reactive." (paper section V-A). It is kept as a baseline for the
ablation benchmarks: it has no resource estimates, so it converges slowly
(doubling on lag), can downscale healthy jobs into unhealthy ones, and
cannot tell untriaged problems from capacity problems — exactly the
failure modes the paper lists as motivation for the proactive redesign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.jobs.configs import ConfigLevel
from repro.jobs.service import JobService
from repro.metrics.store import MetricStore
from repro.obs.trace import (
    NULL_TRACER,
    SLOT_SYMPTOM,
    SLOT_WRITE_ORIGIN,
    Tracer,
)
from repro.resilience import CircuitBreaker, Dependency
from repro.scaler.detectors import SymptomDetector
from repro.scaler.snapshot import JobSnapshot, snapshot_job
from repro.scribe.bus import ScribeBus
from repro.sim.engine import Engine, Timer
from repro.types import Seconds


@dataclass
class ReactiveConfig:
    """Tunables of the reactive scaler."""

    #: Evaluation period.
    interval: Seconds = 120.0
    #: Multiplier applied to task count when lagging.
    upscale_factor: float = 2.0
    #: Memory growth factor on OOM.
    oom_memory_factor: float = 1.5
    #: Quiet time before attempting a downscale ("no OOM, no lag is
    #: detected in a day").
    downscale_after: Seconds = 86400.0
    #: Tasks removed per downscale round (slow, cautious decay).
    downscale_step: int = 1


@dataclass
class ReactiveAction:
    """Audit record of one reactive decision."""

    time: Seconds
    job_id: str
    kind: str
    detail: str = ""


class ReactiveAutoScaler:
    """Algorithm 2, verbatim: react to symptoms with fixed-step changes."""

    def __init__(
        self,
        engine: Engine,
        job_service: JobService,
        metrics: MetricStore,
        scribe: ScribeBus,
        config: Optional[ReactiveConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._engine = engine
        self._service = job_service
        self._metrics = metrics
        self._scribe = scribe
        self.config = config or ReactiveConfig()
        self._tracer = tracer or NULL_TRACER
        self._detector = SymptomDetector(tracer=self._tracer)
        self.actions: List[ReactiveAction] = []
        self._timer: Optional[Timer] = None
        #: Resilience edge toward the Job Service (see the proactive
        #: scaler for the breaker-period rationale).
        self._store_dep = Dependency(
            "reactive-scaler.job-service",
            clock=lambda: engine.now,
            breaker=CircuitBreaker(
                failure_threshold=2, reset_timeout=self.config.interval
            ),
        )

    def start(self) -> None:
        if self._timer is None:
            self._timer = self._engine.every(
                self.config.interval, self.run_once, name="reactive-scaler"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # One evaluation round — Algorithm 2
    # ------------------------------------------------------------------
    def run_once(self) -> None:
        now = self._engine.now
        job_ids = self._store_dep.probe(self._service.active_job_ids)
        if job_ids is None:
            return  # Job Store outage: skip the round (degraded mode).
        for job_id in job_ids:
            config = self._service.expected_config(job_id)
            snapshot = snapshot_job(job_id, config, self._metrics, now)
            self._evaluate(snapshot)

    def _evaluate(self, snapshot: JobSnapshot) -> None:
        symptoms = self._detector.detect(snapshot)
        # Consume the symptom event (if traced) so the resolver's action
        # links back to exactly the symptom that triggered it.
        trace = self._tracer.claim_context(snapshot.job_id, SLOT_SYMPTOM)
        if symptoms.lagging:                       # line 2
            if symptoms.imbalanced and snapshot.task_count > 1:   # line 3
                self._rebalance(snapshot, trace)   # line 4
            else:
                self._increase_tasks(snapshot, trace)  # line 6
        elif symptoms.oom:                          # line 8
            self._increase_memory(snapshot, trace)  # line 9
        elif self._quiet_long_enough(snapshot):     # line 10
            self._decrease_tasks(snapshot)         # line 11

    # ------------------------------------------------------------------
    # Resolvers
    # ------------------------------------------------------------------
    def _rebalance(self, snapshot: JobSnapshot, trace=None) -> None:
        config = self._service.expected_config(snapshot.job_id)
        category_name = config.get("input", {}).get("category")
        if category_name:
            self._scribe.get_category(category_name).set_weights(None)
        self._tracer.record(
            "reactive-scaler", "action-rebalance", job_id=snapshot.job_id,
            parent=trace,
        )
        self._record(snapshot, "rebalance", "evened input traffic")

    def _increase_tasks(self, snapshot: JobSnapshot, trace=None) -> None:
        new_count = min(
            max(
                snapshot.task_count + 1,
                int(snapshot.task_count * self.config.upscale_factor),
            ),
            snapshot.task_count_limit,
        )
        if new_count <= snapshot.task_count:
            return
        self._patch_traced(
            snapshot, "action-upscale", trace,
            {"task_count": new_count},
            task_count=new_count,
        )
        self._record(
            snapshot, "upscale",
            f"{snapshot.task_count} -> {new_count} tasks",
        )

    def _increase_memory(self, snapshot: JobSnapshot, trace=None) -> None:
        current = snapshot.memory_per_task_gb or 0.5
        target = round(current * self.config.oom_memory_factor, 3)
        config = self._service.expected_config(snapshot.job_id)
        resources = dict(config.get("resources", {}))
        resources["memory_gb"] = target
        self._patch_traced(
            snapshot, "action-memory", trace,
            {"resources": resources},
            memory_gb=target,
        )
        self._record(snapshot, "memory", f"{current:.2f} -> {target:.2f} GB")

    def _decrease_tasks(self, snapshot: JobSnapshot) -> None:
        new_count = snapshot.task_count - self.config.downscale_step
        if new_count < 1:
            return
        self._patch_traced(
            snapshot, "action-downscale", None,
            {"task_count": new_count},
            task_count=new_count,
        )
        self._record(
            snapshot, "downscale",
            f"{snapshot.task_count} -> {new_count} tasks",
        )

    def _patch_traced(
        self, snapshot: JobSnapshot, kind: str, trace, changes, **detail
    ) -> None:
        """Record the action event, mark it as the write's origin, patch."""
        event = self._tracer.record(
            "reactive-scaler", kind, job_id=snapshot.job_id, parent=trace,
            **detail,
        )
        self._tracer.set_context(snapshot.job_id, SLOT_WRITE_ORIGIN, event)
        self._service.patch(snapshot.job_id, ConfigLevel.SCALER, changes)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _quiet_long_enough(self, snapshot: JobSnapshot) -> bool:
        """No lag above 10 % of SLO and no OOM for the whole quiet window."""
        now = snapshot.time
        window = self.config.downscale_after
        lag_series = self._metrics.series(snapshot.job_id, "time_lagged")
        lags = lag_series.values_in(now - window, now)
        if not lags:
            return False
        earliest = lag_series.window(now - window, now)[0][0]
        if now - earliest < window * 0.9:
            return False  # not enough history to call it quiet
        if max(lags) > 0.1 * snapshot.slo_lag_seconds:
            return False
        oom_series = self._metrics.series(snapshot.job_id, "oom_events")
        return not oom_series.values_in(now - window, now)

    def _record(self, snapshot: JobSnapshot, kind: str, detail: str) -> None:
        self.actions.append(
            ReactiveAction(snapshot.time, snapshot.job_id, kind, detail)
        )
