"""The Pattern Analyzer — the *preactive* part of the Auto Scaler.

"Turbine introduces the Pattern Analyzer whose goal is to infer patterns
based on data seen and to apply this knowledge for pruning out potentially
destabilizing scaling decisions." (paper section V-C). Two data sets are
maintained:

1. **Resource adjustment data** — the running estimate of each job's max
   stable per-thread throughput ``P``, corrected in both directions:
   an attempted downscale that computes *more* tasks than currently run
   means ``P`` was too low (set it to the observed per-task throughput and
   skip the action); an SLO violation shortly after a downscale we
   performed means ``P`` was too high (pull it back toward the observed
   value).
2. **Historical workload patterns** — 14 days of per-minute input rates.
   A downscale is vetoed unless the reduced capacity could have sustained
   the traffic seen at the same time of day over the lookback horizon; and
   when the current traffic is itself an outlier versus history, the
   history is considered unusable and the analyzer stays conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.store import MetricStore
from repro.scaler.snapshot import JobSnapshot
from repro.types import JobId, Seconds

#: Lookback horizon for historical workload patterns.
HISTORY_DAYS = 14

#: "it verifies that this reduction will not cause another round of updates
#: in the next x hours" — the forward window validated against history.
DEFAULT_VALIDATE_HOURS = 4.0

#: Relative deviation of the last-30-minutes average from the same window
#: in prior days above which history is declared unusable. The paper notes
#: normal day-over-day variation is within ~1 % on aggregate; individual
#: jobs are noisier, so the default is looser.
OUTLIER_DEVIATION = 0.5

#: How long after a downscale an SLO violation is attributed to it.
PROBE_WINDOW: Seconds = 1800.0


@dataclass
class _JobPatternState:
    """Per-job mutable analyzer state."""

    rate_per_thread: float
    last_downscale_time: Optional[Seconds] = None
    last_downscale_from: int = 0
    adjustments: int = 0
    #: Consecutive saturated-lag observations below the estimate.
    low_throughput_streak: int = 0


@dataclass
class PatternVerdict:
    """The analyzer's answer to "may I downscale to n' tasks?"."""

    allowed: bool
    reason: str = ""


class PatternAnalyzer:
    """Maintains P estimates and prunes destabilizing scaling decisions."""

    def __init__(
        self,
        metrics: MetricStore,
        validate_hours: float = DEFAULT_VALIDATE_HOURS,
        history_days: int = HISTORY_DAYS,
        outlier_deviation: float = OUTLIER_DEVIATION,
        history_enabled: bool = True,
    ) -> None:
        self._metrics = metrics
        self._validate_hours = validate_hours
        self._history_days = history_days
        self._outlier_deviation = outlier_deviation
        #: Ablation switch: with history disabled, downscales are checked
        #: against the estimate only (the pre-preactive behaviour).
        self.history_enabled = history_enabled
        self._jobs: Dict[JobId, _JobPatternState] = {}

    # ------------------------------------------------------------------
    # P estimation
    # ------------------------------------------------------------------
    def rate_per_thread(self, job_id: JobId, bootstrap: float) -> float:
        """The current estimate of P, bootstrapped on first sight."""
        state = self._jobs.get(job_id)
        if state is None:
            state = _JobPatternState(rate_per_thread=bootstrap)
            self._jobs[job_id] = state
        return state.rate_per_thread

    def set_rate_per_thread(self, job_id: JobId, value: float) -> None:
        """Force the estimate (used by tests and by staging refreshes)."""
        if value <= 0:
            raise ValueError(f"P must be positive: {value}")
        self._jobs.setdefault(
            job_id, _JobPatternState(rate_per_thread=value)
        ).rate_per_thread = value

    def observe_underestimate(self, snapshot: JobSnapshot) -> None:
        """The planned downscale computed n' > n: P was too small.

        "Turbine adjusts P to the average task throughput and skips
        performing an action in this round."
        """
        state = self._jobs[snapshot.job_id]
        observed = snapshot.per_task_rate / max(1, snapshot.threads)
        if observed > state.rate_per_thread:
            state.rate_per_thread = observed
            state.adjustments += 1

    def observe_saturated_throughput(self, snapshot: JobSnapshot) -> bool:
        """Refresh P from a saturated job's observed throughput.

        A lagging job processes flat-out, so its per-thread throughput is
        a lower bound on the true P ("Initially, P can be bootstrapped
        during the staging period ... and adjusted at runtime",
        section V-B) — upward corrections are always safe.

        The downward direction needs more evidence: an over-estimated P
        makes a genuine capacity shortage look like an untriaged problem
        (the estimate says "enough resources" while the job drowns). When
        every expected task is running, the lag is well past the SLO, and
        the observed rate still sits far below the estimate, the estimate
        — not the job — is wrong, and P is pulled toward the observation.
        Returns True when P changed.
        """
        state = self._jobs.get(snapshot.job_id)
        if state is None or snapshot.running_tasks <= 0:
            return False
        fully_running = snapshot.running_tasks >= snapshot.task_count
        if not fully_running:
            # Mid-resize or degraded readings are noise in both directions
            # (a stale running-task count inflates the per-task rate).
            return False
        observed = snapshot.per_task_rate / max(1, snapshot.threads)
        if observed > state.rate_per_thread * 1.05:
            state.low_throughput_streak = 0
            state.rate_per_thread = observed
            state.adjustments += 1
            return True
        persistent_lag = snapshot.time_lagged > 2.0 * snapshot.slo_lag_seconds
        if persistent_lag and 0 < observed < state.rate_per_thread * 0.8:
            # One low reading can be a transient (restore, contention,
            # restart); require a streak before doubting the estimate.
            state.low_throughput_streak += 1
            if state.low_throughput_streak >= 3:
                state.low_throughput_streak = 0
                state.rate_per_thread = (
                    state.rate_per_thread + observed
                ) / 2.0
                state.adjustments += 1
                return True
            return False
        state.low_throughput_streak = 0
        return False

    def record_downscale(self, snapshot: JobSnapshot, new_count: int) -> None:
        """Remember that we downscaled, to attribute later SLO violations."""
        state = self._jobs[snapshot.job_id]
        state.last_downscale_time = snapshot.time
        state.last_downscale_from = snapshot.task_count

    def observe_slo_violation(self, snapshot: JobSnapshot) -> bool:
        """An SLO violation occurred; was it caused by our recent downscale?

        If so, P "needs to be adjusted to a value between X/n and P" — the
        midpoint is used — and the caller should scale back up. Returns
        True when the violation was attributed to a downscale.
        """
        state = self._jobs.get(snapshot.job_id)
        if state is None or state.last_downscale_time is None:
            return False
        if snapshot.time - state.last_downscale_time > PROBE_WINDOW:
            return False
        n = max(1, snapshot.task_count)
        floor = snapshot.input_rate_mb / (n * max(1, snapshot.threads))
        if floor < state.rate_per_thread:
            state.rate_per_thread = (floor + state.rate_per_thread) / 2.0
            state.adjustments += 1
        state.last_downscale_time = None
        return True

    # ------------------------------------------------------------------
    # Historical workload validation
    # ------------------------------------------------------------------
    def validate_downscale(
        self, snapshot: JobSnapshot, new_task_count: int
    ) -> PatternVerdict:
        """May the job drop to ``new_task_count`` tasks?

        Checks the same clock window over the last ``history_days`` days:
        the reduced capacity must have been able to sustain every input
        rate seen in the next ``validate_hours`` hours of those days.
        """
        state = self._jobs[snapshot.job_id]
        capacity = (
            new_task_count * max(1, snapshot.threads) * state.rate_per_thread
        )
        if not self.history_enabled:
            if snapshot.input_rate_mb > capacity:
                return PatternVerdict(
                    allowed=False, reason="insufficient capacity for current rate"
                )
            return PatternVerdict(allowed=True)
        series = self._metrics.series(snapshot.job_id, "input_rate_mb")

        if self._is_outlier(snapshot, series):
            return PatternVerdict(
                allowed=False,
                reason="current traffic deviates from history; "
                       "pattern-based decisions disabled",
            )

        now = snapshot.time
        window = self._validate_hours * 3600.0
        days_checked = 0
        for day in range(1, self._history_days + 1):
            start = now - day * 86400.0
            if start < 0:
                break
            # Rollup-backed historical read: max over the window comes
            # from the series' coarse buckets plus raw edges (identical
            # to a raw rescan — max is exact under regrouping).
            peak = series.max_between(start, start + window)
            if peak is None:
                continue
            days_checked += 1
            if peak > capacity:
                return PatternVerdict(
                    allowed=False,
                    reason=(
                        f"{day} day(s) ago traffic peaked at {peak:.2f} MB/s "
                        f"> reduced capacity {capacity:.2f} MB/s"
                    ),
                )
        if days_checked == 0:
            # No history at all (young job): fall back to the estimate
            # alone, but require capacity above the current rate.
            if snapshot.input_rate_mb > capacity:
                return PatternVerdict(
                    allowed=False, reason="no history and insufficient capacity"
                )
        return PatternVerdict(allowed=True)

    def _is_outlier(self, snapshot: JobSnapshot, series) -> bool:
        """"If the average input rate in the last 30 minutes is significantly
        different from the average of the same metric in the same time
        periods during the last 14 days, historical pattern-based decision
        making is disabled."
        """
        now = snapshot.time
        recent_sum, recent_count, _ = series.aggregate_between(now - 1800.0, now)
        if not recent_count:
            return False
        recent_avg = recent_sum / recent_count
        history_sum = 0.0
        history_count = 0
        for day in range(1, self._history_days + 1):
            start = now - day * 86400.0 - 1800.0
            if start < -1800.0:
                break
            # Per-window sums come pre-aggregated from the rollup tier
            # rather than materializing 14 days of raw samples.
            day_sum, day_count, _ = series.aggregate_between(start, start + 1800.0)
            history_sum += day_sum
            history_count += day_count
        if not history_count:
            return False
        history_avg = history_sum / history_count
        if history_avg <= 1e-9:
            return recent_avg > 1e-9
        deviation = abs(recent_avg - history_avg) / history_avg
        return deviation > self._outlier_deviation

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def adjustment_count(self, job_id: JobId) -> int:
        """How many times P was corrected for a job (observability)."""
        state = self._jobs.get(job_id)
        return 0 if state is None else state.adjustments
