"""The Plan Generator — synthesized scaling decisions.

"The Plan Generator makes a synthesized decision based on symptoms and
resource estimates collected." (paper section V-B). Its safety rules:

1. never downscale a healthy job below its estimated floor;
2. untriaged problems (symptoms without a resource explanation) never
   trigger scaling — they raise operator alerts instead (section V-D);
3. multi-resource adjustments are correlated (more tasks → less memory per
   task for stateful jobs);
4. vertical scaling is preferred until the per-task footprint reaches the
   1/5-of-container limit, then horizontal takes over (section V-E).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.resources import ResourceVector
from repro.obs.trace import TraceEvent
from repro.scaler.detectors import JobSymptoms
from repro.scaler.estimators import ResourceEstimate
from repro.scaler.patterns import PatternAnalyzer
from repro.scaler.snapshot import JobSnapshot
from repro.tasks.spec import VERTICAL_LIMIT_FRACTION
from repro.types import Priority

#: Factor by which reserved memory grows on OOM.
OOM_MEMORY_GROWTH = 1.5


class Action(enum.Enum):
    """What the generator decided to do for a job this round."""

    NONE = "none"
    UPSCALE_VERTICAL = "upscale_vertical"
    UPSCALE_HORIZONTAL = "upscale_horizontal"
    DOWNSCALE = "downscale"
    REBALANCE = "rebalance"
    MEMORY_INCREASE = "memory_increase"
    UNTRIAGED = "untriaged"


@dataclass
class ScalingDecision:
    """The generator's output for one job."""

    job_id: str
    action: Action
    reason: str = ""
    #: Target settings — only meaningful for scaling actions.
    task_count: Optional[int] = None
    threads: Optional[int] = None
    memory_per_task_gb: Optional[float] = None
    cpu_per_task: Optional[float] = None
    #: Causal origin (the detector symptom event) when tracing is on.
    trace: Optional[TraceEvent] = None

    @property
    def changes_config(self) -> bool:
        return self.action in (
            Action.UPSCALE_VERTICAL,
            Action.UPSCALE_HORIZONTAL,
            Action.DOWNSCALE,
            Action.MEMORY_INCREASE,
        )


class PlanGenerator:
    """Combines symptoms, estimates, and patterns into one decision."""

    def __init__(
        self,
        analyzer: PatternAnalyzer,
        container_capacity: ResourceVector,
        downscale_after: float = 86400.0,
        allow_vertical: bool = True,
    ) -> None:
        self._analyzer = analyzer
        #: "the upper limit of vertical scaling is set to a portion of
        #: resources available in a single container (typically 1/5)".
        self.vertical_limit = container_capacity.scaled(VERTICAL_LIMIT_FRACTION)
        self.downscale_after = downscale_after
        #: Ablation switch: with vertical scaling disabled every capacity
        #: increase is horizontal (the policy the paper argues against).
        self.allow_vertical = allow_vertical

    @property
    def max_threads(self) -> int:
        """Thread ceiling implied by the vertical CPU limit (≥ 1)."""
        if not self.allow_vertical:
            return 1
        return max(1, int(self.vertical_limit.cpu))

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def decide(
        self,
        snapshot: JobSnapshot,
        symptoms: JobSymptoms,
        estimate: ResourceEstimate,
        quiet_long_enough: bool,
        priority_floor: Priority = Priority.LOW,
        trace: Optional[TraceEvent] = None,
    ) -> ScalingDecision:
        """One decision for one job.

        ``quiet_long_enough`` is the caller's verdict on "no OOM, no lag
        ... detected in a day" (Algorithm 2 line 10); the generator does
        not read raw history itself. ``trace`` is the symptom event that
        prompted this evaluation (if any); it is propagated onto the
        decision so applying it links the action back to its cause.
        """
        decision = self._decide(
            snapshot, symptoms, estimate, quiet_long_enough, priority_floor
        )
        decision.trace = trace
        return decision

    def _decide(
        self,
        snapshot: JobSnapshot,
        symptoms: JobSymptoms,
        estimate: ResourceEstimate,
        quiet_long_enough: bool,
        priority_floor: Priority,
    ) -> ScalingDecision:
        if symptoms.lagging:
            return self._handle_lag(snapshot, symptoms, estimate, priority_floor)
        if symptoms.oom:
            return self._handle_oom(snapshot, estimate, priority_floor)
        if quiet_long_enough:
            return self._consider_downscale(snapshot, estimate)
        return ScalingDecision(snapshot.job_id, Action.NONE)

    # ------------------------------------------------------------------
    # Lag path
    # ------------------------------------------------------------------
    def _handle_lag(
        self,
        snapshot: JobSnapshot,
        symptoms: JobSymptoms,
        estimate: ResourceEstimate,
        priority_floor: Priority,
    ) -> ScalingDecision:
        # Was this lag caused by our own recent downscale? Then P was too
        # high — the analyzer corrected it; scale straight back up.
        if self._analyzer.observe_slo_violation(snapshot):
            return self._upscale(
                snapshot, estimate, priority_floor,
                reason="SLO violation after downscale; restoring capacity",
            )
        if symptoms.imbalanced and snapshot.task_count > 1:
            # Algorithm 2 line 3–4: rebalance rather than add resources.
            return ScalingDecision(
                snapshot.job_id, Action.REBALANCE,
                reason="lag with imbalanced input; rebalancing traffic",
            )
        if estimate.recovery_task_count > snapshot.task_count:
            return self._upscale(
                snapshot, estimate, priority_floor,
                reason=(
                    f"lag {snapshot.time_lagged:.0f}s > SLO "
                    f"{snapshot.slo_lag_seconds:.0f}s; "
                    f"need {estimate.recovery_task_count} tasks"
                ),
            )
        # Lagging, balanced, and the estimates say resources are
        # sufficient: something else is wrong (dependency failure, bad
        # update, hardware). Scaling "may amplify the original problem".
        return ScalingDecision(
            snapshot.job_id, Action.UNTRIAGED,
            reason="lag with sufficient estimated resources; needs triage",
        )

    def _upscale(
        self,
        snapshot: JobSnapshot,
        estimate: ResourceEstimate,
        priority_floor: Priority,
        reason: str,
    ) -> ScalingDecision:
        if snapshot.priority < priority_floor:
            return ScalingDecision(
                snapshot.job_id, Action.NONE,
                reason="upscale suppressed: cluster capacity pressure "
                       "prioritizes privileged jobs",
            )
        required_threads_total = estimate.recovery_task_count * max(
            1, snapshot.threads
        )
        # Vertical first: grow threads per task up to the 1/5 limit.
        vertical_threads = math.ceil(
            required_threads_total / max(1, snapshot.task_count)
        )
        if (
            vertical_threads <= self.max_threads
            and vertical_threads > snapshot.threads
        ):
            memory = self._cap_memory(estimate.memory_per_task_gb)
            return ScalingDecision(
                snapshot.job_id, Action.UPSCALE_VERTICAL, reason=reason,
                task_count=snapshot.task_count,
                threads=vertical_threads,
                memory_per_task_gb=memory,
                cpu_per_task=min(
                    self.vertical_limit.cpu, float(vertical_threads)
                ),
            )
        # Horizontal: max out threads, then add tasks (capped by the job's
        # task-count limit — the Fig. 8 "default upper limit" behaviour).
        threads = max(snapshot.threads, self.max_threads)
        task_count = math.ceil(required_threads_total / threads)
        task_count = min(task_count, snapshot.task_count_limit)
        if snapshot.input_partitions > 0:
            # Each partition has exactly one reader: tasks beyond the
            # partition count would sit idle, so cap there.
            task_count = min(task_count, snapshot.input_partitions)
        task_count = max(task_count, snapshot.task_count)
        if task_count == snapshot.task_count and threads == snapshot.threads:
            return ScalingDecision(
                snapshot.job_id, Action.NONE,
                reason="already at task-count limit",
            )
        memory = self._cap_memory(
            self._correlated_memory(snapshot, estimate, task_count)
        )
        return ScalingDecision(
            snapshot.job_id, Action.UPSCALE_HORIZONTAL, reason=reason,
            task_count=task_count, threads=threads,
            memory_per_task_gb=memory,
            cpu_per_task=min(self.vertical_limit.cpu, float(threads)),
        )

    # ------------------------------------------------------------------
    # OOM path
    # ------------------------------------------------------------------
    def _handle_oom(
        self,
        snapshot: JobSnapshot,
        estimate: ResourceEstimate,
        priority_floor: Priority,
    ) -> ScalingDecision:
        current = snapshot.memory_per_task_gb
        target = max(current * OOM_MEMORY_GROWTH, estimate.memory_per_task_gb)
        if target <= self.vertical_limit.memory_gb:
            return ScalingDecision(
                snapshot.job_id, Action.MEMORY_INCREASE,
                reason=f"OOM detected; memory {current:.2f} → {target:.2f} GB",
                task_count=snapshot.task_count,
                threads=snapshot.threads,
                memory_per_task_gb=target,
                cpu_per_task=snapshot.cpu_per_task or float(snapshot.threads),
            )
        # Per-task memory at the vertical limit: go horizontal, which
        # shrinks the per-task state footprint (correlated adjustment).
        if snapshot.priority < priority_floor:
            return ScalingDecision(
                snapshot.job_id, Action.NONE,
                reason="OOM upscale suppressed by capacity pressure",
            )
        task_count = min(snapshot.task_count * 2, snapshot.task_count_limit)
        if task_count <= snapshot.task_count:
            return ScalingDecision(
                snapshot.job_id, Action.UNTRIAGED,
                reason="OOM at vertical limit and task-count limit",
            )
        memory = self._cap_memory(
            self._correlated_memory(snapshot, estimate, task_count)
        )
        return ScalingDecision(
            snapshot.job_id, Action.UPSCALE_HORIZONTAL,
            reason="OOM at vertical memory limit; scaling horizontally",
            task_count=task_count, threads=snapshot.threads,
            memory_per_task_gb=memory,
            cpu_per_task=snapshot.cpu_per_task or float(snapshot.threads),
        )

    # ------------------------------------------------------------------
    # Downscale path
    # ------------------------------------------------------------------
    def _consider_downscale(
        self, snapshot: JobSnapshot, estimate: ResourceEstimate
    ) -> ScalingDecision:
        target = estimate.steady_task_count
        if target >= snapshot.task_count:
            if target > snapshot.task_count:
                # n' > n: our P estimate must be too small — correct it and
                # skip (Pattern Analyzer, resource adjustment data).
                self._analyzer.observe_underestimate(snapshot)
                return ScalingDecision(
                    snapshot.job_id, Action.NONE,
                    reason="estimate exceeded current count; "
                           "adjusted P upward and skipped",
                )
            return ScalingDecision(snapshot.job_id, Action.NONE)
        # Never below the hard floor.
        target = max(target, estimate.min_task_count, 1)
        verdict = self._analyzer.validate_downscale(snapshot, target)
        if not verdict.allowed:
            return ScalingDecision(
                snapshot.job_id, Action.NONE,
                reason=f"downscale vetoed: {verdict.reason}",
            )
        self._analyzer.record_downscale(snapshot, target)
        memory = self._cap_memory(
            self._correlated_memory(snapshot, estimate, target)
        )
        return ScalingDecision(
            snapshot.job_id, Action.DOWNSCALE,
            reason=(
                f"quiet; shrinking {snapshot.task_count} → {target} tasks"
            ),
            task_count=target, threads=snapshot.threads,
            memory_per_task_gb=memory,
            cpu_per_task=snapshot.cpu_per_task or float(snapshot.threads),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _correlated_memory(
        self, snapshot: JobSnapshot, estimate: ResourceEstimate, task_count: int
    ) -> float:
        """Re-derive per-task memory at a different parallelism.

        "if a stateful job is bottlenecked on CPU, and the number of tasks
        is increased, the memory allocated to each task can be reduced."
        """
        if not snapshot.stateful or task_count <= 0:
            return estimate.memory_per_task_gb
        base_count = max(1, estimate.recovery_task_count)
        state_part = estimate.disk_per_task_gb  # ∝ keys/task at base_count
        # Rescale the cardinality-driven portion by the count ratio; the
        # buffer/base portion is parallelism-independent.
        from repro.tasks.runtime import STATE_GB_PER_MILLION_KEYS

        keys_per_task = snapshot.state_key_cardinality / task_count
        non_state = estimate.memory_per_task_gb - (
            snapshot.state_key_cardinality / base_count / 1e6
        ) * STATE_GB_PER_MILLION_KEYS * 1.3
        state = (keys_per_task / 1e6) * STATE_GB_PER_MILLION_KEYS * 1.3
        return max(0.5, non_state + state)

    def _cap_memory(self, memory_gb: float) -> float:
        return min(memory_gb, self.vertical_limit.memory_gb)
