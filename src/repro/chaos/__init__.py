"""Deterministic control-plane chaos for the Turbine reproduction.

Declarative fault scenarios (:mod:`repro.chaos.scenarios`) run on the
simulation engine via :class:`ChaosEngine`, which records every fault
and measures MTTR — the time from a fault clearing to the platform's
safety and convergence invariants all holding again
(:mod:`repro.chaos.convergence`). :func:`run_scenario` packages the
standard deployment, warmup, and deterministic exports used by the
``repro chaos`` CLI and the golden determinism tests.
"""

from repro.chaos.convergence import ConvergenceChecker, InvariantReport
from repro.chaos.engine import CHECK_INTERVAL, ChaosEngine, ChaosRecord
from repro.chaos.scenarios import (
    FAULT_KINDS,
    ChaosScenario,
    Fault,
    all_scenarios,
    get_scenario,
    scenario_names,
)
from repro.chaos.runner import (
    WARMUP,
    ScenarioResult,
    build_platform,
    mttr_table,
    run_scenario,
)

__all__ = [
    "CHECK_INTERVAL",
    "FAULT_KINDS",
    "WARMUP",
    "ChaosEngine",
    "ChaosRecord",
    "ChaosScenario",
    "ConvergenceChecker",
    "Fault",
    "InvariantReport",
    "ScenarioResult",
    "all_scenarios",
    "build_platform",
    "get_scenario",
    "mttr_table",
    "run_scenario",
    "scenario_names",
]
