"""Declarative chaos scenarios for the Turbine control plane.

Each scenario is a list of :class:`Fault` records with times **relative to
the moment the scenario is scheduled**, so the same scenario replays
identically from any starting state. Faults with a ``duration`` open an
availability window (``inject`` then ``clear``); faults without one are
instantaneous stimuli (an oncall config patch, a host death).

The registry covers the degraded modes the paper calls out:

* ``job-store-outage`` — the source of truth disappears (section IV-A's
  "continues with the most recent state" requirement);
* ``syncer-crash`` — the State Syncer dies losing its in-memory dirty
  set, and anti-entropy (a forced full scan) must repair the gap;
* ``shard-manager-outage`` — section IV-C's "Failure of Turbine
  Containers": managers keep their shards through the outage, and a host
  dies mid-outage to prove recovery still detects real failures;
* ``task-service-staleness`` — section IV-B: managers run from cached
  snapshots until the Task Service returns;
* ``metric-gap`` — the scaler's input goes dark (section V's "demand
  estimates from metrics"); the data plane must not care;
* ``scribe-partition-loss`` — an input category's brokers vanish; lag
  builds, no data is lost, and the backlog drains after recovery.
* ``leader-crash-mid-plan`` — the Job Store leader replica dies right
  after an oncall patch, before the syncer's next round; the lease
  lapses, a follower promotes from the command log, and the pending
  plan applies exactly once on the new leader;
* ``follower-lag-snapshot-catchup`` — a follower is down long enough
  that the command log's retention horizon passes it; on rejoin it must
  bootstrap via snapshot transfer from the leader, then tail the log.
* ``checkpoint-restore-vs-cold-restart`` — a restart-like fault wipes a
  job's live progress offsets; with durable checkpoints attached the
  checkpoint plane rolls forward from the latest Scribe snapshot
  (recovery is O(since-last-checkpoint)), without them the job re-reads
  the whole retained backlog;
* ``standby-takeover`` — the host running a task's primary dies
  permanently and the passive hot-standby replica on another host is
  promoted within one standby tick, beating the 40 s reboot clock;
* ``gray-node-drain`` — a host degrades to a fraction of its throughput
  without failing a single health check; the slow-node detector drains
  the gray containers so shards migrate to healthy hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.types import Seconds

#: Fault kinds the chaos engine knows how to inject.
FAULT_KINDS = (
    "job-store-outage",
    "syncer-crash",
    "shard-manager-outage",
    "task-service-outage",
    "metric-gap",
    "scribe-partition-loss",
    "host-failure",
    "oncall-patch",
    "replica-crash",
    "repl-log-trim",
    "checkpoint-wipe",
    "slow-node",
)

#: Recovery watch kinds a measured fault can request.
#:
#: * ``convergence`` — the classic clock: opens when the fault clears,
#:   closes at the first fully converged invariant sample;
#: * ``lag`` — opens at inject (baseline = the target job's backlog just
#:   before the fault), closes when the backlog is back at baseline;
#: * ``takeover`` — opens at inject, closes when every spec of the
#:   target task's job has a RUNNING task (or promoted standby) on a
#:   live manager. Sampled on a fine 1 s timer so sub-5 s takeovers are
#:   resolvable.
WATCH_KINDS = ("convergence", "lag", "takeover")


@dataclass(frozen=True)
class Fault:
    """One fault (or stimulus) inside a scenario.

    ``at`` is relative to scenario start. ``duration`` of ``None`` means
    the fault is an instantaneous action with nothing to clear; otherwise
    the fault clears at ``at + duration`` and, when ``measure`` is true,
    the chaos engine measures MTTR from that clear to the first
    convergence-check pass. A non-default ``watch`` (see
    :data:`WATCH_KINDS`) times recovery from *inject* against a
    fault-specific predicate instead, which also lets instantaneous
    faults (``duration=None``) be measured.
    """

    kind: str
    at: Seconds
    duration: Optional[Seconds] = None
    #: Host id, Scribe category, job id, or ``"task-of:<task_id>"``
    #: (resolved at inject time to the host running that task) —
    #: depending on ``kind``.
    target: str = ""
    #: Config overlay for ``oncall-patch``; ``{"factor": f}`` for
    #: ``slow-node``.
    payload: Optional[Mapping[str, object]] = None
    measure: bool = True
    #: Which recovery predicate closes this fault's MTTR clock.
    watch: str = "convergence"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative: {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive: {self.duration}")
        if self.watch not in WATCH_KINDS:
            raise ValueError(
                f"unknown watch kind {self.watch!r} (known: {WATCH_KINDS})"
            )

    @property
    def key(self) -> str:
        """Stable identifier for MTTR bookkeeping and reports."""
        suffix = f":{self.target}" if self.target else ""
        return f"{self.kind}{suffix}@{self.at:g}s"


@dataclass(frozen=True)
class ChaosScenario:
    """A named, replayable fault schedule."""

    name: str
    description: str
    faults: Tuple[Fault, ...]
    #: How long :func:`repro.chaos.runner.run_scenario` keeps simulating
    #: after scheduling the scenario (long enough to converge).
    horizon: Seconds = 960.0
    #: Whether the platform runs with Job Store replication attached.
    #: Off for the legacy scenarios so their golden MTTRs stay frozen
    #: (a replicated ``job-store-outage`` would fail over and self-heal,
    #: which is a different experiment — see the replication scenarios).
    replication: bool = False
    #: Whether the platform runs with durable task checkpoints to Scribe
    #: (the :mod:`repro.tasks.checkpoint` plane) attached.
    durable_checkpoints: bool = False
    #: Whether jobs opt into hot-standby replicas and the standby plane
    #: is attached.
    hot_standby: bool = False
    #: Whether the gray-failure (slow-node) detector is attached.
    slow_node_detection: bool = False
    #: The documented recovery bound for this scenario's worst measured
    #: fault, in seconds (``None`` = no published bound). Rendered by
    #: ``repro chaos list`` and enforced in CI via ``--max-mttr``.
    expected_max_mttr: Optional[Seconds] = None

    def measured_faults(self) -> Tuple[Fault, ...]:
        """The faults whose recovery the engine times.

        A fault is measured when it asked to be (``measure``) and either
        has a window to recover from (``duration``) or a non-default
        watch (those time from inject, so instantaneous faults qualify).
        """
        return tuple(
            fault for fault in self.faults
            if fault.measure
            and (fault.duration is not None or fault.watch != "convergence")
        )


def _job_store_outage() -> ChaosScenario:
    return ChaosScenario(
        name="job-store-outage",
        description=(
            "Job Store unavailable for 5 min; an oncall patch lands just "
            "before the outage so the syncer has pending work it cannot "
            "see. Rounds are skipped (not crashed) and the patch applies "
            "after recovery."
        ),
        faults=(
            Fault("oncall-patch", at=40.0, target="chaos/job-0",
                  payload={"task_count": 4}, measure=False),
            Fault("job-store-outage", at=45.0, duration=300.0),
        ),
    )


def _syncer_crash() -> ChaosScenario:
    return ChaosScenario(
        name="syncer-crash",
        description=(
            "State Syncer crashes, losing its in-memory dirty set and "
            "change cursor; a patch lands while it is down. On restart "
            "anti-entropy (a forced full scan) finds and applies the "
            "missed change."
        ),
        faults=(
            Fault("syncer-crash", at=30.0, duration=300.0),
            Fault("oncall-patch", at=60.0, target="chaos/job-1",
                  payload={"task_count": 3}, measure=False),
        ),
    )


def _shard_manager_outage() -> ChaosScenario:
    return ChaosScenario(
        name="shard-manager-outage",
        description=(
            "Shard Manager down for 7 min; Task Managers keep their "
            "shards and tasks keep running (paper IV-C). A host dies "
            "mid-outage — undetectable until the Shard Manager returns, "
            "at which point failover moves its shards."
        ),
        faults=(
            Fault("shard-manager-outage", at=30.0, duration=420.0),
            Fault("host-failure", at=120.0, target="host-1", measure=False),
        ),
        horizon=1200.0,
    )


def _task_service_staleness() -> ChaosScenario:
    return ChaosScenario(
        name="task-service-staleness",
        description=(
            "Task Service snapshots unavailable for 5 min while a patch "
            "raises a job's task count; the syncer commits the new specs "
            "but managers run from stale cached snapshots until recovery "
            "(paper IV-B)."
        ),
        faults=(
            Fault("task-service-outage", at=30.0, duration=300.0),
            Fault("oncall-patch", at=60.0, target="chaos/job-0",
                  payload={"task_count": 4}, measure=False),
        ),
    )


def _metric_gap() -> ChaosScenario:
    return ChaosScenario(
        name="metric-gap",
        description=(
            "Metric-store ingestion drops samples for 5 min; scalers and "
            "health reports run on stale data but the data plane is "
            "untouched, so recovery is immediate."
        ),
        faults=(
            Fault("metric-gap", at=30.0, duration=300.0),
        ),
        horizon=660.0,
    )


def _scribe_partition_loss() -> ChaosScenario:
    return ChaosScenario(
        name="scribe-partition-loss",
        description=(
            "Every partition of one input category goes offline for "
            "5 min; producers keep buffering (no data loss), consumers "
            "stall and lag builds, then the backlog drains after "
            "recovery."
        ),
        faults=(
            Fault("scribe-partition-loss", at=30.0, duration=300.0,
                  target="cat-0"),
        ),
    )


def _leader_crash_mid_plan() -> ChaosScenario:
    return ChaosScenario(
        name="leader-crash-mid-plan",
        description=(
            "An oncall patch lands, then the Job Store leader replica "
            "dies before the syncer's next round can execute the plan. "
            "Writes degrade like a store outage until the lease lapses "
            "and a follower promotes from the command log; the pending "
            "plan then applies exactly once — no lost and no duplicated "
            "plan actions — and failover beats the 40 s reboot clock."
        ),
        faults=(
            Fault("oncall-patch", at=55.0, target="chaos/job-0",
                  payload={"task_count": 4}, measure=False),
            Fault("replica-crash", at=58.0, duration=120.0,
                  target="leader"),
        ),
        replication=True,
    )


def _follower_lag_snapshot_catchup() -> ChaosScenario:
    return ChaosScenario(
        name="follower-lag-snapshot-catchup",
        description=(
            "A follower replica is down while patches advance the "
            "command log, and the log's retention horizon is trimmed "
            "past the follower's position. On rejoin, catch-up must "
            "detect the horizon, install a snapshot from the leader, "
            "and tail the log back to in-sync."
        ),
        faults=(
            Fault("replica-crash", at=30.0, duration=300.0,
                  target="replica-2"),
            Fault("oncall-patch", at=60.0, target="chaos/job-1",
                  payload={"task_count": 3}, measure=False),
            Fault("oncall-patch", at=120.0, target="chaos/job-2",
                  payload={"task_count": 3}, measure=False),
            Fault("repl-log-trim", at=200.0, measure=False),
        ),
        replication=True,
    )


def _checkpoint_restore_vs_cold_restart() -> ChaosScenario:
    return ChaosScenario(
        name="checkpoint-restore-vs-cold-restart",
        description=(
            "A restart-like fault wipes job-0's live progress offsets. "
            "With durable checkpoints the checkpoint plane detects the "
            "regression and rolls the offsets forward from the latest "
            "Scribe snapshot, so only the last checkpoint interval is "
            "re-read; the lag watch times inject until the backlog is "
            "back at its pre-fault baseline. Run with --control to "
            "watch the cold restart re-read the whole retained backlog "
            "instead."
        ),
        faults=(
            # 75 s, deliberately off the checkpoint plane's 30 s tick
            # grid: the wipe lands mid-interval, so the measured MTTR
            # includes the realistic wait for the next plane tick.
            Fault("checkpoint-wipe", at=75.0, target="chaos/job-0",
                  watch="lag"),
        ),
        durable_checkpoints=True,
        expected_max_mttr=90.0,
    )


def _standby_takeover() -> ChaosScenario:
    return ChaosScenario(
        name="standby-takeover",
        description=(
            "The host running job-0's task 0 dies permanently (no "
            "recovery). The passive hot-standby replica on a different "
            "host is promoted within one standby tick; the takeover "
            "watch times inject until every task of the job is RUNNING "
            "again — beating the 40 s connection-timeout reboot clock a "
            "cold restart pays. Promotion is audited exactly-once via "
            "the standby promotion log; run with --control for the "
            "cold-restart arm."
        ),
        faults=(
            Fault("host-failure", at=55.0, target="task-of:chaos/job-0:0",
                  watch="takeover"),
        ),
        hot_standby=True,
        expected_max_mttr=5.0,
    )


def _gray_node_drain() -> ChaosScenario:
    return ChaosScenario(
        name="gray-node-drain",
        description=(
            "A host degrades to 10% throughput for 6 min without "
            "failing a single health check (gray failure). The "
            "slow-node detector compares per-task rates against the "
            "job median, confirms the suspicion over consecutive "
            "rounds, and drains the gray containers so their shards "
            "migrate to healthy hosts; the drained containers keep "
            "heartbeating and are undrained after the cooldown."
        ),
        faults=(
            Fault("slow-node", at=60.0, duration=360.0,
                  target="task-of:chaos/job-0:0",
                  payload={"factor": 0.1}),
        ),
        slow_node_detection=True,
        expected_max_mttr=60.0,
    )


#: Name → scenario. The registry is rebuilt per call so scenario tuples
#: can never be mutated by one run and leak into the next.
def all_scenarios() -> Dict[str, ChaosScenario]:
    scenarios = (
        _job_store_outage(),
        _syncer_crash(),
        _shard_manager_outage(),
        _task_service_staleness(),
        _metric_gap(),
        _scribe_partition_loss(),
        _leader_crash_mid_plan(),
        _follower_lag_snapshot_catchup(),
        _checkpoint_restore_vs_cold_restart(),
        _standby_takeover(),
        _gray_node_drain(),
    )
    return {scenario.name: scenario for scenario in scenarios}


def get_scenario(name: str) -> ChaosScenario:
    """Look up a registered scenario by name."""
    scenarios = all_scenarios()
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise KeyError(f"unknown chaos scenario {name!r} (known: {known})")
    return scenarios[name]


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(all_scenarios()))
