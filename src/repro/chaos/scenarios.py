"""Declarative chaos scenarios for the Turbine control plane.

Each scenario is a list of :class:`Fault` records with times **relative to
the moment the scenario is scheduled**, so the same scenario replays
identically from any starting state. Faults with a ``duration`` open an
availability window (``inject`` then ``clear``); faults without one are
instantaneous stimuli (an oncall config patch, a host death).

The registry covers the degraded modes the paper calls out:

* ``job-store-outage`` — the source of truth disappears (section IV-A's
  "continues with the most recent state" requirement);
* ``syncer-crash`` — the State Syncer dies losing its in-memory dirty
  set, and anti-entropy (a forced full scan) must repair the gap;
* ``shard-manager-outage`` — section IV-C's "Failure of Turbine
  Containers": managers keep their shards through the outage, and a host
  dies mid-outage to prove recovery still detects real failures;
* ``task-service-staleness`` — section IV-B: managers run from cached
  snapshots until the Task Service returns;
* ``metric-gap`` — the scaler's input goes dark (section V's "demand
  estimates from metrics"); the data plane must not care;
* ``scribe-partition-loss`` — an input category's brokers vanish; lag
  builds, no data is lost, and the backlog drains after recovery.
* ``leader-crash-mid-plan`` — the Job Store leader replica dies right
  after an oncall patch, before the syncer's next round; the lease
  lapses, a follower promotes from the command log, and the pending
  plan applies exactly once on the new leader;
* ``follower-lag-snapshot-catchup`` — a follower is down long enough
  that the command log's retention horizon passes it; on rejoin it must
  bootstrap via snapshot transfer from the leader, then tail the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.types import Seconds

#: Fault kinds the chaos engine knows how to inject.
FAULT_KINDS = (
    "job-store-outage",
    "syncer-crash",
    "shard-manager-outage",
    "task-service-outage",
    "metric-gap",
    "scribe-partition-loss",
    "host-failure",
    "oncall-patch",
    "replica-crash",
    "repl-log-trim",
)


@dataclass(frozen=True)
class Fault:
    """One fault (or stimulus) inside a scenario.

    ``at`` is relative to scenario start. ``duration`` of ``None`` means
    the fault is an instantaneous action with nothing to clear; otherwise
    the fault clears at ``at + duration`` and, when ``measure`` is true,
    the chaos engine measures MTTR from that clear to the first
    convergence-check pass.
    """

    kind: str
    at: Seconds
    duration: Optional[Seconds] = None
    #: Host id, Scribe category, or job id — depending on ``kind``.
    target: str = ""
    #: Config overlay for ``oncall-patch``.
    payload: Optional[Mapping[str, object]] = None
    measure: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be non-negative: {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive: {self.duration}")

    @property
    def key(self) -> str:
        """Stable identifier for MTTR bookkeeping and reports."""
        suffix = f":{self.target}" if self.target else ""
        return f"{self.kind}{suffix}@{self.at:g}s"


@dataclass(frozen=True)
class ChaosScenario:
    """A named, replayable fault schedule."""

    name: str
    description: str
    faults: Tuple[Fault, ...]
    #: How long :func:`repro.chaos.runner.run_scenario` keeps simulating
    #: after scheduling the scenario (long enough to converge).
    horizon: Seconds = 960.0
    #: Whether the platform runs with Job Store replication attached.
    #: Off for the legacy scenarios so their golden MTTRs stay frozen
    #: (a replicated ``job-store-outage`` would fail over and self-heal,
    #: which is a different experiment — see the replication scenarios).
    replication: bool = False

    def measured_faults(self) -> Tuple[Fault, ...]:
        """The faults whose recovery the engine times."""
        return tuple(
            fault for fault in self.faults
            if fault.measure and fault.duration is not None
        )


def _job_store_outage() -> ChaosScenario:
    return ChaosScenario(
        name="job-store-outage",
        description=(
            "Job Store unavailable for 5 min; an oncall patch lands just "
            "before the outage so the syncer has pending work it cannot "
            "see. Rounds are skipped (not crashed) and the patch applies "
            "after recovery."
        ),
        faults=(
            Fault("oncall-patch", at=40.0, target="chaos/job-0",
                  payload={"task_count": 4}, measure=False),
            Fault("job-store-outage", at=45.0, duration=300.0),
        ),
    )


def _syncer_crash() -> ChaosScenario:
    return ChaosScenario(
        name="syncer-crash",
        description=(
            "State Syncer crashes, losing its in-memory dirty set and "
            "change cursor; a patch lands while it is down. On restart "
            "anti-entropy (a forced full scan) finds and applies the "
            "missed change."
        ),
        faults=(
            Fault("syncer-crash", at=30.0, duration=300.0),
            Fault("oncall-patch", at=60.0, target="chaos/job-1",
                  payload={"task_count": 3}, measure=False),
        ),
    )


def _shard_manager_outage() -> ChaosScenario:
    return ChaosScenario(
        name="shard-manager-outage",
        description=(
            "Shard Manager down for 7 min; Task Managers keep their "
            "shards and tasks keep running (paper IV-C). A host dies "
            "mid-outage — undetectable until the Shard Manager returns, "
            "at which point failover moves its shards."
        ),
        faults=(
            Fault("shard-manager-outage", at=30.0, duration=420.0),
            Fault("host-failure", at=120.0, target="host-1", measure=False),
        ),
        horizon=1200.0,
    )


def _task_service_staleness() -> ChaosScenario:
    return ChaosScenario(
        name="task-service-staleness",
        description=(
            "Task Service snapshots unavailable for 5 min while a patch "
            "raises a job's task count; the syncer commits the new specs "
            "but managers run from stale cached snapshots until recovery "
            "(paper IV-B)."
        ),
        faults=(
            Fault("task-service-outage", at=30.0, duration=300.0),
            Fault("oncall-patch", at=60.0, target="chaos/job-0",
                  payload={"task_count": 4}, measure=False),
        ),
    )


def _metric_gap() -> ChaosScenario:
    return ChaosScenario(
        name="metric-gap",
        description=(
            "Metric-store ingestion drops samples for 5 min; scalers and "
            "health reports run on stale data but the data plane is "
            "untouched, so recovery is immediate."
        ),
        faults=(
            Fault("metric-gap", at=30.0, duration=300.0),
        ),
        horizon=660.0,
    )


def _scribe_partition_loss() -> ChaosScenario:
    return ChaosScenario(
        name="scribe-partition-loss",
        description=(
            "Every partition of one input category goes offline for "
            "5 min; producers keep buffering (no data loss), consumers "
            "stall and lag builds, then the backlog drains after "
            "recovery."
        ),
        faults=(
            Fault("scribe-partition-loss", at=30.0, duration=300.0,
                  target="cat-0"),
        ),
    )


def _leader_crash_mid_plan() -> ChaosScenario:
    return ChaosScenario(
        name="leader-crash-mid-plan",
        description=(
            "An oncall patch lands, then the Job Store leader replica "
            "dies before the syncer's next round can execute the plan. "
            "Writes degrade like a store outage until the lease lapses "
            "and a follower promotes from the command log; the pending "
            "plan then applies exactly once — no lost and no duplicated "
            "plan actions — and failover beats the 40 s reboot clock."
        ),
        faults=(
            Fault("oncall-patch", at=55.0, target="chaos/job-0",
                  payload={"task_count": 4}, measure=False),
            Fault("replica-crash", at=58.0, duration=120.0,
                  target="leader"),
        ),
        replication=True,
    )


def _follower_lag_snapshot_catchup() -> ChaosScenario:
    return ChaosScenario(
        name="follower-lag-snapshot-catchup",
        description=(
            "A follower replica is down while patches advance the "
            "command log, and the log's retention horizon is trimmed "
            "past the follower's position. On rejoin, catch-up must "
            "detect the horizon, install a snapshot from the leader, "
            "and tail the log back to in-sync."
        ),
        faults=(
            Fault("replica-crash", at=30.0, duration=300.0,
                  target="replica-2"),
            Fault("oncall-patch", at=60.0, target="chaos/job-1",
                  payload={"task_count": 3}, measure=False),
            Fault("oncall-patch", at=120.0, target="chaos/job-2",
                  payload={"task_count": 3}, measure=False),
            Fault("repl-log-trim", at=200.0, measure=False),
        ),
        replication=True,
    )


#: Name → scenario. The registry is rebuilt per call so scenario tuples
#: can never be mutated by one run and leak into the next.
def all_scenarios() -> Dict[str, ChaosScenario]:
    scenarios = (
        _job_store_outage(),
        _syncer_crash(),
        _shard_manager_outage(),
        _task_service_staleness(),
        _metric_gap(),
        _scribe_partition_loss(),
        _leader_crash_mid_plan(),
        _follower_lag_snapshot_catchup(),
    )
    return {scenario.name: scenario for scenario in scenarios}


def get_scenario(name: str) -> ChaosScenario:
    """Look up a registered scenario by name."""
    scenarios = all_scenarios()
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise KeyError(f"unknown chaos scenario {name!r} (known: {known})")
    return scenarios[name]


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(all_scenarios()))
