"""The chaos engine: schedules scenarios and measures recovery.

All faults run on the simulation engine, so a scenario is as
deterministic as the platform it runs against: same seed, same fault
times, same recovery trajectory. Every injection, clearance, stimulus,
and convergence event is appended to :attr:`ChaosEngine.records`, which
the incident timeline merges alongside syncer alerts, failovers, and
host deaths.

MTTR is measured per fault: when a measured fault clears, the engine
starts sampling :class:`~repro.chaos.convergence.ConvergenceChecker`
every ``check_interval`` seconds; the first fully converged sample
closes the clock. A fault whose clock never closes reports ``None``
(the scenario did not recover inside the run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chaos.convergence import ConvergenceChecker, InvariantReport
from repro.chaos.scenarios import ChaosScenario, Fault
from repro.types import Seconds

#: How often the convergence watch samples the invariants.
CHECK_INTERVAL: Seconds = 5.0


@dataclass(frozen=True)
class ChaosRecord:
    """One thing the chaos engine did or observed."""

    time: Seconds
    scenario: str
    kind: str    # "inject" | "clear" | "action" | "converged"
    target: str
    detail: str = ""


@dataclass
class _Watch:
    """An open MTTR clock: fault cleared, waiting for convergence."""

    scenario: str
    fault_key: str
    cleared_at: Seconds


class ChaosEngine:
    """Schedules declarative fault scenarios against one platform."""

    def __init__(self, platform, check_interval: Seconds = CHECK_INTERVAL) -> None:
        self._platform = platform
        self._engine = platform.engine
        self._check_interval = check_interval
        self.checker = ConvergenceChecker(platform)
        self.records: List[ChaosRecord] = []
        #: fault key → MTTR in seconds (``None`` until converged).
        self.mttr: Dict[str, Optional[Seconds]] = {}
        self._watches: List[_Watch] = []
        self._watch_timer = None
        #: fault key → concrete replica id resolved at inject time, so a
        #: ``replica-crash`` targeting "leader" restarts the same process
        #: it killed (the leadership may have moved by clear time).
        self._replica_targets: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, scenario: ChaosScenario, at: Optional[Seconds] = None) -> None:
        """Arm every fault of ``scenario`` relative to ``at`` (default now)."""
        base = self._engine.now if at is None else at
        for fault in scenario.faults:
            self._engine.call_at(
                base + fault.at,
                lambda f=fault: self._inject(scenario.name, f),
            )
            if fault.duration is not None:
                self._engine.call_at(
                    base + fault.at + fault.duration,
                    lambda f=fault: self._clear(scenario.name, f),
                )
        self._ensure_watch_timer()

    @property
    def converged(self) -> bool:
        """True when no MTTR clock is still open."""
        return not self._watches

    def check(self) -> InvariantReport:
        """One immediate invariant sample (no timer involved)."""
        return self.checker.check()

    # ------------------------------------------------------------------
    # Fault dispatch
    # ------------------------------------------------------------------
    def _inject(self, scenario: str, fault: Fault) -> None:
        platform = self._platform
        detail = ""
        kind = "inject"
        if fault.kind == "job-store-outage":
            platform.job_store.fail()
        elif fault.kind == "syncer-crash":
            platform.syncer.crash()
        elif fault.kind == "shard-manager-outage":
            platform.shard_manager.fail()
        elif fault.kind == "task-service-outage":
            platform.task_service.fail()
        elif fault.kind == "metric-gap":
            platform.metrics.fail()
        elif fault.kind == "scribe-partition-loss":
            for partition in platform.scribe.get_category(fault.target).partitions:
                partition.online = False
        elif fault.kind == "host-failure":
            platform.failures.fail_now(fault.target, label=scenario)
            kind = "action"
        elif fault.kind == "oncall-patch":
            from repro.jobs.configs import ConfigLevel

            platform.job_service.patch(
                fault.target, ConfigLevel.ONCALL, dict(fault.payload or {})
            )
            kind = "action"
            detail = repr(dict(fault.payload or {}))
        elif fault.kind == "replica-crash":
            replica_id = platform.replication.crash(fault.target or "leader")
            self._replica_targets[fault.key] = replica_id
            detail = replica_id
        elif fault.kind == "repl-log-trim":
            dropped = platform.replication.trim_log()
            kind = "action"
            detail = f"dropped={dropped}"
        self._record(scenario, kind, fault.key, detail)
        self._telemetry_inc("chaos.faults_injected")

    def _clear(self, scenario: str, fault: Fault) -> None:
        platform = self._platform
        if fault.kind == "job-store-outage":
            platform.job_store.recover()
        elif fault.kind == "syncer-crash":
            platform.syncer.restart()
        elif fault.kind == "shard-manager-outage":
            platform.shard_manager.recover()
        elif fault.kind == "task-service-outage":
            platform.task_service.recover()
        elif fault.kind == "metric-gap":
            platform.metrics.recover()
        elif fault.kind == "scribe-partition-loss":
            for partition in platform.scribe.get_category(fault.target).partitions:
                partition.online = True
        elif fault.kind == "host-failure":
            platform.failures.recover_now(fault.target, label=scenario)
        elif fault.kind == "replica-crash":
            platform.replication.restart(self._replica_targets[fault.key])
        self._record(scenario, "clear", fault.key)
        if fault.measure:
            self.mttr.setdefault(fault.key, None)
            self._watches.append(
                _Watch(scenario, fault.key, cleared_at=self._engine.now)
            )
            self._ensure_watch_timer()

    # ------------------------------------------------------------------
    # Convergence watch
    # ------------------------------------------------------------------
    def _ensure_watch_timer(self) -> None:
        if self._watch_timer is None:
            self._watch_timer = self._engine.every(
                self._check_interval, self._check_watches, name="chaos-watch"
            )

    def _check_watches(self) -> None:
        if not self._watches:
            return
        report = self.checker.check()
        if not report.converged:
            return
        now = self._engine.now
        for watch in self._watches:
            mttr = now - watch.cleared_at
            self.mttr[watch.fault_key] = mttr
            self._record(
                watch.scenario, "converged", watch.fault_key,
                f"mttr={mttr:g}s",
            )
            self._telemetry_observe("chaos.mttr_seconds", mttr)
        self._watches.clear()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, scenario: str, kind: str, target: str, detail: str = "") -> None:
        self.records.append(
            ChaosRecord(self._engine.now, scenario, kind, target, detail)
        )

    def _telemetry_inc(self, name: str) -> None:
        telemetry = getattr(self._platform, "telemetry", None)
        if telemetry is not None:
            telemetry.inc(name)

    def _telemetry_observe(self, name: str, value: float) -> None:
        telemetry = getattr(self._platform, "telemetry", None)
        if telemetry is not None:
            telemetry.observe(name, value)

    def __repr__(self) -> str:
        open_watches = len(self._watches)
        return (
            f"ChaosEngine(records={len(self.records)}, "
            f"open_watches={open_watches})"
        )
