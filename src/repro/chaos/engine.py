"""The chaos engine: schedules scenarios and measures recovery.

All faults run on the simulation engine, so a scenario is as
deterministic as the platform it runs against: same seed, same fault
times, same recovery trajectory. Every injection, clearance, stimulus,
and convergence event is appended to :attr:`ChaosEngine.records`, which
the incident timeline merges alongside syncer alerts, failovers, and
host deaths.

MTTR is measured per fault: when a measured fault clears, the engine
starts sampling :class:`~repro.chaos.convergence.ConvergenceChecker`
every ``check_interval`` seconds; the first fully converged sample
closes the clock. A fault whose clock never closes reports ``None``
(the scenario did not recover inside the run).

Faults can opt into alternative recovery predicates via ``watch``:

* ``lag`` opens at inject with the target job's pre-fault backlog as a
  baseline and closes when the backlog is back within
  :data:`LAG_EPSILON_MB` of it;
* ``takeover`` opens at inject and closes when every spec of the target
  task's job has a RUNNING task (primary or promoted standby) on a live
  manager — sampled on a dedicated 1 s fine timer, because hot-standby
  promotion finishes well under the coarse ``check_interval``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.chaos.convergence import ConvergenceChecker, InvariantReport
from repro.chaos.scenarios import ChaosScenario, Fault
from repro.errors import DegradedModeError
from repro.types import Seconds, TaskState

#: How often the convergence watch samples the invariants.
CHECK_INTERVAL: Seconds = 5.0

#: How often the fine watch samples takeover predicates.
FINE_CHECK_INTERVAL: Seconds = 1.0

#: A lag watch closes when the backlog is back within this much of its
#: pre-fault baseline (one driver tick of slack against rounding).
LAG_EPSILON_MB: float = 1.0


@dataclass(frozen=True)
class ChaosRecord:
    """One thing the chaos engine did or observed."""

    time: Seconds
    scenario: str
    kind: str    # "inject" | "clear" | "action" | "converged"
    target: str
    detail: str = ""


@dataclass
class _Watch:
    """An open MTTR clock: fault cleared (or injected, for the
    inject-anchored watch kinds), waiting for its recovery predicate."""

    scenario: str
    fault_key: str
    cleared_at: Seconds
    #: Which predicate closes this clock (a :data:`WATCH_KINDS` value).
    watch: str = "convergence"
    #: Job id the lag/takeover predicates evaluate ("" for convergence).
    target: str = ""
    #: Pre-fault backlog of the target job, MB (lag watches only).
    baseline: float = 0.0


class ChaosEngine:
    """Schedules declarative fault scenarios against one platform."""

    def __init__(self, platform, check_interval: Seconds = CHECK_INTERVAL) -> None:
        self._platform = platform
        self._engine = platform.engine
        self._check_interval = check_interval
        self.checker = ConvergenceChecker(platform)
        self.records: List[ChaosRecord] = []
        #: fault key → MTTR in seconds (``None`` until converged).
        self.mttr: Dict[str, Optional[Seconds]] = {}
        self._watches: List[_Watch] = []
        self._watch_timer = None
        self._fine_timer = None
        #: fault key → concrete replica id resolved at inject time, so a
        #: ``replica-crash`` targeting "leader" restarts the same process
        #: it killed (the leadership may have moved by clear time).
        self._replica_targets: Dict[str, str] = {}
        #: fault key → host id resolved at inject time for
        #: ``"task-of:<task_id>"`` targets, so the clear path degrades
        #: the same host it hit (the task may have moved meanwhile).
        self._resolved_hosts: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, scenario: ChaosScenario, at: Optional[Seconds] = None) -> None:
        """Arm every fault of ``scenario`` relative to ``at`` (default now)."""
        base = self._engine.now if at is None else at
        for fault in scenario.faults:
            self._engine.call_at(
                base + fault.at,
                lambda f=fault: self._inject(scenario.name, f),
            )
            if fault.duration is not None:
                self._engine.call_at(
                    base + fault.at + fault.duration,
                    lambda f=fault: self._clear(scenario.name, f),
                )
        self._ensure_watch_timer()

    @property
    def converged(self) -> bool:
        """True when no MTTR clock is still open."""
        return not self._watches

    def check(self) -> InvariantReport:
        """One immediate invariant sample (no timer involved)."""
        return self.checker.check()

    # ------------------------------------------------------------------
    # Fault dispatch
    # ------------------------------------------------------------------
    def _inject(self, scenario: str, fault: Fault) -> None:
        platform = self._platform
        detail = ""
        kind = "inject"
        # Lag baselines must be sampled *before* the fault lands — the
        # fault itself (e.g. a checkpoint wipe) inflates the backlog.
        baseline = 0.0
        if fault.measure and fault.watch == "lag":
            baseline = self._job_lag_mb(self._watch_target(fault))
        if fault.kind == "job-store-outage":
            platform.job_store.fail()
        elif fault.kind == "syncer-crash":
            platform.syncer.crash()
        elif fault.kind == "shard-manager-outage":
            platform.shard_manager.fail()
        elif fault.kind == "task-service-outage":
            platform.task_service.fail()
        elif fault.kind == "metric-gap":
            platform.metrics.fail()
        elif fault.kind == "scribe-partition-loss":
            for partition in platform.scribe.get_category(fault.target).partitions:
                partition.online = False
        elif fault.kind == "host-failure":
            host = self._resolve_host(fault)
            platform.failures.fail_now(host, label=scenario)
            kind = "action"
            if host != fault.target:
                detail = host
        elif fault.kind == "oncall-patch":
            from repro.jobs.configs import ConfigLevel

            platform.job_service.patch(
                fault.target, ConfigLevel.ONCALL, dict(fault.payload or {})
            )
            kind = "action"
            detail = repr(dict(fault.payload or {}))
        elif fault.kind == "replica-crash":
            replica_id = platform.replication.crash(fault.target or "leader")
            self._replica_targets[fault.key] = replica_id
            detail = replica_id
        elif fault.kind == "repl-log-trim":
            dropped = platform.replication.trim_log()
            kind = "action"
            detail = f"dropped={dropped}"
        elif fault.kind == "checkpoint-wipe":
            platform.scribe.checkpoints.drop_job(fault.target)
            if platform.data_plane is not None:
                # Worker mirrors still hold the wiped job's offsets.
                platform.data_plane.mark_job_dirty(fault.target)
            kind = "action"
        elif fault.kind == "slow-node":
            host = self._resolve_host(fault)
            factor = float((fault.payload or {}).get("factor", 0.5))
            for manager in self._managers_on(host):
                manager.slow_factor = factor
            detail = f"{host} at {factor:g}x"
        self._record(scenario, kind, fault.key, detail)
        self._telemetry_inc("chaos.faults_injected")
        if fault.measure and fault.watch != "convergence":
            # Inject-anchored clocks: the watch opens the moment the
            # fault lands (there may be nothing to clear at all).
            self.mttr.setdefault(fault.key, None)
            self._watches.append(_Watch(
                scenario, fault.key, cleared_at=self._engine.now,
                watch=fault.watch, target=self._watch_target(fault),
                baseline=baseline,
            ))
            if fault.watch == "takeover":
                self._ensure_fine_timer()
            self._ensure_watch_timer()

    def _clear(self, scenario: str, fault: Fault) -> None:
        platform = self._platform
        if fault.kind == "job-store-outage":
            platform.job_store.recover()
        elif fault.kind == "syncer-crash":
            platform.syncer.restart()
        elif fault.kind == "shard-manager-outage":
            platform.shard_manager.recover()
        elif fault.kind == "task-service-outage":
            platform.task_service.recover()
        elif fault.kind == "metric-gap":
            platform.metrics.recover()
        elif fault.kind == "scribe-partition-loss":
            for partition in platform.scribe.get_category(fault.target).partitions:
                partition.online = True
        elif fault.kind == "host-failure":
            platform.failures.recover_now(
                self._resolved_hosts.get(fault.key, fault.target),
                label=scenario,
            )
        elif fault.kind == "replica-crash":
            platform.replication.restart(self._replica_targets[fault.key])
        elif fault.kind == "slow-node":
            host = self._resolved_hosts.get(fault.key, fault.target)
            for manager in self._managers_on(host):
                manager.slow_factor = 1.0
        self._record(scenario, "clear", fault.key)
        if fault.measure and fault.watch == "convergence":
            self.mttr.setdefault(fault.key, None)
            self._watches.append(
                _Watch(scenario, fault.key, cleared_at=self._engine.now)
            )
            self._ensure_watch_timer()

    # ------------------------------------------------------------------
    # Convergence watch
    # ------------------------------------------------------------------
    def _ensure_watch_timer(self) -> None:
        if self._watch_timer is None:
            self._watch_timer = self._engine.every(
                self._check_interval, self._check_watches, name="chaos-watch"
            )

    def _ensure_fine_timer(self) -> None:
        if self._fine_timer is None:
            self._fine_timer = self._engine.every(
                FINE_CHECK_INTERVAL, self._check_fine_watches,
                name="chaos-fine-watch",
            )

    def _check_watches(self) -> None:
        """The coarse tick: convergence and lag watches."""
        if not self._watches:
            return
        now = self._engine.now
        report: Optional[InvariantReport] = None
        still_open: List[_Watch] = []
        for watch in self._watches:
            if watch.watch == "convergence":
                if report is None:
                    report = self.checker.check()
                satisfied = report.converged
            elif watch.watch == "lag":
                satisfied = (
                    self._job_lag_mb(watch.target)
                    <= watch.baseline + LAG_EPSILON_MB
                )
            else:
                # Takeover watches belong to the fine timer; a coarse
                # tick leaves them untouched so their sub-second clocks
                # stay on the 1 s grid.
                still_open.append(watch)
                continue
            if satisfied:
                self._close_watch(watch, now)
            else:
                still_open.append(watch)
        self._watches = still_open

    def _check_fine_watches(self) -> None:
        """The 1 s tick: takeover watches only."""
        takeovers = [w for w in self._watches if w.watch == "takeover"]
        if not takeovers:
            return
        now = self._engine.now
        for watch in takeovers:
            if self._takeover_complete(watch.target):
                self._close_watch(watch, now)
                self._watches.remove(watch)

    def _close_watch(self, watch: _Watch, now: Seconds) -> None:
        mttr = now - watch.cleared_at
        self.mttr[watch.fault_key] = mttr
        self._record(
            watch.scenario, "converged", watch.fault_key,
            f"mttr={mttr:g}s",
        )
        self._telemetry_observe("chaos.mttr_seconds", mttr)

    # ------------------------------------------------------------------
    # Watch predicates and target resolution
    # ------------------------------------------------------------------
    def _watch_target(self, fault: Fault) -> str:
        """The job id a lag/takeover watch evaluates for ``fault``."""
        target = fault.target
        if target.startswith("task-of:"):
            # "task-of:<job>:<index>" — the watch covers the whole job.
            return target[len("task-of:"):].rsplit(":", 1)[0]
        return target

    def _resolve_host(self, fault: Fault) -> str:
        """Resolve a ``"task-of:<task_id>"`` target to its current host.

        Resolution happens once, at inject, and is memoized per fault
        key so the clear path degrades/recovers the same host even if
        the task has moved meanwhile.
        """
        target = fault.target
        if not target.startswith("task-of:"):
            return target
        if fault.key in self._resolved_hosts:
            return self._resolved_hosts[fault.key]
        task_id = target[len("task-of:"):]
        managers = self._platform.task_managers
        for container_id in sorted(managers):
            manager = managers[container_id]
            if manager.alive and task_id in manager.tasks:
                host = manager.container.host_id
                self._resolved_hosts[fault.key] = host
                return host
        raise ValueError(
            f"cannot resolve {target!r}: no live manager runs {task_id}"
        )

    def _managers_on(self, host_id: str) -> List[object]:
        managers = self._platform.task_managers
        return [
            managers[container_id]
            for container_id in sorted(managers)
            if managers[container_id].container.host_id == host_id
        ]

    def _job_lag_mb(self, job_id: str) -> float:
        """The job's unprocessed backlog in MB (same math as stats)."""
        platform = self._platform
        try:
            config = platform.job_service.expected_config(job_id)
        except DegradedModeError:
            return float("inf")
        category_name = config.get("input", {}).get("category", "")
        if not category_name:
            return 0.0
        category = platform.scribe.get_category(category_name)
        checkpoints = platform.scribe.checkpoints
        return sum(
            partition.available(
                checkpoints.get(job_id, partition.partition_id)
            )
            for partition in category.partitions
        )

    def _takeover_complete(self, job_id: str) -> bool:
        """Every spec of ``job_id`` has a RUNNING task on a live manager
        — counting promoted standbys, which hold the fort until the
        reconciliation path starts a proper primary."""
        platform = self._platform
        try:
            specs = platform.task_service.specs_of(job_id)
        except DegradedModeError:
            return False
        running: set = set()
        for container_id in sorted(platform.task_managers):
            manager = platform.task_managers[container_id]
            if not manager.alive:
                continue
            for task_id, task in manager.tasks.items():
                if task.state == TaskState.RUNNING:
                    running.add(task_id)
            for task_id, task in manager.standbys.items():
                if task.state == TaskState.RUNNING:
                    running.add(task_id)
        return bool(specs) and all(
            spec.task_id in running for spec in specs
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, scenario: str, kind: str, target: str, detail: str = "") -> None:
        self.records.append(
            ChaosRecord(self._engine.now, scenario, kind, target, detail)
        )

    def _telemetry_inc(self, name: str) -> None:
        telemetry = getattr(self._platform, "telemetry", None)
        if telemetry is not None:
            telemetry.inc(name)

    def _telemetry_observe(self, name: str, value: float) -> None:
        telemetry = getattr(self._platform, "telemetry", None)
        if telemetry is not None:
            telemetry.observe(name, value)

    def __repr__(self) -> str:
        open_watches = len(self._watches)
        return (
            f"ChaosEngine(records={len(self.records)}, "
            f"open_watches={open_watches})"
        )
