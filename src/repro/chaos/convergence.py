"""Convergence checking: are the paper's safety invariants holding?

The headline robustness claims (sections IV-C/IV-D, "lessons learned")
reduce to a small set of checkable invariants:

* **no duplicates** — no task id runs in two containers at once ("no two
  containers ever run the same task");
* **no orphans** — no container runs a task of a job the Job Store no
  longer knows;
* **no missing tasks** — every spec the Task Service serves has a running
  task somewhere;
* **placement converged** — every assigned shard's owner is a live,
  registered container;
* **configs converged** — every RUNNING job's running config equals its
  merged expected config, nothing is dirty, and nothing is quarantined.

:class:`ConvergenceChecker` evaluates all of them against a live
platform; the chaos engine samples it after each fault clears to measure
time-to-recovery, and the hypothesis suites assert the safety subset
(duplicates/orphans) at every step of randomized histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import DegradedModeError
from repro.jobs.configs import config_diff
from repro.types import JobState, Seconds, TaskState


@dataclass
class InvariantReport:
    """One sample of every invariant (empty lists = all good)."""

    time: Seconds
    #: Task ids running in more than one live container.
    duplicates: List[str] = field(default_factory=list)
    #: Running task ids whose job is gone from the Job Store.
    orphans: List[str] = field(default_factory=list)
    #: Spec'd task ids with no running task.
    missing: List[str] = field(default_factory=list)
    #: Shards assigned to a container that is not live and registered.
    unplaced_shards: List[str] = field(default_factory=list)
    #: Jobs whose running config diverges from expected (or is dirty).
    diverged: List[str] = field(default_factory=list)
    #: Jobs in QUARANTINED state (oncall attention required).
    quarantined: List[str] = field(default_factory=list)
    #: False while the Job Store is unavailable: store-dependent checks
    #: could not run, so the system cannot be called converged.
    store_visible: bool = True
    #: Live replicas still catching up on the command log. A replica in
    #: catch-up is *not yet converged* — but its stale shadow view is
    #: never read for the placement/config checks above, so it can never
    #: be misreported as a placement violation (all store-dependent
    #: checks read the leader endpoint only).
    lagging_replicas: List[str] = field(default_factory=list)
    #: True while the replica set has no live leader (failover pending).
    leaderless: bool = False
    #: Task ids mid standby handoff: a promoted standby is still serving
    #: while a freshly started primary exists for the same task. The
    #: overlap is deliberate (the standby retires only once the primary
    #: is confirmed), so it is *not yet converged* — but it is never a
    #: duplicate-task safety violation; passive standbys never occupy
    #: the task-id namespace at all.
    promoting: List[str] = field(default_factory=list)

    @property
    def safety_ok(self) -> bool:
        """The never-violated invariants: no duplicates, no orphans."""
        return not self.duplicates and not self.orphans

    @property
    def converged(self) -> bool:
        """Everything restored: safety, liveness, and config agreement."""
        return (
            self.store_visible
            and self.safety_ok
            and not self.missing
            and not self.unplaced_shards
            and not self.diverged
            and not self.quarantined
            and not self.lagging_replicas
            and not self.leaderless
            and not self.promoting
        )

    def violations(self) -> Dict[str, List[str]]:
        """Non-empty invariant violations, keyed by invariant name."""
        out: Dict[str, List[str]] = {}
        for name in (
            "duplicates", "orphans", "missing", "unplaced_shards",
            "diverged", "quarantined",
        ):
            values = getattr(self, name)
            if values:
                out[name] = values
        if not self.store_visible:
            out["store_visible"] = ["job store unavailable"]
        if self.lagging_replicas:
            out["lagging_replicas"] = self.lagging_replicas
        if self.leaderless:
            out["leaderless"] = ["no live job-store leader"]
        if self.promoting:
            out["promoting"] = self.promoting
        return out


class ConvergenceChecker:
    """Samples the invariants of one platform."""

    def __init__(self, platform) -> None:
        self._platform = platform

    def check(self) -> InvariantReport:
        platform = self._platform
        report = InvariantReport(time=platform.now)

        # Replication plane (when attached): a leaderless group or a
        # live replica still in catch-up means "not yet converged". Dead
        # replicas are an open fault, not a lagging replica, and shadow
        # stores are never read below — only the leader endpoint is.
        replication = getattr(platform, "replication", None)
        if replication is not None:
            report.lagging_replicas = replication.lagging_replicas()
            report.leaderless = not replication.has_leader

        # Duplicates: every task object on a live manager occupies the
        # task-id namespace, whatever its state. Standby replicas are
        # deliberately outside that namespace — a passive replica is not
        # a second copy of the task (it processes nothing), and a
        # promoted one overlapping a fresh primary is the handoff
        # protocol working as designed, tracked as ``promoting`` below.
        owners: Dict[str, List[str]] = {}
        running: set = set()
        promoted: Dict[str, str] = {}
        for container_id in sorted(platform.task_managers):
            manager = platform.task_managers[container_id]
            if not manager.alive:
                continue
            for task_id, task in manager.tasks.items():
                owners.setdefault(task_id, []).append(container_id)
                if task.state == TaskState.RUNNING:
                    running.add(task_id)
            for task_id, task in manager.standbys.items():
                if task.state == TaskState.RUNNING:
                    promoted[task_id] = container_id
                    running.add(task_id)
        report.duplicates = sorted(
            task_id for task_id, where in owners.items() if len(where) > 1
        )
        report.promoting = sorted(
            task_id for task_id in promoted if task_id in owners
        )

        # Placement: assigned shards must map to live registered containers.
        live_containers = {
            manager.container_id
            for manager in platform.shard_manager.live_managers()
        }
        report.unplaced_shards = sorted(
            shard_id
            for shard_id, owner in platform.shard_manager.assignment.items()
            if owner not in live_containers
        )

        # Store-dependent checks (skipped while the store is out).
        store = platform.job_store
        try:
            job_ids = store.job_ids()
        except DegradedModeError:
            report.store_visible = False
            return report
        live_jobs = set(job_ids)
        report.orphans = sorted(
            task_id
            for task_id, where in owners.items()
            if _job_of(platform, where[0], task_id) not in live_jobs
        )
        for job_id in job_ids:
            state = store.state_of(job_id)
            if state == JobState.QUARANTINED:
                report.quarantined.append(job_id)
            if state != JobState.RUNNING:
                continue
            expected = store.merged_expected(job_id)
            running_config = store.read_running(job_id).config
            if config_diff(running_config, expected) or store.is_dirty(job_id):
                report.diverged.append(job_id)

        # Missing: the Task Service's spec table is the cluster's marching
        # orders; every spec must have a RUNNING task somewhere.
        for job_id in platform.task_service.job_ids():
            for spec in platform.task_service.specs_of(job_id):
                if spec.task_id not in running:
                    report.missing.append(spec.task_id)
        report.missing.sort()
        return report

    def assert_safety(self) -> InvariantReport:
        """Raise ``AssertionError`` on a duplicate or orphan task."""
        report = self.check()
        if not report.safety_ok:
            raise AssertionError(
                f"safety invariants violated at t={report.time:g}: "
                f"duplicates={report.duplicates} orphans={report.orphans}"
            )
        return report


def _job_of(platform, container_id: str, task_id: str) -> str:
    task = platform.task_managers[container_id].tasks.get(task_id)
    return task.spec.job_id if task is not None else ""
