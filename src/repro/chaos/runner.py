"""Standard chaos-scenario runs: one platform shape, one report format.

:func:`run_scenario` builds the same small deployment the incident
tooling uses (4 hosts x 2 containers, 32 shards, three jobs with steady
traffic), warms it up to a converged steady state, schedules one named
scenario, and runs to the scenario's horizon. The result carries MTTR
per measured fault plus deterministic exports (timeline text, telemetry
JSONL) so same-seed runs are byte-for-byte comparable — the golden
determinism tests and the CI determinism sweep diff these directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.convergence import InvariantReport
from repro.chaos.scenarios import ChaosScenario, get_scenario
from repro.types import Seconds

#: Steady-state lead-in before the scenario starts: long enough for
#: initial placement, first syncs, refreshes, and a scaler pass.
WARMUP: Seconds = 300.0


@dataclass
class ScenarioResult:
    """Everything one chaos run produced."""

    scenario: str
    seed: int
    started_at: Seconds
    finished_at: Seconds
    #: fault key → seconds from fault clear to first converged sample
    #: (``None`` = never converged inside the horizon).
    mttr: Dict[str, Optional[Seconds]] = field(default_factory=dict)
    final_report: Optional[InvariantReport] = None
    timeline_text: str = ""
    telemetry_jsonl: str = ""
    #: Deterministic SLO export: budgets burned, breach windows, and
    #: burn-rate alerts over the whole drill (canonical JSON).
    slo_report_json: str = ""
    #: (job, slo) → error-budget fraction burned by the end of the run.
    budget_burned: Dict[str, float] = field(default_factory=dict)
    #: Closed + open SLO breach windows observed during the run.
    slo_breaches: int = 0
    #: Canonical end-state fingerprint (checkpoints, task states, heads)
    #: — the fifth export the 1-vs-N byte-identity goldens compare.
    fingerprint_json: str = ""
    #: Causal trace export (JSONL), deterministic per seed.
    trace_jsonl: str = ""
    #: Data-plane partition count (0 = legacy per-manager step timers).
    data_plane_partitions: int = 0
    #: max/mean partition cost of the plane's load-aware plan (1.0 until
    #: the warmup replan, or when the plane is off). Run-summary only:
    #: this value depends on the partition count, so it never feeds an
    #: export.
    plan_skew: float = 1.0
    #: Plane ticks executed (0 when the plane is off).
    dataplane_ticks: int = 0

    @property
    def converged(self) -> bool:
        """Every measured fault recovered and the final sample is clean."""
        return (
            all(value is not None for value in self.mttr.values())
            and self.final_report is not None
            and self.final_report.converged
        )

    @property
    def max_mttr(self) -> Optional[Seconds]:
        """Worst measured recovery time (``None`` if any clock is open)."""
        if not self.mttr or any(v is None for v in self.mttr.values()):
            return None
        return max(self.mttr.values())

    def render(self) -> str:
        """The ``repro chaos`` report."""
        from repro.analysis.report import Table

        lines = [f"chaos scenario: {self.scenario} (seed {self.seed})"]
        table = Table(["fault", "mttr (s)"])
        for key in sorted(self.mttr):
            value = self.mttr[key]
            table.add_row(key, f"{value:.1f}" if value is not None
                          else "NOT RECOVERED")
        lines.append(table.render())
        if self.final_report is not None:
            violations = self.final_report.violations()
            if violations:
                lines.append("final invariant violations:")
                for name, values in sorted(violations.items()):
                    lines.append(f"  {name}: {', '.join(values)}")
            else:
                lines.append("final invariants: all restored")
        if self.budget_burned:
            worst_key = max(
                sorted(self.budget_burned), key=lambda k: self.budget_burned[k]
            )
            lines.append(
                f"slo impact: {self.slo_breaches} breach window(s), "
                f"worst budget burn {self.budget_burned[worst_key]:.1%} "
                f"({worst_key})"
            )
        if self.data_plane_partitions:
            lines.append(
                f"data plane: {self.data_plane_partitions} partition(s), "
                f"{self.dataplane_ticks} tick(s), "
                f"plan skew {self.plan_skew:.3f}"
            )
        lines.append(f"converged: {'yes' if self.converged else 'NO'}")
        return "\n".join(lines)


def platform_fingerprint(platform) -> str:
    """Canonical JSON of the platform's deterministic end state.

    Checkpoint offsets, per-task progress/state, category heads, and
    fleet counters — everything the data plane writes. Two runs of the
    same seed are byte-identical here if and only if every step
    processed the same bytes in the same order, which makes this the
    sharpest of the five exports the parallel-plane goldens compare.
    """
    import json

    checkpoints = platform.scribe.checkpoints
    jobs = {}
    for job_id in platform.job_store.job_ids():
        jobs[job_id] = {
            partition_id: checkpoints.get(job_id, partition_id)
            for partition_id in checkpoints.partitions_of(job_id)
        }
    managers = {}
    for container_id, manager in sorted(platform.task_managers.items()):
        managers[container_id] = {
            "oom_events": manager.oom_events,
            "reboots": manager.reboot_count,
            "tasks": {
                task_id: {
                    "state": task.state.name,
                    "processed_mb": task.total_processed_mb,
                    "oom_count": task.oom_count,
                }
                for task_id, task in sorted(manager.tasks.items())
            },
        }
    heads = {
        name: [p.head for p in category.partitions]
        for name, category in sorted(platform.scribe.categories.items())
    }
    return json.dumps(
        {
            "now": platform.now,
            "checkpoints": jobs,
            "managers": managers,
            "heads": heads,
        },
        sort_keys=True,
        indent=2,
    )


def build_platform(
    seed: int,
    replication: bool = False,
    replicas=None,
    durable_checkpoints: bool = False,
    hot_standby: bool = False,
    slow_node_detection: bool = False,
    data_plane_partitions: Optional[int] = None,
    data_plane_processes: bool = False,
):
    """The standard chaos deployment (shared with the hypothesis suites).

    4 hosts x 2 containers, 32 shards, scaler + health reporter attached,
    tracing and instrumentation on, three jobs (``chaos/job-0..2``) with
    steady traffic on ``cat-0..2``. With ``replication`` the Job Store
    runs as a 3-replica group over a Scribe command log (required by the
    ``replica-crash``/``repl-log-trim`` fault kinds). The resiliency
    toggles attach the matching data-plane feature (checkpoint plane,
    standby plane, slow-node detector); ``hot_standby`` additionally
    opts every chaos job into passive replicas.
    """
    from repro import JobSpec, PlatformConfig, Turbine
    from repro.workloads import TrafficDriver

    platform = Turbine.create(
        num_hosts=4, seed=seed,
        config=PlatformConfig(
            num_shards=32, containers_per_host=2,
            data_plane_partitions=data_plane_partitions,
            data_plane_processes=data_plane_processes,
        ),
    )
    platform.attach_scaler()
    platform.attach_health_reporter()
    platform.attach_slo()
    platform.attach_chaos()
    if replication:
        platform.attach_replication(replicas=replicas)
    if durable_checkpoints:
        platform.attach_checkpoints()
    if hot_standby:
        platform.attach_standby()
    if slow_node_detection:
        platform.attach_slow_node_detector()
    platform.enable_tracing()
    platform.enable_instrumentation()
    platform.start()
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    rates = {"chaos/job-0": 2.0, "chaos/job-1": 1.0, "chaos/job-2": 1.0}
    for index, (job_id, rate) in enumerate(sorted(rates.items())):
        platform.provision(
            JobSpec(job_id=job_id, input_category=f"cat-{index}",
                    task_count=2, rate_per_thread_mb=2.0,
                    task_count_limit=16, hot_standby=hot_standby),
        )
        driver.add_source(f"cat-{index}", lambda t, r=rate: r)
    driver.start()
    return platform


def run_scenario(
    name_or_scenario,
    seed: int = 0,
    warmup: Seconds = WARMUP,
    replicas: Optional[int] = None,
    durable_checkpoints: Optional[bool] = None,
    hot_standby: Optional[bool] = None,
    slow_node_detection: Optional[bool] = None,
    data_plane_partitions: Optional[int] = None,
    data_plane_processes: bool = False,
) -> ScenarioResult:
    """Run one named (or inline) scenario on a fresh platform.

    ``replicas`` overrides the replica-set size; passing it also forces
    replication on for scenarios that do not require it. The three
    resiliency overrides default to the scenario's own flags; passing
    ``False`` for all of them is the control arm (``repro chaos
    --control``) that shows what the same fault costs without the
    feature.
    """
    scenario: ChaosScenario = (
        name_or_scenario
        if isinstance(name_or_scenario, ChaosScenario)
        else get_scenario(name_or_scenario)
    )

    def _flag(override: Optional[bool], default: bool) -> bool:
        return default if override is None else override

    platform = build_platform(
        seed,
        replication=scenario.replication or replicas is not None,
        replicas=replicas,
        durable_checkpoints=_flag(
            durable_checkpoints, scenario.durable_checkpoints
        ),
        hot_standby=_flag(hot_standby, scenario.hot_standby),
        slow_node_detection=_flag(
            slow_node_detection, scenario.slow_node_detection
        ),
        data_plane_partitions=data_plane_partitions,
        data_plane_processes=data_plane_processes,
    )
    try:
        platform.run_for(seconds=warmup)
        started_at = platform.now
        platform.chaos.schedule(scenario)
        platform.run_for(seconds=scenario.horizon)

        result = ScenarioResult(
            scenario=scenario.name,
            seed=seed,
            started_at=started_at,
            finished_at=platform.now,
            mttr=dict(platform.chaos.mttr),
            final_report=platform.chaos.check(),
        )
        from repro.ops.timeline import IncidentTimeline

        result.timeline_text = IncidentTimeline(platform).render(
            since=started_at
        )
        result.telemetry_jsonl = platform.telemetry.to_jsonl(
            deterministic=True
        )
        result.fingerprint_json = platform_fingerprint(platform)
        result.trace_jsonl = platform.tracer.to_jsonl()
        if platform.data_plane is not None:
            result.data_plane_partitions = platform.data_plane.partitions
            result.plan_skew = platform.data_plane.plan_skew
            result.dataplane_ticks = platform.data_plane.ticks
        if platform.slo is not None:
            slo_report = platform.slo.report(platform.now)
            result.slo_report_json = platform.slo.to_json(platform.now)
            result.budget_burned = {
                f"{row['job']}/{row['slo']}": row["budget_burned"]
                for row in slo_report["slos"]
            }
            result.slo_breaches = len(slo_report["breach_windows"])
        return result
    finally:
        if platform.data_plane is not None:
            platform.data_plane.close()


def mttr_table(names: List[str], seeds: List[int]) -> str:
    """An MTTR-across-seeds table (the EXPERIMENTS.md format)."""
    from repro.analysis.report import Table

    table = Table(["scenario"] + [f"seed {seed}" for seed in seeds])
    for name in names:
        row = [name]
        for seed in seeds:
            result = run_scenario(name, seed=seed)
            value = result.max_mttr
            row.append(f"{value:.1f}" if value is not None else "n/a")
        table.add_row(*row)
    return table.render()
