"""Shared value types and type aliases used across the Turbine layers.

Keeping these in one module avoids circular imports between the job, task,
and resource management packages, which all refer to the same identifiers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Simulation time, in seconds since the start of the run.
Seconds = float

#: Identifier of a job (what to run). Jobs are named by their pipeline.
JobId = str

#: Identifier of a single task of a job, e.g. ``"scuba/ads_metrics:3"``.
TaskId = str

#: Identifier of a shard — the unit of placement and movement.
ShardId = str

#: Identifier of a Turbine container (the parent container on a host).
ContainerId = str

#: Identifier of a physical host in the cluster.
HostId = str


class JobState(enum.Enum):
    """Lifecycle state of a job in the Job Store."""

    #: Provisioned and expected to be running.
    RUNNING = "running"
    #: Deliberately stopped (e.g. by an oncall or the capacity manager).
    STOPPED = "stopped"
    #: Failed synchronization repeatedly; awaiting human investigation.
    QUARANTINED = "quarantined"
    #: Removed; retained only for audit.
    DELETED = "deleted"


class TaskState(enum.Enum):
    """Lifecycle state of a task instance inside a Turbine container."""

    STARTING = "starting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    CRASHED = "crashed"
    #: Passive hot-standby replica: placed and warm (tails the primary's
    #: checkpoint stream) but not processing; promoted to RUNNING when the
    #: primary's container is lost.
    STANDBY = "standby"


class Priority(enum.IntEnum):
    """Business priority of a job; higher values preempt lower ones.

    The Capacity Manager stops lower priority jobs as a last resort to
    unblock higher priority ones (paper section V-F).
    """

    LOW = 0
    NORMAL = 1
    HIGH = 2
    CRITICAL = 3


@dataclass(frozen=True)
class SLO:
    """Service level objective for a streaming job.

    Attributes:
        max_lag_seconds: maximum tolerated end-to-end processing lag. The
            paper's motivating example is a 90-second guarantee.
        recovery_seconds: target time to drain a backlog after an incident
            (used by the scaler's equation 3 to budget recovery CPU).
    """

    max_lag_seconds: float = 90.0
    recovery_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_lag_seconds <= 0:
            raise ValueError("max_lag_seconds must be positive")
        if self.recovery_seconds <= 0:
            raise ValueError("recovery_seconds must be positive")
