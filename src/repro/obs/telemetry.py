"""Control-plane telemetry: counters, gauges, and histograms.

The simulated data plane has its own metric store (``repro.metrics``);
this registry measures the *control plane itself* — how often each timer
fires and how long its callback takes (wall clock), how big sync-round
batches are, what a balancer round costs, how deep the event queue gets.
Wall-clock observations are real ``perf_counter`` readings and therefore
vary run to run; they never feed back into the simulation, so recording
them cannot perturb determinism.

The :class:`EngineInstrumentation` hook is the only piece on the hot
path: the engine dispatches every event through it when (and only when)
``engine.instrumentation`` is set, so an uninstrumented run pays a single
``is None`` check per event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.analysis.report import Table

#: Default histogram bucket upper bounds (unit-agnostic; callers pick the
#: unit per instrument, e.g. milliseconds for wall-clock durations).
DEFAULT_BUCKETS = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
)


def is_deterministic_instrument(name: str) -> bool:
    """Whether an instrument is reproducible across same-seed runs.

    Three families are excluded from deterministic exports:

    * wall-clock measurements — by convention every such instrument name
      ends in ``_ms`` — which are real ``perf_counter`` readings and vary
      run to run;
    * ``cache.*`` instruments, which describe *how* the control plane
      computed a decision (dirty-set sizes, decision-cache hits), not
      what it decided. They legitimately differ between a cached and an
      uncached run of the same seed, while everything else must not;
    * ``metrics.*`` instruments — the streaming metrics engine's
      self-observation (fast-window hits, rollup reads, batch sizes),
      which likewise differs between a streaming and a naive run whose
      every *decision* agrees bit for bit.

    The SLO plane's ``slo.*``/``sli.*`` instruments are the opposite
    case and are kept explicitly: they are derived purely from simulated
    metrics through the (bit-identical) streaming read paths, so they
    belong in deterministic exports — except any wall-clock ``*_ms``
    member of those families, which stays excluded by the first rule.
    """
    if name.startswith(("slo.", "sli.")):
        return not name.endswith("_ms")
    return not (
        name.endswith("_ms")
        or name.startswith("cache.")
        or name.startswith("metrics.")
    )


@dataclass
class Gauge:
    """Last-write-wins value that also tracks its observed extremes."""

    value: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        self.updates += 1


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/min/max, good enough for p50/p95."""

    bounds: tuple = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-boundary estimate of the ``q`` quantile (0 < q < 1)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_value
        return self.max_value


class Telemetry:
    """A named registry of counters, gauges, and histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self, deterministic: bool = False) -> Dict[str, Any]:
        """A plain-dict view of every instrument (sorted names).

        With ``deterministic=True``, instruments that legitimately vary
        between same-seed runs (wall-clock ``*_ms`` readings and
        ``cache.*`` self-observation; see
        :func:`is_deterministic_instrument`) are dropped, so the result
        is byte-for-byte reproducible — including across runs that differ
        only in caching/incremental-computation strategy.
        """
        def keep(name: str) -> bool:
            return not deterministic or is_deterministic_instrument(name)

        return {
            "counters": {
                name: self.counters[name]
                for name in sorted(self.counters)
                if keep(name)
            },
            "gauges": {
                name: {
                    "value": gauge.value,
                    "min": gauge.min_value,
                    "max": gauge.max_value,
                    "updates": gauge.updates,
                }
                for name, gauge in sorted(self.gauges.items())
                if keep(name)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "mean": hist.mean,
                    "min": hist.min_value,
                    "max": hist.max_value,
                    "p50": hist.quantile(0.50),
                    "p95": hist.quantile(0.95),
                }
                for name, hist in sorted(self.histograms.items())
                if keep(name)
            },
        }

    def to_jsonl(self, deterministic: bool = False) -> str:
        """One JSON line per instrument."""
        lines = []
        snapshot = self.snapshot(deterministic=deterministic)
        for name, value in snapshot["counters"].items():
            lines.append(json.dumps(
                {"type": "counter", "name": name, "value": value},
                sort_keys=True,
            ))
        for name, payload in snapshot["gauges"].items():
            lines.append(json.dumps(
                {"type": "gauge", "name": name, **payload}, sort_keys=True,
            ))
        for name, payload in snapshot["histograms"].items():
            lines.append(json.dumps(
                {"type": "histogram", "name": name, **payload},
                sort_keys=True,
            ))
        return "".join(line + "\n" for line in lines)

    def write_jsonl(self, path, deterministic: bool = False) -> None:
        from pathlib import Path

        Path(path).write_text(
            self.to_jsonl(deterministic=deterministic), encoding="utf-8"
        )

    def render(self, prefix: str = "") -> str:
        """A fixed-width table of every instrument matching ``prefix``."""
        table = Table(["instrument", "kind", "value"])
        for name in sorted(self.counters):
            if name.startswith(prefix):
                table.add_row(name, "counter", f"{self.counters[name]:g}")
        for name, gauge in sorted(self.gauges.items()):
            if name.startswith(prefix):
                table.add_row(
                    name, "gauge",
                    f"{gauge.value:g} (max {gauge.max_value:g})",
                )
        for name, hist in sorted(self.histograms.items()):
            if name.startswith(prefix):
                table.add_row(
                    name, "histogram",
                    f"n={hist.count} mean={hist.mean:.3f} "
                    f"p95={hist.quantile(0.95):.3f} max={hist.max_value:.3f}",
                )
        return table.render()

    def __repr__(self) -> str:
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


class _NullTelemetry(Telemetry):
    """Shared disabled registry; see :data:`NULL_TELEMETRY`."""

    def __init__(self) -> None:
        super().__init__(enabled=False)


#: Shared disabled registry: the default for every instrumented component.
NULL_TELEMETRY = _NullTelemetry()


class EngineInstrumentation:
    """Per-event engine hook: timer firing stats and callback durations.

    Install with ``engine.instrumentation = EngineInstrumentation(tel)``
    (or :meth:`Turbine.enable_instrumentation`). For every delivered event
    it records the total event count, the event-queue depth, and — when
    the callback is a named :class:`~repro.sim.engine.Timer` firing — a
    per-timer fire counter and wall-clock duration histogram.
    """

    def __init__(self, telemetry: Telemetry) -> None:
        self.telemetry = telemetry

    def record_event(self, engine, callback) -> None:
        """Dispatch one event, timing the callback (called by the engine)."""
        start = perf_counter()
        try:
            callback()
        finally:
            wall_ms = (perf_counter() - start) * 1000.0
            telemetry = self.telemetry
            telemetry.inc("engine.events")
            # Heap length (O(1)) rather than the live count (O(n)); the
            # difference is lazily-cancelled events, which is itself
            # interesting for queue health.
            telemetry.set_gauge(
                "engine.queue_depth", float(len(engine.queue._heap))
            )
            name = self._timer_name(callback)
            if name:
                telemetry.inc(f"timer.{name}.fires")
                telemetry.observe(f"timer.{name}.wall_ms", wall_ms)
            else:
                telemetry.observe("engine.callback_wall_ms", wall_ms)

    @staticmethod
    def _timer_name(callback) -> Optional[str]:
        from repro.sim.engine import Timer

        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Timer) and owner.name:
            return owner.name
        return None
