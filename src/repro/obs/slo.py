"""Declarative SLOs: error budgets and multi-window burn-rate alerts.

An :class:`SloSpec` turns an SLI (:mod:`repro.obs.sli`) into an
objective: "lag under the job's declared bound for 99% of minutes over
the trailing 6 hours". The :class:`SloTracker` evaluates every spec for
every job on a fixed cadence and keeps the bookkeeping the Google SRE
playbook asks for:

* **good/bad samples** — each evaluation lands a 0/1 ``slo_bad`` sample
  in a private :class:`~repro.metrics.store.MetricStore`, so every burn
  rate and budget read below is a streaming ``average_over`` (rolling
  :class:`~repro.metrics.window.WindowAggregate` state, RollupTier
  buckets on long compliance windows) — never a rescan, and never
  perturbed by a chaos ``metric-gap`` fault against the platform store;
* **burn rate** — bad fraction over a window divided by the budget
  fraction ``1 - target``. Burn 1.0 spends the budget exactly at the
  compliance horizon; 14.4 spends a 30-day budget in 2 days;
* **multi-window multi-burn alerts** — a rule fires only when both its
  long and short windows burn above the threshold (the long window for
  significance, the short one to stop alerting once the fire is out);
  fired alerts reuse the :class:`repro.ops.health.Alert` shape and a
  :class:`~repro.obs.bounded.BoundedList`, the platform's one alert
  pipeline;
* **breach windows** — contiguous bad intervals per (job, SLO), exported
  with the error budget burned so a chaos drill can say "this fault cost
  4.1 minutes of breach and 12% of the lag budget".

Everything is driven by the simulation clock and the deterministic
metric plane: same seed, byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.metrics.store import MetricStore
from repro.obs.bounded import BoundedList
from repro.obs.sli import SLI_NAMES, SliEvaluator
from repro.types import JobId, Seconds

#: Default evaluation cadence: one judgement per simulated minute, the
#: same cadence the stats collector lands the underlying metrics at.
EVAL_INTERVAL: Seconds = 60.0

#: Retained breach windows / alerts (same cap as health reports).
DEFAULT_RETENTION = 8_640


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over one SLI.

    ``threshold`` is the good/bad boundary for the SLI value;
    ``comparator`` is which side is good (``"<="``: values at or under
    the threshold are good). A ``threshold`` of ``None`` means per-job:
    the job's own declared lag objective is used (only meaningful for
    the ``lag_seconds`` SLI).
    """

    name: str
    sli: str
    target: float                 # fraction of good evaluations, e.g. 0.99
    compliance_window: Seconds    # error-budget horizon, e.g. 6 h
    threshold: Optional[float] = None
    comparator: str = "<="
    runbook: str = ""

    def __post_init__(self) -> None:
        if self.sli not in SLI_NAMES:
            raise ValueError(f"unknown SLI {self.sli!r}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1): {self.target}")
        if self.compliance_window <= 0:
            raise ValueError("compliance window must be positive")
        if self.comparator not in ("<=", ">="):
            raise ValueError(f"comparator must be '<=' or '>=': {self.comparator!r}")

    @property
    def budget_fraction(self) -> float:
        """The error budget: the tolerated bad fraction, ``1 - target``."""
        return 1.0 - self.target

    def is_good(self, value: float, threshold: float) -> bool:
        if self.comparator == "<=":
            return value <= threshold
        return value >= threshold


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert condition."""

    long_window: Seconds
    short_window: Seconds
    burn_threshold: float
    severity: str  # "page" | "warn"

    def __post_init__(self) -> None:
        if self.short_window >= self.long_window:
            raise ValueError("short window must be shorter than long window")
        if self.burn_threshold <= 0:
            raise ValueError("burn threshold must be positive")


#: The canonical Google-SRE pairing: a fast page (14.4× burn sustained
#: over 1 h, still burning over 5 min) and a slow ticket (6× over 6 h,
#: still burning over 30 min).
DEFAULT_BURN_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule(3600.0, 300.0, 14.4, "page"),
    BurnRateRule(21600.0, 1800.0, 6.0, "warn"),
)


def default_slo_specs() -> Tuple[SloSpec, ...]:
    """The fleet's default objectives, one per defined SLI."""
    return (
        SloSpec(
            name="lag", sli="lag_seconds", target=0.99,
            compliance_window=6 * 3600.0, threshold=None,
            runbook="check Auto Scaler actions for the job; if fleet-wide, "
                    "suspect a shared dependency and do not mass-scale",
        ),
        SloSpec(
            name="freshness", sli="freshness_seconds", target=0.99,
            compliance_window=6 * 3600.0, threshold=180.0,
            runbook="metrics are stale: check metric-store ingestion and "
                    "the job stats collector before trusting any dashboard",
        ),
        SloSpec(
            name="availability", sli="availability", target=0.999,
            compliance_window=6 * 3600.0, threshold=0.9, comparator=">=",
            runbook="tasks missing: check Shard Manager failovers, host "
                    "availability, and recent sync plans",
        ),
        SloSpec(
            name="oom", sli="oom_rate", target=0.999,
            compliance_window=6 * 3600.0, threshold=0.0,
            runbook="repeated OOM kills: check the vertical scaler's memory "
                    "headroom and the job's recent input growth",
        ),
        SloSpec(
            name="recovery", sli="task.recovery_lag", target=0.99,
            compliance_window=6 * 3600.0, threshold=120.0,
            runbook="slow task recovery: check checkpoint-plane restores "
                    "(cold restarts re-read the whole backlog), whether the "
                    "job should opt into hot standbys, and the Shard "
                    "Manager's failover backlog",
        ),
    )


@dataclass
class BreachWindow:
    """One contiguous bad interval for one (job, SLO)."""

    job_id: JobId
    slo: str
    start: Seconds
    end: Optional[Seconds] = None  # None while the breach is still open

    @property
    def open(self) -> bool:
        return self.end is None

    def duration(self, now: Seconds) -> Seconds:
        return (now if self.end is None else self.end) - self.start

    def to_dict(self, now: Seconds) -> Dict[str, object]:
        return {
            "job": self.job_id,
            "slo": self.slo,
            "start": round(self.start, 3),
            "end": None if self.end is None else round(self.end, 3),
            "duration": round(self.duration(now), 3),
        }


# ----------------------------------------------------------------------
# Burn-rate math (shared with the hot-path benchmark)
# ----------------------------------------------------------------------
def bad_fraction(series, window: Seconds, now: Seconds) -> float:
    """Mean of the 0/1 bad samples over the trailing window (0 if empty).

    ``series`` is a bookkeeping :class:`~repro.metrics.series.TimeSeries`
    of 0/1 samples; with streaming on this is the O(1) rolling-window
    path, the read the SLO plane leans on fleet-wide every minute.
    """
    mean = series.average_over(window, now)
    return 0.0 if mean is None else mean


def burn_rate(series, window: Seconds, now: Seconds, target: float) -> float:
    """How many times faster than sustainable the budget is burning."""
    return bad_fraction(series, window, now) / (1.0 - target)


class SloTracker:
    """Evaluates every SLO for every job and accounts the error budgets."""

    def __init__(
        self,
        engine,
        sli: SliEvaluator,
        specs: Optional[Tuple[SloSpec, ...]] = None,
        rules: Tuple[BurnRateRule, ...] = DEFAULT_BURN_RULES,
        interval: Seconds = EVAL_INTERVAL,
        telemetry=None,
        streaming: bool = True,
        retention: int = DEFAULT_RETENTION,
    ) -> None:
        from repro.ops.health import Alert  # shared alert shape

        self._alert_cls = Alert
        self._engine = engine
        self._sli = sli
        self.specs: Tuple[SloSpec, ...] = (
            specs if specs is not None else default_slo_specs()
        )
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.rules = rules
        self._interval = interval
        self._telemetry = telemetry
        #: Private bookkeeping store for the 0/1 bad samples. Separate
        #: from the platform store on purpose: a chaos ``metric-gap``
        #: fault must not silently erase the very breach it causes, and
        #: budget accounting must survive any platform-store outage.
        horizon = max(spec.compliance_window for spec in self.specs)
        self._store = MetricStore(
            default_retention=horizon * 1.25, streaming=streaming
        )
        self.alerts: List = BoundedList(maxlen=retention)
        self.breaches: List[BreachWindow] = BoundedList(maxlen=retention)
        #: (job, slo) -> open breach (also present in ``breaches``).
        self._open: Dict[Tuple[JobId, str], BreachWindow] = {}
        #: (job, slo, rule index) currently above threshold (edge trigger).
        self._firing: Dict[Tuple[JobId, str, int], bool] = {}
        self.evaluations = 0
        self._timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer is None:
            self._timer = self._engine.every(
                self._interval, self.evaluate_once, name="slo-tracker"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # One evaluation round
    # ------------------------------------------------------------------
    def evaluate_once(self) -> None:
        """Judge every (job, SLO) pair once and update all bookkeeping.

        A Job Store outage makes the fleet unenumerable; the round is
        skipped whole (no samples land), which reads as an accounting
        gap — the honest representation of "nobody could tell".
        """
        from repro.errors import DegradedModeError

        now = self._engine.now
        try:
            job_ids = self._sli.job_ids()
        except DegradedModeError:
            return
        self.evaluations += 1
        batch: List[Tuple[str, str, float]] = []
        for job_id in job_ids:
            try:
                if not self._sli.running(job_id):
                    # Quarantined/stopped jobs stop accruing samples: the
                    # quarantine itself is already alerted by the syncer.
                    continue
                for spec in self.specs:
                    verdict = self._judge(job_id, spec, now)
                    if verdict is None:
                        continue
                    batch.append((job_id, f"slo_bad.{spec.name}", verdict))
                    self._track_breach(job_id, spec, bad=verdict > 0.0, now=now)
            except DegradedModeError:
                continue
        if batch:
            self._store.record_many(now, batch)
        self._check_burn_rates(now)
        self._publish_telemetry(now)

    def _judge(self, job_id: JobId, spec: SloSpec, now: Seconds) -> Optional[float]:
        """1.0 bad / 0.0 good, or ``None`` when the SLI has no data yet."""
        value = self._sli.job_sli(job_id, spec.sli, now)
        if value is None:
            return None
        threshold = (
            spec.threshold if spec.threshold is not None
            else self._sli.lag_slo_seconds(job_id)
        )
        return 0.0 if spec.is_good(value, threshold) else 1.0

    def _track_breach(
        self, job_id: JobId, spec: SloSpec, bad: bool, now: Seconds
    ) -> None:
        key = (job_id, spec.name)
        open_breach = self._open.get(key)
        if bad and open_breach is None:
            breach = BreachWindow(job_id=job_id, slo=spec.name, start=now)
            self._open[key] = breach
            self.breaches.append(breach)
            if self._telemetry is not None:
                self._telemetry.inc("slo.breaches")
        elif not bad and open_breach is not None:
            open_breach.end = now
            del self._open[key]

    # ------------------------------------------------------------------
    # Burn rates and alerting
    # ------------------------------------------------------------------
    def _series(self, job_id: JobId, spec: SloSpec):
        return self._store.series(job_id, f"slo_bad.{spec.name}")

    def burn(self, job_id: JobId, slo: str, window: Seconds) -> float:
        """The (job, SLO) burn rate over a trailing window, now."""
        spec = self.spec(slo)
        return burn_rate(
            self._series(job_id, spec), window, self._engine.now, spec.target
        )

    def budget_burned(self, job_id: JobId, slo: str, now: Optional[Seconds] = None) -> float:
        """Fraction of the error budget consumed over the compliance window.

        1.0 means the budget is gone — the SLO is breached for the
        current horizon; values above 1.0 measure how far past it burned.
        """
        spec = self.spec(slo)
        if now is None:
            now = self._engine.now
        frac = bad_fraction(self._series(job_id, spec), spec.compliance_window, now)
        return frac / spec.budget_fraction

    def spec(self, name: str) -> SloSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown SLO {name!r}")

    def _check_burn_rates(self, now: Seconds) -> None:
        for entity in self._known_entities():
            for spec in self.specs:
                series = self._store._series.get(
                    (entity, f"slo_bad.{spec.name}")
                )
                if series is None:
                    continue
                for index, rule in enumerate(self.rules):
                    key = (entity, spec.name, index)
                    long_burn = burn_rate(
                        series, rule.long_window, now, spec.target
                    )
                    short_burn = burn_rate(
                        series, rule.short_window, now, spec.target
                    )
                    firing = (
                        long_burn >= rule.burn_threshold
                        and short_burn >= rule.burn_threshold
                    )
                    if firing and not self._firing.get(key):
                        self._alert(entity, spec, rule, long_burn, now)
                    self._firing[key] = firing

    def _known_entities(self) -> List[str]:
        entities = set()
        for spec in self.specs:
            entities.update(self._store.entities_with(f"slo_bad.{spec.name}"))
        return sorted(entities)

    def _alert(
        self, job_id: JobId, spec: SloSpec, rule: BurnRateRule,
        long_burn: float, now: Seconds,
    ) -> None:
        hours = rule.long_window / 3600.0
        what = (
            f"{job_id}: {spec.name} SLO burning {long_burn:.1f}x budget "
            f"over {hours:g}h (threshold {rule.burn_threshold:g}x)"
        )
        self.alerts.append(
            self._alert_cls(now, rule.severity, what, spec.runbook)
        )
        if self._telemetry is not None:
            self._telemetry.inc(f"slo.alerts.{rule.severity}")

    # ------------------------------------------------------------------
    # Telemetry (deterministic: derived purely from simulated metrics)
    # ------------------------------------------------------------------
    def _publish_telemetry(self, now: Seconds) -> None:
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.inc("slo.evals")
        counts = self._fleet_counts_or_none(now)
        if counts is not None:
            telemetry.set_gauge("sli.fleet.jobs_total", float(counts.jobs_total))
            telemetry.set_gauge("sli.fleet.jobs_lagging", float(counts.jobs_lagging))
            telemetry.set_gauge(
                "sli.fleet.jobs_quarantined", float(counts.jobs_quarantined)
            )
            telemetry.set_gauge("sli.fleet.jobs_with_oom", float(counts.jobs_with_oom))
        for spec in self.specs:
            worst = 0.0
            for entity in self._store.entities_with(f"slo_bad.{spec.name}"):
                worst = max(worst, self.budget_burned(entity, spec.name, now))
            telemetry.set_gauge(f"slo.{spec.name}.budget_burned_max", round(worst, 9))
        telemetry.set_gauge("slo.breach_windows", float(len(self.breaches)))

    def _fleet_counts_or_none(self, now: Seconds):
        from repro.errors import DegradedModeError

        try:
            return self._sli.fleet_counts(now)
        except DegradedModeError:
            return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, now: Optional[Seconds] = None) -> Dict[str, object]:
        """The full SLO state as a plain dict (deterministic ordering)."""
        if now is None:
            now = self._engine.now
        rows = []
        for job_id in self._known_entities():
            for spec in self.specs:
                series = self._store._series.get(
                    (job_id, f"slo_bad.{spec.name}")
                )
                if series is None:
                    continue
                burned = self.budget_burned(job_id, spec.name, now)
                rows.append({
                    "job": job_id,
                    "slo": spec.name,
                    "sli": spec.sli,
                    "target": spec.target,
                    "window": spec.compliance_window,
                    "bad_fraction": round(
                        bad_fraction(series, spec.compliance_window, now), 9
                    ),
                    "budget_burned": round(burned, 9),
                    "burn_1h": round(
                        burn_rate(series, 3600.0, now, spec.target), 9
                    ),
                    "burn_6h": round(
                        burn_rate(series, 21600.0, now, spec.target), 9
                    ),
                    "status": (
                        "breached" if burned >= 1.0
                        else "burning" if any(
                            self._firing.get((job_id, spec.name, index))
                            for index in range(len(self.rules))
                        )
                        else "ok"
                    ),
                })
        return {
            "time": round(now, 3),
            "evaluations": self.evaluations,
            "slos": rows,
            "breach_windows": [
                breach.to_dict(now) for breach in self.breaches
            ],
            "alerts": [
                {
                    "time": round(alert.time, 3),
                    "severity": alert.severity,
                    "what": alert.what,
                    "runbook": alert.runbook,
                }
                for alert in self.alerts
            ],
        }

    def to_json(self, now: Optional[Seconds] = None) -> str:
        """The report as canonical JSON (byte-identical per seed)."""
        return json.dumps(self.report(now), sort_keys=True, indent=2) + "\n"

    def render(self, now: Optional[Seconds] = None) -> str:
        """The ``repro slo`` fleet compliance table."""
        from repro.analysis.report import Table

        report = self.report(now)
        table = Table(
            ["job", "slo", "target", "budget burned", "burn 1h", "status"]
        )
        for row in report["slos"]:
            table.add_row(
                row["job"], row["slo"], f"{row['target']:.3f}",
                f"{row['budget_burned']:.1%}", f"{row['burn_1h']:.1f}x",
                row["status"],
            )
        lines = [table.render()]
        open_breaches = [b for b in self.breaches if b.open]
        lines.append(
            f"breach windows: {len(self.breaches)} "
            f"({len(open_breaches)} open)  alerts: {len(self.alerts)}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SloTracker(specs={len(self.specs)}, evals={self.evaluations}, "
            f"breaches={len(self.breaches)}, alerts={len(self.alerts)})"
        )
