"""Critical-path analysis over causal decision traces.

A trace is a tree of :class:`~repro.obs.trace.TraceEvent` spans (parent →
child across layer boundaries). Each edge carries an implied duration —
the simulated time between the parent decision and the child decision it
caused — so the *critical path* of a trace is the root→leaf chain with
the largest total elapsed time: the sequence of hand-offs that made the
end-to-end reaction as slow as it was.

Two views are derived:

* the longest path itself, step by step with per-hop latency (``+Δt``);
* per-layer edge costs aggregated across every trace that mentions the
  job (``detector→auto-scaler``, ``job-service→state-syncer``, …), which
  answers the operator question "which layer of
  detector→scaler→store→syncer→managers cost the most".

Pure functions over exported or in-memory events; no platform access,
so the analysis works identically on a live tracer and on a JSONL file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import TraceEvent, chain_from_events
from repro.types import Seconds


@dataclass(frozen=True)
class PathStep:
    """One hop on a critical path."""

    event: TraceEvent
    elapsed: Seconds  # time since the previous step (0 for the root)


@dataclass(frozen=True)
class CriticalPath:
    """The longest root→leaf chain of one trace."""

    trace_id: str
    steps: Tuple[PathStep, ...]

    @property
    def total(self) -> Seconds:
        """End-to-end elapsed time along the path."""
        return sum(step.elapsed for step in self.steps)

    @property
    def edges(self) -> List[Tuple[str, Seconds]]:
        """``("<parent-source>-><child-source>", Δt)`` per hop."""
        labels = []
        for previous, step in zip(self.steps, self.steps[1:]):
            labels.append(
                (f"{previous.event.source}->{step.event.source}", step.elapsed)
            )
        return labels


def critical_paths(
    events: Sequence[TraceEvent], job_id: Optional[str] = None
) -> List[CriticalPath]:
    """The critical path of every trace in ``events``.

    With a ``job_id``, only traces in the job's causal closure (the same
    selection :meth:`~repro.obs.trace.Tracer.chain` makes) are analyzed.
    Traces arrive and are returned in first-seen order, so the output is
    deterministic for a deterministic event stream.
    """
    if job_id is not None:
        events = chain_from_events(list(events), job_id)
    by_trace: Dict[str, List[TraceEvent]] = {}
    for event in events:
        by_trace.setdefault(event.trace_id, []).append(event)
    return [
        _longest_path(trace_id, trace_events)
    for trace_id, trace_events in by_trace.items()]


def _longest_path(trace_id: str, events: List[TraceEvent]) -> CriticalPath:
    """DP over the span tree: longest elapsed-time chain from any root.

    Orphan spans (parent not in the selection — e.g. a filtered export)
    are treated as roots of their own subtree, so partial traces still
    analyze cleanly.
    """
    by_span = {event.span_id: event for event in events}
    children: Dict[Optional[str], List[TraceEvent]] = {}
    roots: List[TraceEvent] = []
    for event in events:
        if event.parent_id is None or event.parent_id not in by_span:
            roots.append(event)
        else:
            children.setdefault(event.parent_id, []).append(event)

    #: span_id -> (total elapsed of best suffix, steps of best suffix)
    best: Dict[str, Tuple[Seconds, Tuple[PathStep, ...]]] = {}

    def solve(event: TraceEvent) -> Tuple[Seconds, Tuple[PathStep, ...]]:
        cached = best.get(event.span_id)
        if cached is not None:
            return cached
        kids = children.get(event.span_id, ())
        winner: Tuple[Seconds, Tuple[PathStep, ...]] = (0.0, ())
        for kid in kids:
            elapsed = max(0.0, kid.time - event.time)
            suffix_total, suffix_steps = solve(kid)
            candidate = (
                elapsed + suffix_total,
                (PathStep(kid, elapsed),) + suffix_steps,
            )
            if candidate[0] > winner[0]:
                winner = candidate
        best[event.span_id] = winner
        return winner

    top: Tuple[Seconds, Tuple[PathStep, ...]] = (-1.0, ())
    top_root: Optional[TraceEvent] = None
    for root in roots:
        total, steps = solve(root)
        if total > top[0]:
            top = (total, steps)
            top_root = root
    assert top_root is not None  # a trace always has at least one root
    return CriticalPath(
        trace_id=trace_id,
        steps=(PathStep(top_root, 0.0),) + top[1],
    )


def layer_costs(
    paths: Sequence[CriticalPath],
) -> List[Tuple[str, Seconds, int]]:
    """Aggregate critical-path hops by layer edge.

    Returns ``(edge label, total seconds, hop count)`` rows sorted by
    total cost descending (ties broken by label for determinism).
    """
    totals: Dict[str, Seconds] = {}
    counts: Dict[str, int] = {}
    for path in paths:
        for label, elapsed in path.edges:
            totals[label] = totals.get(label, 0.0) + elapsed
            counts[label] = counts.get(label, 0) + 1
    return sorted(
        ((label, totals[label], counts[label]) for label in totals),
        key=lambda row: (-row[1], row[0]),
    )


def render_critical_path(
    events: Sequence[TraceEvent], job_id: str
) -> str:
    """The ``repro trace <job> --critical-path`` report."""
    from repro.analysis.report import Table

    paths = critical_paths(events, job_id)
    if not paths:
        return f"(no trace events recorded for {job_id})"
    slowest = max(paths, key=lambda path: path.total)
    lines = [
        f"slowest causal chain for {job_id}: trace {slowest.trace_id} "
        f"({slowest.total:.1f}s end to end, {len(slowest.steps)} spans)"
    ]
    for step in slowest.steps:
        event = step.event
        job = f" job={event.job_id}" if event.job_id else ""
        lines.append(
            f"  +{step.elapsed:8.1f}s {event.source:14s} "
            f"{event.kind:20s}{job} {event.detail_str()}".rstrip()
        )
    lines.append("")
    lines.append(f"layer costs across {len(paths)} trace(s):")
    table = Table(["edge", "total (s)", "hops", "mean (s)"])
    for label, total, count in layer_costs(paths):
        table.add_row(label, f"{total:.1f}", count, f"{total / count:.1f}")
    lines.append(table.render())
    return "\n".join(lines)
