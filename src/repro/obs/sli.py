"""Service-level indicators derived from the streaming metric store.

An SLI is a *judged* signal: not "what is the lag" but "is the lag the
kind of number the fleet promised its users". This module derives the
per-job indicators the SLO plane (:mod:`repro.obs.slo`) and the health
reporter (:mod:`repro.ops.health`) consume, and it is the only place
those judgements are computed — the health reporter's fleet percentages
are sums of the per-job verdicts here, never a second inline aggregation.

Every read goes through the PR 5 streaming paths (``latest``,
``average_over`` / ``count_between`` — WindowAggregate and RollupTier
under the hood); nothing here rescans raw samples, so evaluating the
whole fleet once a minute stays O(jobs), not O(jobs × samples).

The defined per-job SLIs:

* ``lag_seconds`` — the newest ``time_lagged`` sample: how far behind
  real time the job's processing is (paper equation 1);
* ``freshness_seconds`` — age of the newest ``processing_rate_mb``
  sample: how stale the job's *measurements* are. A metric-store outage
  shows up here (gray degradation: the job may be fine, but nobody can
  tell);
* ``availability`` — running tasks / expected tasks, capped at 1.0;
* ``oom_rate`` — OOM events in the trailing
  :data:`OOM_WINDOW` (restart/quarantine pressure).

Evaluating an SLI draws no randomness and schedules no events, so SLI
values are byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.store import MetricStore
from repro.types import JobId, JobState, Seconds

#: The trailing window in which an OOM event counts against a job —
#: the same 10 minutes the health reporter has always used.
OOM_WINDOW: Seconds = 600.0

#: Per-job lag objective when the job's config does not declare one.
DEFAULT_LAG_SLO: Seconds = 90.0

#: Trailing window in which a recovery-lag sample judges a job; outside
#: it the SLI reads "no data" again, so one bad recovery last week does
#: not burn budget forever.
RECOVERY_WINDOW: Seconds = 600.0

#: The per-job SLI names :meth:`SliEvaluator.job_sli` can evaluate.
SLI_NAMES = (
    "lag_seconds",
    "freshness_seconds",
    "availability",
    "oom_rate",
    "task.recovery_lag",
)


@dataclass(frozen=True)
class FleetCounts:
    """Fleet-level SLI aggregation (the health report's input)."""

    jobs_total: int = 0
    jobs_lagging: int = 0
    jobs_quarantined: int = 0
    jobs_with_oom: int = 0

    @property
    def pct_lagging(self) -> float:
        return self.jobs_lagging / self.jobs_total if self.jobs_total else 0.0

    @property
    def pct_unhealthy(self) -> float:
        if not self.jobs_total:
            return 0.0
        return (self.jobs_quarantined + self.jobs_with_oom) / self.jobs_total


class SliEvaluator:
    """Derives per-job and fleet SLIs from the live services.

    Holds only references (job service + metric store); every call
    evaluates against the store's current state. A Job Store outage
    propagates as :class:`~repro.errors.DegradedModeError` from the
    config reads — callers (health reporter, SLO tracker) decide whether
    to skip the round or degrade, exactly as they did before this layer
    existed.
    """

    def __init__(self, job_service, metrics: MetricStore) -> None:
        self._service = job_service
        self._metrics = metrics
        #: Evaluation counter (introspection; deterministic).
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Job enumeration and objectives
    # ------------------------------------------------------------------
    def job_ids(self) -> List[JobId]:
        """All managed jobs (sorted; raises while the store is down)."""
        return self._service.job_ids()

    def lag_slo_seconds(self, job_id: JobId) -> float:
        """The job's declared lag objective (or :data:`DEFAULT_LAG_SLO`)."""
        return self._service.expected_config(job_id).get("slo", {}).get(
            "max_lag_seconds", DEFAULT_LAG_SLO
        )

    def quarantined(self, job_id: JobId) -> bool:
        return self._service.store.state_of(job_id) == JobState.QUARANTINED

    def running(self, job_id: JobId) -> bool:
        return self._service.store.state_of(job_id) == JobState.RUNNING

    # ------------------------------------------------------------------
    # Per-job SLIs
    # ------------------------------------------------------------------
    def lag_seconds(self, job_id: JobId) -> Optional[float]:
        """Newest ``time_lagged`` sample, or ``None`` before first stats."""
        return self._metrics.latest(job_id, "time_lagged")

    def freshness_seconds(self, job_id: JobId, now: Seconds) -> Optional[float]:
        """Age of the newest processing-rate sample (measurement staleness)."""
        series = self._metrics.series(job_id, "processing_rate_mb")
        newest = series.latest_time()
        return None if newest is None else max(0.0, now - newest)

    def availability(self, job_id: JobId) -> Optional[float]:
        """Running tasks over expected tasks, in ``[0, 1]``.

        ``None`` before the first stats round (no ``running_tasks``
        sample yet) or when the expected task count is not positive.
        """
        running = self._metrics.latest(job_id, "running_tasks")
        if running is None:
            return None
        expected = self._service.expected_config(job_id).get("task_count", 0)
        if not expected or expected <= 0:
            return None
        return min(1.0, running / float(expected))

    def oom_rate(self, job_id: JobId, now: Seconds) -> float:
        """OOM events in the trailing :data:`OOM_WINDOW` (count)."""
        series = self._metrics.series(job_id, "oom_events")
        return float(series.count_between(now - OOM_WINDOW, now))

    def recovery_lag(self, job_id: JobId, now: Seconds) -> Optional[float]:
        """Newest recovery lag, in seconds — or ``None`` without a recent one.

        A ``recovery_lag`` sample is recorded by the Task Managers when a
        failed task posts its first post-recovery progress (an OOM restart
        finishing its state restore, or a promoted standby's first
        processed byte). Only samples inside :data:`RECOVERY_WINDOW`
        judge the job, all through streaming reads.
        """
        series = self._metrics.series(job_id, "recovery_lag")
        if series.count_between(now - RECOVERY_WINDOW, now) == 0:
            return None
        return self._metrics.latest(job_id, "recovery_lag")

    def job_sli(self, job_id: JobId, name: str, now: Seconds) -> Optional[float]:
        """Evaluate one named SLI for one job (``None`` = no data yet)."""
        self.evaluations += 1
        if name == "lag_seconds":
            return self.lag_seconds(job_id)
        if name == "freshness_seconds":
            return self.freshness_seconds(job_id, now)
        if name == "availability":
            return self.availability(job_id)
        if name == "oom_rate":
            return self.oom_rate(job_id, now)
        if name == "task.recovery_lag":
            return self.recovery_lag(job_id, now)
        raise ValueError(f"unknown SLI {name!r} (known: {', '.join(SLI_NAMES)})")

    # ------------------------------------------------------------------
    # Fleet aggregation (the health reporter's percentages)
    # ------------------------------------------------------------------
    def fleet_counts(self, now: Seconds) -> FleetCounts:
        """Count lagging / quarantined / OOMing jobs across the fleet.

        Semantics mirror the original health-report loop exactly: a job
        counts as lagging when its newest lag sample exceeds its own
        declared objective, and only RUNNING jobs are judged for lag and
        OOM (a quarantined job is already counted as quarantined).
        """
        job_ids = self.job_ids()
        lagging = quarantined = with_oom = 0
        for job_id in job_ids:
            if self.quarantined(job_id):
                quarantined += 1
            if not self.running(job_id):
                continue
            lag = self.lag_seconds(job_id) or 0.0
            if lag > self.lag_slo_seconds(job_id):
                lagging += 1
            if self.oom_rate(job_id, now) > 0:
                with_oom += 1
        return FleetCounts(
            jobs_total=len(job_ids),
            jobs_lagging=lagging,
            jobs_quarantined=quarantined,
            jobs_with_oom=with_oom,
        )

    def __repr__(self) -> str:
        return f"SliEvaluator(evaluations={self.evaluations})"
