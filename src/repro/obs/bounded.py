"""A list with bounded retention, for in-memory audit trails.

The platform keeps append-only records of what happened — health reports,
oncall alerts, failover events, capacity actions, sync-round reports. A
simulation that runs for months of simulated time would grow those without
limit, so each is bounded: when the list exceeds its cap the oldest chunk
is evicted. Eviction happens in chunks (10 % of the cap) so the O(n)
front-removal cost of a Python list amortizes to O(1) per append.

This is a real ``list`` subclass (not a deque) so existing consumers —
equality against plain lists, slicing, ``[-1]`` — keep working.
"""

from __future__ import annotations

from typing import Iterable, Optional, TypeVar

T = TypeVar("T")


class BoundedList(list):
    """A ``list`` that evicts its oldest entries beyond ``maxlen``."""

    def __init__(
        self, iterable: Iterable = (), maxlen: Optional[int] = None
    ) -> None:
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive: {maxlen}")
        super().__init__(iterable)
        self.maxlen = maxlen
        self._trim(exact=True)

    def append(self, item) -> None:
        super().append(item)
        self._trim()

    def extend(self, iterable) -> None:
        super().extend(iterable)
        self._trim()

    def _trim(self, exact: bool = False) -> None:
        if self.maxlen is None or len(self) <= self.maxlen:
            return
        # Evict down past the cap by a chunk, so eviction is amortized;
        # ``exact`` trims to exactly the cap (used at construction).
        slack = 0 if exact else max(1, self.maxlen // 10)
        target = max(0, self.maxlen - slack)
        del self[: len(self) - target]
