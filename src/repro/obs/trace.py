"""Causal decision traces for the control plane.

Every consequential control-plane decision — a detector symptom, a scaler
action, a Job Store write, a State Syncer plan, a shard movement — records
a :class:`TraceEvent`. Events are linked parent → child across layer
boundaries through small hand-off slots on the tracer (a symptom is the
parent of the scaling action it triggered; the resulting config write is
the parent of the sync plan that realizes it; the sync plan is the parent
of the task starts it causes), so ``chain(job_id)`` reconstructs the full
"why" for any configuration change after the fact.

Design constraints, in order:

* **Zero cost when disabled.** Every recording call starts with one
  attribute check and returns ``None``. The default tracer on every
  component is the shared disabled :data:`NULL_TRACER`.
* **No perturbation.** The tracer draws no randomness and schedules no
  simulation events; ids come from a plain counter and time from the
  simulated clock, so a traced run is byte-for-byte the same simulation
  as an untraced one and trace exports are deterministic across
  same-seed runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.bounded import BoundedList

#: Default bound on retained events; old events are evicted first. Large
#: enough for any benchmark horizon, small enough to bound a soak test.
DEFAULT_MAX_EVENTS = 200_000

#: Hand-off slot names (documented here so the layers agree on them).
SLOT_SYMPTOM = "symptom"        # detector -> scaler
SLOT_WRITE_ORIGIN = "write"     # scaler/oncall -> Job Service
SLOT_CONFIG = "config"          # Job Service -> State Syncer
SLOT_SYNC = "sync"              # State Syncer -> actuator / Task Managers


@dataclass(frozen=True)
class TraceEvent:
    """One recorded decision, linked into a causal trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    time: float
    source: str     # which service decided ("detector", "state-syncer", ...)
    kind: str       # short machine-readable tag ("symptom", "sync-plan", ...)
    job_id: Optional[str] = None
    detail: Tuple[Tuple[str, Any], ...] = ()

    def detail_dict(self) -> Dict[str, Any]:
        return dict(self.detail)

    def mentions_job(self, job_id: str) -> bool:
        """True when this event is about ``job_id`` (directly or via a
        ``jobs`` list in the detail, as shard movements carry)."""
        if self.job_id == job_id:
            return True
        for key, value in self.detail:
            if key == "jobs" and job_id in value:
                return True
        return False

    def to_json(self) -> str:
        payload = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "t": self.time,
            "source": self.source,
            "kind": self.kind,
            "job": self.job_id,
            "detail": dict(self.detail),
        }
        return json.dumps(payload, sort_keys=True)

    def detail_str(self) -> str:
        return " ".join(f"{key}={value}" for key, value in self.detail)


class Tracer:
    """Mints deterministic trace/span ids and records decision events."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        #: Bounded retention, same pattern as health reports/alerts: an
        #: endless soak evicts its oldest events in amortized-O(1) chunks
        #: while ``chain()``/``to_jsonl()`` keep working on the retained
        #: window (a real list, so slicing and equality behave normally).
        self.events: List[TraceEvent] = BoundedList(maxlen=max_events)
        self._span_counter = 0
        self._trace_counter = 0
        #: Hand-off slots: ``(job_id, slot) -> event``. A producer layer
        #: stores the event that should parent the next consumer-layer
        #: event for the job; consumers ``claim`` (pop) or ``peek`` it.
        self._job_context: Dict[Tuple[str, str], TraceEvent] = {}
        #: Shard-movement context: while a shard move is in flight the
        #: destination Task Manager's task starts parent onto it.
        self._shard_context: Dict[str, TraceEvent] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def clear(self) -> None:
        self.events.clear()
        self._job_context.clear()
        self._shard_context.clear()
        self._span_counter = 0
        self._trace_counter = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        source: str,
        kind: str,
        job_id: Optional[str] = None,
        parent: Optional[TraceEvent] = None,
        **detail: Any,
    ) -> Optional[TraceEvent]:
        """Record one event; returns ``None`` when tracing is disabled.

        With a ``parent`` the event joins the parent's trace; without one
        it roots a new trace. Detail values must be JSON-serializable.
        """
        if not self.enabled:
            return None
        self._span_counter += 1
        if parent is None:
            self._trace_counter += 1
            trace_id = f"T{self._trace_counter:06d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        event = TraceEvent(
            trace_id=trace_id,
            span_id=f"s{self._span_counter:06d}",
            parent_id=parent_id,
            time=float(self._clock()),
            source=source,
            kind=kind,
            job_id=job_id,
            detail=tuple(sorted(detail.items())),
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Cross-layer hand-off slots
    # ------------------------------------------------------------------
    def set_context(
        self, job_id: str, slot: str, event: Optional[TraceEvent]
    ) -> None:
        """Publish ``event`` as the pending cause for ``(job, slot)``."""
        if not self.enabled or event is None:
            return
        self._job_context[(job_id, slot)] = event

    def claim_context(self, job_id: str, slot: str) -> Optional[TraceEvent]:
        """Consume (pop) the pending cause for ``(job, slot)``."""
        if not self.enabled:
            return None
        return self._job_context.pop((job_id, slot), None)

    def peek_context(self, job_id: str, slot: str) -> Optional[TraceEvent]:
        """Read the pending cause without consuming it."""
        if not self.enabled:
            return None
        return self._job_context.get((job_id, slot))

    def set_shard_context(
        self, shard_id: str, event: Optional[TraceEvent]
    ) -> None:
        if not self.enabled or event is None:
            return
        self._shard_context[shard_id] = event

    def clear_shard_context(self, shard_id: str) -> None:
        if not self.enabled:
            return
        self._shard_context.pop(shard_id, None)

    def peek_shard_context(self, shard_id: str) -> Optional[TraceEvent]:
        if not self.enabled:
            return None
        return self._shard_context.get(shard_id)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def chain(self, job_id: str) -> List[TraceEvent]:
        """Every event about ``job_id`` plus the causal closure of their
        traces, in time order — the full "why" for the job's changes."""
        trace_ids = {
            event.trace_id
            for event in self.events
            if event.mentions_job(job_id)
        }
        return [
            event for event in self.events
            if event.trace_id in trace_ids
            and (event.mentions_job(job_id) or event.job_id is None)
        ]

    def render_chain(self, job_id: str) -> str:
        """An indented text rendering of :meth:`chain` (parents outdent)."""
        events = self.chain(job_id)
        if not events:
            return f"(no trace events recorded for {job_id})"
        by_span = {event.span_id: event for event in events}
        depths: Dict[str, int] = {}

        def depth_of(event: TraceEvent) -> int:
            if event.span_id in depths:
                return depths[event.span_id]
            parent = by_span.get(event.parent_id) if event.parent_id else None
            depth = 0 if parent is None else depth_of(parent) + 1
            depths[event.span_id] = depth
            return depth

        lines = []
        current_trace = None
        for event in events:
            if event.trace_id != current_trace:
                current_trace = event.trace_id
                lines.append(f"trace {event.trace_id}")
            indent = "  " * (depth_of(event) + 1)
            job = f" job={event.job_id}" if event.job_id else ""
            detail = event.detail_str()
            lines.append(
                f"{indent}[{event.time:10.1f}s] {event.source:14s} "
                f"{event.kind:20s}{job} {detail}".rstrip()
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """All events as JSON Lines (deterministic for a same-seed run)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def write_jsonl(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @staticmethod
    def load_jsonl(text: str) -> List[TraceEvent]:
        """Parse :meth:`to_jsonl` output back into events."""
        events = []
        for line in text.splitlines():
            if not line.strip():
                continue
            payload = json.loads(line)
            events.append(
                TraceEvent(
                    trace_id=payload["trace"],
                    span_id=payload["span"],
                    parent_id=payload.get("parent"),
                    time=float(payload["t"]),
                    source=payload["source"],
                    kind=payload["kind"],
                    job_id=payload.get("job"),
                    detail=tuple(sorted(payload.get("detail", {}).items())),
                )
            )
        return events

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, events={len(self.events)})"


class _NullTracer(Tracer):
    """The shared always-disabled tracer components default to.

    ``enable()`` is a hard error: a component holding the shared null
    tracer must be given a real one instead (enabling the singleton would
    silently turn tracing on for every defaulted component at once).
    """

    def enable(self) -> None:  # pragma: no cover - guard rail
        raise RuntimeError(
            "NULL_TRACER is shared and cannot be enabled; "
            "construct a Tracer and pass it to the component instead"
        )


#: Shared disabled tracer: the default for every instrumented component.
NULL_TRACER = _NullTracer()


def chain_from_events(
    events: List[TraceEvent], job_id: str
) -> List[TraceEvent]:
    """:meth:`Tracer.chain` over a loaded (exported) event list."""
    tracer = Tracer(enabled=True)
    tracer.events.extend(events)
    return tracer.chain(job_id)


def render_chain_from_events(events: List[TraceEvent], job_id: str) -> str:
    """:meth:`Tracer.render_chain` over a loaded (exported) event list."""
    tracer = Tracer(enabled=True)
    tracer.events.extend(events)
    return tracer.render_chain(job_id)
