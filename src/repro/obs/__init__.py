"""Control-plane observability: causal decision traces and telemetry.

The paper's operability story (section VII) rests on "tools that drill
down into the root cause of the problem". The data-plane side of that is
``repro.metrics`` (simulated job metrics) and ``repro.ops`` (health
percentages, incident timeline). This package adds the *control-plane*
side:

* :mod:`repro.obs.trace` — causal decision traces. A :class:`Tracer`
  mints deterministic trace/span ids and is threaded through the layers,
  so the chain detector symptom → scaler plan → Job Store write → State
  Syncer round → shard movement can be reconstructed for any job.
* :mod:`repro.obs.telemetry` — counters/gauges/histograms for the control
  plane itself (timer firings, callback wall-clock cost, sync-round batch
  sizes, balancer round cost, event-queue depth), kept separate from the
  simulated data-plane metric store.
* :mod:`repro.obs.sli` / :mod:`repro.obs.slo` — the SLO plane: per-job
  service-level indicators derived from the streaming metric store, and
  declarative objectives with error budgets, breach windows, and
  Google-SRE multi-window burn-rate alerts.
* :mod:`repro.obs.critical_path` — longest-path analysis over causal
  traces ("which layer cost the most").
* :mod:`repro.obs.prom` — Prometheus text-format exposition of telemetry
  and SLO state.

All of it is zero-cost when disabled and records passively: no RNG
draws, no extra simulation events, so enabling observability never
perturbs an experiment.
"""

from repro.obs.critical_path import (
    CriticalPath,
    critical_paths,
    layer_costs,
    render_critical_path,
)
from repro.obs.prom import render_prometheus
from repro.obs.sli import FleetCounts, SliEvaluator
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    BreachWindow,
    BurnRateRule,
    SloSpec,
    SloTracker,
    default_slo_specs,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    EngineInstrumentation,
    Telemetry,
    is_deterministic_instrument,
)
from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "Telemetry",
    "NULL_TELEMETRY",
    "EngineInstrumentation",
    "is_deterministic_instrument",
    "SliEvaluator",
    "FleetCounts",
    "SloSpec",
    "SloTracker",
    "BurnRateRule",
    "BreachWindow",
    "DEFAULT_BURN_RULES",
    "default_slo_specs",
    "CriticalPath",
    "critical_paths",
    "layer_costs",
    "render_critical_path",
    "render_prometheus",
]
