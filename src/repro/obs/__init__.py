"""Control-plane observability: causal decision traces and telemetry.

The paper's operability story (section VII) rests on "tools that drill
down into the root cause of the problem". The data-plane side of that is
``repro.metrics`` (simulated job metrics) and ``repro.ops`` (health
percentages, incident timeline). This package adds the *control-plane*
side:

* :mod:`repro.obs.trace` — causal decision traces. A :class:`Tracer`
  mints deterministic trace/span ids and is threaded through the layers,
  so the chain detector symptom → scaler plan → Job Store write → State
  Syncer round → shard movement can be reconstructed for any job.
* :mod:`repro.obs.telemetry` — counters/gauges/histograms for the control
  plane itself (timer firings, callback wall-clock cost, sync-round batch
  sizes, balancer round cost, event-queue depth), kept separate from the
  simulated data-plane metric store.

Both are zero-cost when disabled and record passively: no RNG draws, no
extra simulation events, so enabling them never perturbs an experiment.
"""

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    EngineInstrumentation,
    Telemetry,
    is_deterministic_instrument,
)
from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "Telemetry",
    "NULL_TELEMETRY",
    "EngineInstrumentation",
    "is_deterministic_instrument",
]
