"""Prometheus text-format exposition of telemetry and SLO state.

One function, :func:`render_prometheus`, renders a point-in-time
scrape-able snapshot:

* every :class:`~repro.obs.telemetry.Telemetry` instrument — counters as
  ``*_total``, gauges verbatim, histograms as ``*_bucket``/``_sum``/
  ``_count`` with cumulative ``le`` buckets;
* when an :class:`~repro.obs.slo.SloTracker` is given, per-(job, SLO)
  series with labels: current budget burn, 1-hour burn rate, and breach
  counts.

Names are sanitized to the Prometheus charset and prefixed ``repro_``.
With ``deterministic=True`` the telemetry side drops the same
instruments :func:`~repro.obs.telemetry.is_deterministic_instrument`
excludes from JSONL exports, so the text is byte-identical per seed.
"""

from __future__ import annotations

import re
from typing import List, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPE = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def sanitize_metric_name(name: str) -> str:
    """Map an instrument name onto the Prometheus metric charset."""
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return f"repro_{clean}"


def _escape_label(value: str) -> str:
    return value.translate(_LABEL_ESCAPE)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(
    telemetry=None,
    slo=None,
    deterministic: bool = False,
    now: Optional[float] = None,
) -> str:
    """A Prometheus text-format snapshot (version 0.0.4 exposition)."""
    lines: List[str] = []
    if telemetry is not None:
        lines.extend(_telemetry_lines(telemetry, deterministic))
    if slo is not None:
        lines.extend(_slo_lines(slo, now))
    return "".join(line + "\n" for line in lines)


def _telemetry_lines(telemetry, deterministic: bool) -> List[str]:
    snapshot = telemetry.snapshot(deterministic=deterministic)
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        metric = sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, payload in snapshot["gauges"].items():
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(payload['value'])}")
    # Histograms: the snapshot carries the summary view; cumulative
    # buckets need the raw instrument, so read it off the registry.
    for name in sorted(telemetry.histograms):
        if name not in snapshot["histograms"]:
            continue  # filtered by the deterministic gate
        histogram = telemetry.histograms[name]
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return lines


def _slo_lines(slo, now: Optional[float]) -> List[str]:
    report = slo.report(now)
    lines: List[str] = []
    rows = report["slos"]
    if rows:
        lines.append("# TYPE repro_slo_budget_burned gauge")
        for row in rows:
            labels = (
                f'job="{_escape_label(row["job"])}",'
                f'slo="{_escape_label(row["slo"])}"'
            )
            lines.append(
                f"repro_slo_budget_burned{{{labels}}} "
                f"{_format_value(row['budget_burned'])}"
            )
        lines.append("# TYPE repro_slo_burn_rate_1h gauge")
        for row in rows:
            labels = (
                f'job="{_escape_label(row["job"])}",'
                f'slo="{_escape_label(row["slo"])}"'
            )
            lines.append(
                f"repro_slo_burn_rate_1h{{{labels}}} "
                f"{_format_value(row['burn_1h'])}"
            )
    lines.append("# TYPE repro_slo_breach_windows_total counter")
    lines.append(
        f"repro_slo_breach_windows_total {len(report['breach_windows'])}"
    )
    lines.append("# TYPE repro_slo_alerts_total counter")
    lines.append(f"repro_slo_alerts_total {len(report['alerts'])}")
    return lines
