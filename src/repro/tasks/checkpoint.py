"""Durable task checkpoints over a per-job Scribe command log.

The live ``CheckpointStore`` in the Scribe bus is a *cursor* — the offsets
tasks have acknowledged so far. It is fast but, like any in-memory cursor
service, it can lose state (the ``checkpoint-wipe`` chaos fault models
exactly that). When it does, every task of the job re-reads its input from
the backlog horizon: crash recovery cost is O(backlog).

The ``CheckpointPlane`` makes progress durable the same way PR 7 made the
Job Store durable: it periodically snapshots each job's committed offsets
(plus the progress scalar that seeds the memory-footprint estimate) as a
canonical-JSON record appended to a per-job ``CommandLog``
(``turbine.ckpt.<job>``). When the live cursors regress below the last
durable snapshot — a wipe, or a task restarting from scratch — the plane
rolls them forward to the snapshot, turning recovery cost into
O(since-last-checkpoint).

Restore never crashes: if the log has been trimmed past the retention
horizon and no durable record survives, the plane records an explicit
``checkpoint-fallback`` incident event and lets the job restart from the
backlog horizon — degraded, visible, and deterministic.

Fault-free runs append records but record **no events**, so incident
timelines with the plane attached are byte-identical to timelines without
it (the transparency pattern every optional subsystem here follows).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ServiceUnavailableError
from repro.obs.bounded import BoundedList
from repro.scribe.log import CommandLog, RetentionError
from repro.types import JobId, Seconds

#: How often the plane snapshots every job's live cursors (paper-scale:
#: a fraction of the 60 s sync round, so a restore loses at most half a
#: scaling decision's worth of progress).
CHECKPOINT_INTERVAL: Seconds = 30.0

#: Records kept per job log. Deliberately small: retention trims are a
#: first-class failure mode (the fallback path), not a corner case.
CHECKPOINT_RETENTION = 16

#: Offsets within this tolerance are "the same" — mirrors the commit
#: monotonicity tolerance in :class:`repro.scribe.checkpoints.CheckpointStore`.
_OFFSET_EPSILON = 1e-6


class CheckpointDecodeError(ValueError):
    """A checkpoint record's payload is not a valid canonical snapshot."""


def checkpoint_log_name(job_id: JobId) -> str:
    """The Scribe category holding ``job_id``'s checkpoint stream."""
    return f"turbine.ckpt.{job_id}"


@dataclass(frozen=True)
class TaskCheckpoint:
    """One durable snapshot of a job's progress state.

    Attributes:
        job_id: the job whose progress this records.
        time: simulation time the snapshot was taken.
        offsets: committed offset (MB consumed) per input partition.
        progress_mb: total MB processed across partitions — the scalar
            that seeds the restored task's memory-footprint estimate.
    """

    job_id: JobId
    time: Seconds
    offsets: Dict[str, float] = field(default_factory=dict)
    progress_mb: float = 0.0

    def encode(self) -> str:
        """Canonical JSON: key-sorted, so equal snapshots are equal bytes."""
        return json.dumps(
            {
                "job_id": self.job_id,
                "time": self.time,
                "offsets": self.offsets,
                "progress_mb": self.progress_mb,
            },
            sort_keys=True,
        )

    @classmethod
    def decode(cls, payload: str) -> "TaskCheckpoint":
        """Parse a record appended by :meth:`encode`.

        Raises :class:`CheckpointDecodeError` on anything that is not a
        well-formed snapshot, so a corrupt log entry surfaces as a typed
        error instead of a stray ``KeyError`` deep in restore.
        """
        try:
            raw = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise CheckpointDecodeError(f"not JSON: {payload!r}") from exc
        if not isinstance(raw, dict):
            raise CheckpointDecodeError(f"not an object: {payload!r}")
        try:
            offsets = raw["offsets"]
            if not isinstance(offsets, dict):
                raise CheckpointDecodeError(f"offsets not a map: {payload!r}")
            return cls(
                job_id=str(raw["job_id"]),
                time=float(raw["time"]),
                offsets={str(k): float(v) for k, v in offsets.items()},
                progress_mb=float(raw["progress_mb"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, CheckpointDecodeError):
                raise
            raise CheckpointDecodeError(f"bad snapshot: {payload!r}") from exc


@dataclass
class CheckpointEvent:
    """An incident-worthy checkpoint-plane event (restores only)."""

    time: Seconds
    kind: str  # "checkpoint-restore" | "checkpoint-fallback"
    detail: str


class CheckpointPlane:
    """Periodically snapshots live cursors to Scribe and restores them.

    One plane serves the whole platform (checkpoints are per job, not per
    container, exactly like the live ``CheckpointStore`` it mirrors).
    """

    def __init__(
        self,
        engine,
        scribe,
        task_service,
        interval: Seconds = CHECKPOINT_INTERVAL,
        retention: int = CHECKPOINT_RETENTION,
        telemetry=None,
    ) -> None:
        self._engine = engine
        self._scribe = scribe
        self._task_service = task_service
        self._interval = interval
        self._retention = retention
        self._telemetry = telemetry
        #: Incident events only — empty for a fault-free run, which keeps
        #: the incident timeline byte-identical with the plane disabled.
        self.events: BoundedList = BoundedList(maxlen=256)
        #: Counters for reports and vacuity guards in tests.
        self.appends = 0
        self.restores = 0
        self.fallbacks = 0
        #: Last snapshot written per job, kept in memory to detect cursor
        #: regression without a log read on every tick.
        self._high_water: Dict[JobId, Dict[str, float]] = {}
        #: Last record index read per job (restores resume tailing there).
        self._last_seq: Dict[JobId, int] = {}
        self._timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer is not None:
            return
        self._timer = self._engine.every(
            self._interval, self._tick, name="checkpoint-plane"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Snapshot tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        try:
            job_ids = self._task_service.job_ids()
        except ServiceUnavailableError:
            return  # Task service outage: skip the round, retry next tick.
        for job_id in job_ids:
            self.snapshot_job(job_id)

    def snapshot_job(self, job_id: JobId) -> None:
        """Snapshot one job now — or roll it forward if its cursors regressed."""
        live = self._scribe.checkpoints.snapshot(job_id)
        log = self._scribe.ensure_log(
            checkpoint_log_name(job_id), retention=self._retention
        )
        high_water = self._high_water.get(job_id)
        if high_water and self._regressed(live, high_water):
            if self._roll_forward(job_id, log) < 0:
                # Nothing durable survives (log trimmed past retention):
                # fall back to the backlog horizon, loudly.
                self.fallbacks += 1
                self._high_water[job_id] = dict(live)
                self.events.append(
                    CheckpointEvent(
                        self._engine.now,
                        "checkpoint-fallback",
                        f"{job_id}: checkpoint log trimmed past retention "
                        "horizon; restarting from the backlog horizon",
                    )
                )
                if self._telemetry is not None:
                    self._telemetry.inc("ckpt.fallbacks")
            return
        if live and live != high_water:
            snapshot = TaskCheckpoint(
                job_id=job_id,
                time=self._engine.now,
                offsets=dict(live),
                progress_mb=sum(live.values()),
            )
            self._last_seq[job_id] = log.append(snapshot.encode())
            self._high_water[job_id] = dict(live)
            self.appends += 1
            if self._telemetry is not None:
                self._telemetry.inc("ckpt.appends")

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def on_task_start(self, job_id: JobId) -> int:
        """Roll ``job_id``'s cursors forward before a task (re)starts.

        Called by the Task Manager when it starts a task, so a restart
        resumes from the latest durable checkpoint instead of wherever
        the live cursors happen to point. Returns the number of
        partitions rolled forward (0 when the durable snapshot is not
        ahead, which is the fault-free case and records nothing).
        """
        log = self._scribe.logs.get(checkpoint_log_name(job_id))
        if log is None:
            return 0  # Never checkpointed — nothing durable to restore.
        return max(0, self._roll_forward(job_id, log))

    def _roll_forward(self, job_id: JobId, log: CommandLog) -> int:
        """Commit the latest durable snapshot over the live cursors.

        Returns the number of partitions moved forward, or -1 when no
        durable record survives in the log.
        """
        latest = self._latest(job_id, log)
        if latest is None:
            return -1
        moved = 0
        store = self._scribe.checkpoints
        for partition_id in sorted(latest.offsets):
            offset = latest.offsets[partition_id]
            if offset > store.get(job_id, partition_id) + _OFFSET_EPSILON:
                store.commit(job_id, partition_id, offset)
                moved += 1
        self._high_water[job_id] = dict(store.snapshot(job_id))
        if moved:
            self.restores += 1
            self.events.append(
                CheckpointEvent(
                    self._engine.now,
                    "checkpoint-restore",
                    f"{job_id}: rolled {moved} partitions forward to the "
                    f"t={latest.time:g}s snapshot",
                )
            )
            if self._telemetry is not None:
                self._telemetry.inc("ckpt.restores")
        return moved

    def _latest(self, job_id: JobId, log: CommandLog) -> Optional[TaskCheckpoint]:
        """The newest decodable snapshot in ``log``, tailing incrementally."""
        start = self._last_seq.get(job_id, log.first_index)
        try:
            records = log.read_from(start)
        except RetentionError:
            records = log.read_from(log.first_index)
        if not records:
            return None
        seq, payload = records[-1]
        self._last_seq[job_id] = seq
        try:
            return TaskCheckpoint.decode(payload)
        except CheckpointDecodeError:
            return None

    @staticmethod
    def _regressed(
        live: Dict[str, float], high_water: Dict[str, float]
    ) -> bool:
        """True when any live cursor sits behind the last written snapshot."""
        return any(
            live.get(partition_id, 0.0) + _OFFSET_EPSILON < offset
            for partition_id, offset in high_water.items()
        )
