"""Shard-sliced task runtime: a columnar data plane for fleet-scale runs.

The object-per-task runtime (:mod:`repro.tasks.runtime`) models a single
container faithfully but tops out around a few thousand tasks per
simulated day. This module is the 100k-task representation used by the
parallel substrate (:mod:`repro.sim.parallel`): task state lives in
parallel arrays, grouped into one contiguous segment per job, and one
:class:`ShardSlicedTasks` instance holds exactly the tasks whose MD5
shard falls into its partition's shard set.

Determinism rules (the whole point of this layout):

* every random quantity is derived from a **stable entity key** — an
  MD5 base key per ``(seed, job)`` finalized with a splitmix64-style
  integer mix per ``(task index, crash number)`` — so a task behaves
  identically no matter which partition simulates it, and a whole
  index range of draws vectorizes to one NumPy expression instead of
  one digest per task;
* all elementwise dynamics use the same IEEE-754 expressions in the
  NumPy and pure-Python paths, and each task's trajectory depends only
  on its own state plus job-level scalars every partition computes from
  the spec — never on which other tasks share its arrays;
* every aggregate that leaves the slice (:meth:`stats_rows`, orphan lag
  from scale-downs) is quantized **per task** to fixed-point micro-MB
  *before* summation, making merge addition associative and therefore
  independent of how tasks are distributed over partitions.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_left
from itertools import chain
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.tasks.shard import shard_index_for_task

try:  # pragma: no cover - exercised implicitly by whichever path runs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Fixed-point scale for merged aggregates: 1 unit = 1e-6 MB (one byte,
#: near enough). Integer sums are associative, so merged totals cannot
#: depend on partition count or reduction order.
MICRO_MB = 1_000_000.0

#: Per-task arrival-rate skew range: multipliers in [0.75, 1.25).
MULT_BASE = 0.75
MULT_SPREAD = 0.5


def stable_u01(seed: int, label: str) -> float:
    """A uniform draw in ``[0, 1)`` fully determined by ``(seed, label)``.

    Uses MD5 like :meth:`repro.sim.rng.SeededRng.fork` — a stable digest,
    not Python's per-process salted ``hash()`` — so draws agree across
    worker processes and across runs. Used for job-level scalars (a
    handful per fleet); the per-task hot path goes through
    :func:`_job_key` + :func:`_mix64` instead, which costs integer
    arithmetic rather than a digest per task.
    """
    digest = hashlib.md5(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


MASK64 = (1 << 64) - 1
#: Index stride — odd (golden-ratio) constant, so distinct task indexes
#: land on distinct mix inputs.
_MIX_A = 0x9E3779B97F4A7C15
#: Crash-sequence stride, decoupled from the index stride.
_MIX_B = 0xC2B2AE3D27D4EB4F
_MIX_C1 = 0xBF58476D1CE4E5B9
_MIX_C2 = 0x94D049BB133111EB


def _job_key(seed: int, job_id: str) -> int:
    """The 64-bit MD5 base key of one job's entity-keyed draw stream."""
    digest = hashlib.md5(f"{seed}:{job_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _mix64(x: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit word (pure integers,
    so the NumPy ``uint64`` vector form is bit-identical)."""
    x &= MASK64
    x ^= x >> 30
    x = (x * _MIX_C1) & MASK64
    x ^= x >> 27
    x = (x * _MIX_C2) & MASK64
    x ^= x >> 31
    return x


def _vmix64(x):
    """Vector :func:`_mix64` over a ``uint64`` ndarray (wrapping
    arithmetic matches the scalar ``& MASK64`` form bit for bit)."""
    x = x ^ (x >> _np.uint64(30))
    x *= _np.uint64(_MIX_C1)
    x ^= x >> _np.uint64(27)
    x *= _np.uint64(_MIX_C2)
    x ^= x >> _np.uint64(31)
    return x


def _u01_from_word(word: int) -> float:
    """Top 53 bits of a mixed word as a float in ``[0, 1)`` — an exact
    integer scaled by an exact power of two, identical in scalar and
    vector arithmetic."""
    return (word >> 11) / 2.0**53


#: Module-level memo of MD5 shard indexes: ``(job_id, num_shards) ->
#: [shard_index_for_task(f"{job_id}/{i}") for i]``. Seed-independent and
#: partition-independent, so one table serves every slice in a process —
#: and, under the ``fork`` start method, worker processes inherit the
#: coordinator's warm table copy-on-write instead of redoing the digests.
_SHARD_TABLE: Dict[Tuple[str, int], List[int]] = {}


def _shard_indexes(job_id: str, num_shards: int, count: int) -> List[int]:
    """The job's task->shard table, grown to ``count`` entries."""
    table = _SHARD_TABLE.setdefault((job_id, num_shards), [])
    if len(table) < count:
        md5 = hashlib.md5
        task_prefix = f"{job_id}/".encode("utf-8")
        # Inlined shard_index_for_task(f"{job_id}/{i}"): the MD5
        # task->shard mapping is load-bearing and must not change.
        table.extend(
            int.from_bytes(
                md5(task_prefix + b"%d" % i).digest(), "big"
            ) % num_shards
            for i in range(len(table), count)
        )
    return table


def _crash_gap(key: int, tindex: int, k: int, mtbf_s: float) -> float:
    """The k-th exponential inter-crash gap of one task (entity-keyed)."""
    u = _u01_from_word(_mix64(key + tindex * _MIX_A + (k + 1) * _MIX_B))
    return -mtbf_s * math.log1p(-u)


def _task_mult(key: int, tindex: int) -> float:
    return MULT_BASE + MULT_SPREAD * _u01_from_word(
        _mix64(key + tindex * _MIX_A)
    )


class _JobCache:
    """Memoized pure-function values for one job's task indexes.

    Everything here is a pure function of ``(seed, job_id, index)`` —
    the per-task rate multiplier, its sequential prefix sum (bit-for-bit
    the same left-to-right accumulation the share denominator has always
    used), the first crash gap, and whether this partition owns the
    task's shard. Caching them turns rescales from O(task_count) MD5
    digests into O(owned) arithmetic without changing a single bit.
    """

    __slots__ = ("key", "mults", "prefix", "gap0", "owned", "size")

    def __init__(self, key: int = 0) -> None:
        #: The job's 64-bit draw-stream base key (:func:`_job_key`).
        self.key = key
        self.mults: List[float] = []
        #: ``prefix[i]`` = sum of ``mults[0:i]`` accumulated left to
        #: right, so ``prefix[count]`` is the exact float the original
        #: ``total_mult += mult`` loop produced.
        self.prefix: List[float] = [0.0]
        self.gap0: List[float] = []
        #: Ascending owned task indexes (this partition's shards only).
        self.owned: List[int] = []
        self.size = 0


class _JobSlice:
    """Authoritative per-job columns (this partition's tasks only)."""

    __slots__ = (
        "tindex", "share", "cap", "lag", "processed", "down_until",
        "next_crash", "crash_n", "retired_processed_u", "crash_count",
    )

    def __init__(self) -> None:
        self.tindex: List[int] = []
        self.share: List[float] = []
        self.cap: List[float] = []
        self.lag: List[float] = []
        self.processed: List[float] = []
        self.down_until: List[float] = []
        self.next_crash: List[float] = []
        self.crash_n: List[int] = []
        #: Processed micro-MB of tasks retired by scale-downs, kept so the
        #: job's cumulative throughput series never goes backwards.
        self.retired_processed_u: int = 0
        #: Crashes recorded so far (fingerprint bookkeeping).
        self.crash_count: int = 0


class ShardSlicedTasks:
    """The tasks of one partition's shard set, in columnar form.

    ``jobs`` is any iterable of objects with the :class:`FleetJob`
    attributes (``job_id``, ``task_count``, ``rate_per_task_mb``,
    ``mtbf_s``, ``restore_s``); ``owns`` decides shard ownership, so the
    same class serves a single-loop run (owns everything) and any
    partition of an N-way run.
    """

    def __init__(
        self,
        jobs: Iterable,
        seed: int,
        num_shards: int,
        owns: Callable[[int], bool],
        now: float = 0.0,
    ) -> None:
        self._seed = seed
        self._num_shards = num_shards
        self._owns = owns
        self._jobs: Dict[str, object] = {
            job.job_id: job for job in jobs
        }
        self._job_order: List[str] = sorted(self._jobs)
        self._counts: Dict[str, int] = {
            job_id: self._jobs[job_id].task_count for job_id in self._job_order
        }
        self._threads_mult: Dict[str, float] = {
            job_id: 1.0 for job_id in self._job_order
        }
        self._cache: Dict[str, _JobCache] = {
            job_id: _JobCache(_job_key(seed, job_id))
            for job_id in self._job_order
        }
        self._slices: Dict[str, _JobSlice] = {}
        for job_id in self._job_order:
            self._slices[job_id] = self._build_job_slice(
                job_id, self._counts[job_id], now
            )
        self._dirty = True
        self._c: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Construction / membership
    # ------------------------------------------------------------------
    def _ensure_cache(self, job_id: str, count: int) -> _JobCache:
        """Grow the job's memoized pure-function columns up to ``count``.

        The splitmix64 words vectorize when NumPy is present (bit-equal
        to the scalar mix — pure ``uint64`` arithmetic); the float steps
        after the words stay scalar in both paths, so the cached values
        never depend on which path filled them in. Shard ownership is
        the one per-index digest left: it must stay the platform's MD5
        mapping (paper section IV-A1), which is what the partitioning
        rule is reusing in the first place.
        """
        cache = self._cache[job_id]
        if cache.size < count:
            job = self._jobs[job_id]
            lo, hi = cache.size, count
            key = cache.key
            if _np is not None and hi - lo > 256:
                base = _np.uint64(key) + _np.arange(
                    lo, hi, dtype=_np.uint64
                ) * _np.uint64(_MIX_A)
                mult_words = _vmix64(base).tolist()
                gap_words = _vmix64(base + _np.uint64(_MIX_B)).tolist()
            else:
                mult_words = [
                    _mix64(key + i * _MIX_A) for i in range(lo, hi)
                ]
                gap_words = [
                    _mix64(key + i * _MIX_A + _MIX_B) for i in range(lo, hi)
                ]
            mtbf_s = job.mtbf_s
            log1p = math.log1p
            accum = cache.prefix[-1]
            for word_m, word_g in zip(mult_words, gap_words):
                mult = MULT_BASE + MULT_SPREAD * _u01_from_word(word_m)
                cache.mults.append(mult)
                accum += mult
                cache.prefix.append(accum)
                cache.gap0.append(
                    -mtbf_s * log1p(-_u01_from_word(word_g))
                )
            table = _shard_indexes(job_id, self._num_shards, hi)
            owns = self._owns
            cache.owned.extend(
                i for i in range(lo, hi) if owns(table[i])
            )
            cache.size = count
        return cache

    def _build_job_slice(self, job_id: str, count: int, now: float) -> _JobSlice:
        """Fresh columns for one job at ``count`` tasks (initial build).

        The arrival share of task *i* is ``mult_i / sum(mult_0..n-1)``
        where the denominator runs over the job's *entire* task list —
        every partition agrees on the shares without talking because the
        multipliers are pure functions of stable labels (memoized in
        :class:`_JobCache` so only first-touch indexes pay any work).
        Resizes never rebuild; :meth:`_rescale` edits columns in place.
        """
        job = self._jobs[job_id]
        cache = self._ensure_cache(job_id, count)
        total_mult = cache.prefix[count]
        cut = bisect_left(cache.owned, count)
        owned = cache.owned[:cut]
        n = len(owned)
        mults = cache.mults
        gap0 = cache.gap0
        sl = _JobSlice()
        sl.tindex = owned
        sl.share = (
            [mults[i] / total_mult for i in owned]
            if total_mult > 0 else [0.0] * n
        )
        sl.cap = [job.rate_per_task_mb] * n
        sl.lag = [0.0] * n
        sl.processed = [0.0] * n
        sl.down_until = [now] * n
        sl.next_crash = [now + gap0[i] for i in owned]
        sl.crash_n = [0] * n
        return sl

    def _refresh(self) -> None:
        """(Re)build the concatenated hot arrays from per-job columns."""
        if not self._dirty:
            return
        names = (
            "share", "cap", "lag", "processed", "down_until", "next_crash",
        )
        offsets: List[Tuple[int, int]] = []
        start = 0
        chunks: Dict[str, List[Sequence[float]]] = {n: [] for n in names}
        jobpos: List[int] = []
        for pos, job_id in enumerate(self._job_order):
            sl = self._slices[job_id]
            n = len(sl.tindex)
            offsets.append((start, start + n))
            start += n
            jobpos.extend([pos] * n)
            for name in names:
                chunks[name].append(getattr(sl, name))
        self._offsets = offsets
        self._size = start
        if _np is not None:
            self._c = {
                name: _np.fromiter(
                    chain.from_iterable(chunks[name]),
                    dtype=_np.float64,
                    count=start,
                )
                for name in names
            }
            self._c["jobpos"] = _np.array(jobpos, dtype=_np.intp)
        else:
            self._c = {
                name: list(chain.from_iterable(chunks[name]))
                for name in names
            }
            self._c["jobpos"] = jobpos
        self._dirty = False

    def _writeback(self) -> None:
        """Copy mutable concatenated columns back into per-job lists."""
        if self._dirty:
            return
        for pos, job_id in enumerate(self._job_order):
            start, end = self._offsets[pos]
            sl = self._slices[job_id]
            for name in ("lag", "processed", "down_until", "next_crash"):
                col = self._c[name][start:end]
                # ndarray.tolist() yields the same Python floats as
                # float(v) per element, in bulk.
                setattr(
                    sl,
                    name,
                    col.tolist() if _np is not None else list(col),
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def job_order(self) -> List[str]:
        return list(self._job_order)

    def task_count(self, job_id: str) -> int:
        """The job's *global* task count (all partitions)."""
        return self._counts[job_id]

    def owned_task_total(self) -> int:
        return sum(len(sl.tindex) for sl in self._slices.values())

    def threads_mult(self, job_id: str) -> float:
        return self._threads_mult[job_id]

    # ------------------------------------------------------------------
    # Commands (applied at round barriers)
    # ------------------------------------------------------------------
    def apply_commands(
        self, now: float, commands: Sequence[Tuple]
    ) -> List[Tuple[str, int]]:
        """Apply control-plane commands; return orphan lag per job.

        Commands are wire tuples: ``("scale", job, count)`` resizes a
        job, ``("threads", job, mult)`` adjusts its vertical multiplier,
        ``("credit", job, lag_u)`` lands a previous round's orphan lag on
        the job's task 0 (wherever it lives). Orphan lag — the lag of
        tasks retired by a scale-down — is returned as per-job micro-MB
        so the coordinator can re-credit it next round.
        """
        orphans: List[Tuple[str, int]] = []
        for command in commands:
            kind = command[0]
            if kind == "threads":
                self._threads_mult[command[1]] = float(command[2])
            elif kind == "credit":
                self._credit_lag(command[1], int(command[2]))
            elif kind == "scale":
                orphan_u = self._rescale(command[1], int(command[2]), now)
                if orphan_u:
                    orphans.append((command[1], orphan_u))
            else:
                raise ValueError(f"unknown command kind: {kind!r}")
        return orphans

    def _rescale(self, job_id: str, new_count: int, now: float) -> int:
        """Resize a job's columns in place: O(owned rows), no rebuild.

        ``tindex`` is always ascending (built ascending, scale-ups
        append larger indexes, scale-downs truncate the tail), so both
        directions are a bisect plus a tail edit; only the shares — a
        function of the job-wide denominator — are recomputed for every
        surviving row, exactly as a fresh build would.
        """
        old_count = self._counts[job_id]
        if new_count == old_count:
            return 0
        self._writeback()
        cache = self._ensure_cache(job_id, max(new_count, old_count))
        sl = self._slices[job_id]
        orphan_u = 0
        if new_count < old_count:
            cut = bisect_left(sl.tindex, new_count)
            for row in range(cut, len(sl.tindex)):
                orphan_u += int(round(sl.lag[row] * MICRO_MB))
                sl.retired_processed_u += int(
                    round(sl.processed[row] * MICRO_MB)
                )
            for name in (
                "tindex", "cap", "lag", "processed", "down_until",
                "next_crash", "crash_n",
            ):
                del getattr(sl, name)[cut:]
        else:
            lo = bisect_left(cache.owned, old_count)
            hi = bisect_left(cache.owned, new_count)
            grown = cache.owned[lo:hi]
            n = len(grown)
            job = self._jobs[job_id]
            sl.tindex.extend(grown)
            sl.cap.extend([job.rate_per_task_mb] * n)
            sl.lag.extend([0.0] * n)
            sl.processed.extend([0.0] * n)
            sl.down_until.extend([now] * n)
            sl.next_crash.extend(now + cache.gap0[i] for i in grown)
            sl.crash_n.extend([0] * n)
        total_mult = cache.prefix[new_count]
        mults = cache.mults
        sl.share = (
            [mults[i] / total_mult for i in sl.tindex]
            if total_mult > 0 else [0.0] * len(sl.tindex)
        )
        self._counts[job_id] = new_count
        self._dirty = True
        return orphan_u

    def _credit_lag(self, job_id: str, lag_u: int) -> None:
        """Land orphan lag on task 0 if this partition owns it."""
        if not self._owns(
            shard_index_for_task(f"{job_id}/0", self._num_shards)
        ):
            return
        self._writeback()
        sl = self._slices[job_id]
        for row, i in enumerate(sl.tindex):
            if i == 0:
                sl.lag[row] = sl.lag[row] + lag_u / MICRO_MB
                self._dirty = True
                return

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(
        self, t_start: float, dt: float, rates: Sequence[float]
    ) -> List[Tuple[float, str, int]]:
        """Advance every owned task over ``[t_start, t_start + dt)``.

        ``rates`` is the per-job arrival rate (MB/s) at ``t_start``, in
        ``job_order`` — a job-level scalar every partition computes
        identically from the spec. Returns crash records
        ``(crash_time, job_id, task_index)``.
        """
        if dt <= 0:
            return []
        self._refresh()
        if self._size == 0:
            return []
        t_end = t_start + dt
        crashes: List[Tuple[float, str, int]] = []
        if _np is not None:
            c = self._c
            down = _np.clip(c["down_until"] - t_start, 0.0, dt)
            active = 1.0 - down / dt
            hit = _np.nonzero(c["next_crash"] < t_end)[0]
            for idx in hit:
                crashes.append(self._crash_one(int(idx), t_start, dt, active))
            rates_task = _np.asarray(rates, dtype=_np.float64)[c["jobpos"]]
            tm_task = _np.asarray(
                [self._threads_mult[j] for j in self._job_order],
                dtype=_np.float64,
            )[c["jobpos"]]
            arrival = (c["share"] * rates_task) * dt
            cap_step = ((c["cap"] * tm_task) * active) * dt
            drained = _np.minimum(c["lag"] + arrival, cap_step)
            _np.clip(drained, 0.0, None, out=drained)
            c["lag"] += arrival - drained
            c["processed"] += drained
        else:
            c = self._c
            tm = [self._threads_mult[j] for j in self._job_order]
            lag = c["lag"]
            processed = c["processed"]
            for i in range(self._size):
                down = min(max(c["down_until"][i] - t_start, 0.0), dt)
                active_i = 1.0 - down / dt
                if c["next_crash"][i] < t_end:
                    active_arr = [active_i]
                    crashes.append(
                        self._crash_one(i, t_start, dt, active_arr, scalar=True)
                    )
                    active_i = active_arr[0]
                pos = c["jobpos"][i]
                arrival = (c["share"][i] * rates[pos]) * dt
                cap_step = ((c["cap"][i] * tm[pos]) * active_i) * dt
                drained = min(lag[i] + arrival, cap_step)
                if drained < 0.0:
                    drained = 0.0
                lag[i] = lag[i] + (arrival - drained)
                processed[i] = processed[i] + drained
        return crashes

    def _crash_one(self, idx, t_start, dt, active, scalar=False):
        """Record one crash event and schedule the task's next one."""
        c = self._c
        pos = int(c["jobpos"][idx])
        job_id = self._job_order[pos]
        job = self._jobs[job_id]
        sl = self._slices[job_id]
        start, _end = self._offsets[pos]
        row = idx - start
        tindex = sl.tindex[row]
        tc = float(c["next_crash"][idx])
        resume = tc + job.restore_s
        c["down_until"][idx] = resume
        extra_down = min(t_start + dt, resume) - tc
        if extra_down > 0:
            if scalar:
                active[0] = max(0.0, active[0] - extra_down / dt)
            else:
                active[idx] = max(0.0, active[idx] - extra_down / dt)
        sl.crash_n[row] += 1
        sl.crash_count += 1
        c["next_crash"][idx] = resume + _crash_gap(
            self._cache[job_id].key, tindex, sl.crash_n[row], job.mtbf_s
        )
        return (tc, job_id, tindex)

    # ------------------------------------------------------------------
    # Mergeable aggregates
    # ------------------------------------------------------------------
    def stats_rows(self, t: float) -> List[Tuple[float, str, int, int]]:
        """``(t, job_id, lag_u, processed_u)`` per job, fixed-point.

        Each task quantizes *individually* to micro-MB before the sum,
        so any distribution of tasks over partitions produces the same
        merged totals (integer addition is associative).
        """
        self._refresh()
        rows: List[Tuple[float, str, int, int]] = []
        if _np is not None and self._size > 0:
            lag_u = _np.rint(self._c["lag"] * MICRO_MB).astype(_np.int64)
            proc_u = _np.rint(self._c["processed"] * MICRO_MB).astype(
                _np.int64
            )
            for pos, job_id in enumerate(self._job_order):
                start, end = self._offsets[pos]
                retired = self._slices[job_id].retired_processed_u
                rows.append((
                    t, job_id,
                    int(lag_u[start:end].sum()),
                    int(proc_u[start:end].sum()) + retired,
                ))
        else:
            for pos, job_id in enumerate(self._job_order):
                start, end = self._offsets[pos]
                lag_sum = 0
                proc_sum = 0
                for i in range(start, end):
                    lag_sum += int(round(self._c["lag"][i] * MICRO_MB))
                    proc_sum += int(round(self._c["processed"][i] * MICRO_MB))
                retired = self._slices[job_id].retired_processed_u
                rows.append((t, job_id, lag_sum, proc_sum + retired))
        return rows

    def crash_totals(self) -> Dict[str, int]:
        """Crashes recorded so far, per job."""
        return {
            job_id: self._slices[job_id].crash_count
            for job_id in self._job_order
        }

    def shard_processed_u(self) -> List[int]:
        """Processed micro-MB folded onto MD5 shards — the cost signal
        the load-aware :class:`~repro.sim.parallel.partition.PartitionPlan`
        packs on.

        Quantized per task before the per-shard integer sum, like
        :meth:`stats_rows`, so the totals are independent of which
        partition measured them. Lag retired by scale-downs is job-level
        and has no shard, so it is deliberately excluded: the plan packs
        *live* step cost, not history.
        """
        self._refresh()
        totals = [0] * self._num_shards
        for pos, job_id in enumerate(self._job_order):
            start, end = self._offsets[pos]
            sl = self._slices[job_id]
            table = _shard_indexes(
                job_id, self._num_shards, self._counts[job_id]
            )
            processed = self._c["processed"]
            for row in range(end - start):
                shard = table[sl.tindex[row]]
                totals[shard] += int(
                    round(float(processed[start + row]) * MICRO_MB)
                )
        return totals

    def __repr__(self) -> str:
        return (
            f"ShardSlicedTasks(jobs={len(self._job_order)}, "
            f"owned_tasks={self.owned_task_total()})"
        )
