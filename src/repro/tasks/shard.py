"""Task-to-shard mapping.

"Each of these Task Managers periodically fetches the list of all Turbine
tasks from the Task Service and computes an MD5 hash for each task. The
result defines the shard ID associated with this task." (paper
section IV-A1).

The mapping is pure and stateless: any Task Manager, given the same task
list and shard count, computes the same mapping — which is what lets the
two-level scheduling work without the Shard Manager knowing about tasks.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.errors import PlacementError
from repro.types import ShardId, TaskId

#: Default number of shards per tier. More shards than containers gives the
#: balancer fine-grained units to move; the paper's production tier maps
#: 100 K shards onto thousands of containers.
DEFAULT_NUM_SHARDS = 1024


def shard_index_for_task(task_id: TaskId, num_shards: int) -> int:
    """The numeric shard index of a task, by MD5 hash of its id.

    The integer form is what the parallel substrate partitions on
    (partition = index mod N); :func:`shard_id_for_task` formats the
    same index as the control plane's shard id string.
    """
    if num_shards <= 0:
        raise PlacementError(f"num_shards must be positive: {num_shards}")
    # int.from_bytes(digest) == int(hexdigest, 16): same 128-bit value,
    # without materializing and re-parsing a 32-char hex string.
    digest = hashlib.md5(task_id.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % num_shards


def shard_id_for_task(task_id: TaskId, num_shards: int) -> ShardId:
    """The shard a task belongs to, by MD5 hash of its id."""
    return f"shard-{shard_index_for_task(task_id, num_shards):05d}"


def group_tasks_by_shard(
    task_ids: Iterable[TaskId], num_shards: int
) -> Dict[ShardId, List[TaskId]]:
    """Bucket task ids into shards (sorted within each bucket)."""
    buckets: Dict[ShardId, List[TaskId]] = {}
    for task_id in task_ids:
        buckets.setdefault(shard_id_for_task(task_id, num_shards), []).append(
            task_id
        )
    for bucket in buckets.values():
        bucket.sort()
    return buckets


def all_shard_ids(num_shards: int) -> List[ShardId]:
    """Every shard id in a tier of ``num_shards`` shards."""
    if num_shards <= 0:
        raise PlacementError(f"num_shards must be positive: {num_shards}")
    return [f"shard-{index:05d}" for index in range(num_shards)]
