"""Gray-failure detection: find slow nodes that never fail a health check.

A gray node is the failure mode health checks cannot see: the container
heartbeats on time, its tasks stay RUNNING, but everything on it processes
at a fraction of its healthy rate (modelled by ``TaskManager.slow_factor``
and injected by the ``slow-node`` chaos fault). Lag accumulates, the
symptom detector eventually pages for the *job*, and nothing points at
the *node*.

The ``SlowNodeDetector`` closes that gap with the comparison the symptom
pipeline cannot make on its own: within each job, every task has the same
spec and an even partition slice, so all its tasks should process at
roughly the job-median rate. A task persistently below ``ratio · median``
while its siblings keep up indicts its *host*, not the job. Rates are
averaged over the detector's own evaluation window (deltas of each
task's processed-bytes counter), never instantaneous samples — bursty
sources make instantaneous rates read zero between bursts, which is
phase noise, not a gray node. After ``confirmations`` consecutive
suspicious evaluations the detector *drains* every container on the
suspect host through the Shard Manager — shards (and their tasks)
migrate to healthy nodes gracefully, the gray node keeps heartbeating
but receives no new placement — and un-drains it after a cooldown so a
recovered node rejoins the pool.

Fault-free fleets produce no suspicions, no drains, and no events, so
attaching the detector leaves every deterministic export byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.obs.bounded import BoundedList
from repro.types import HostId, Seconds, TaskId, TaskState

#: How often rates are compared. One full burst period of the bursty
#: sources, so every task's window covers the same amount of arrivals.
EVAL_INTERVAL: Seconds = 60.0

#: A task is suspicious below this fraction of its job's median rate.
RATIO_THRESHOLD = 0.5

#: Consecutive suspicious evaluations before a host is drained —
#: one slow window is noise, two in a row is a gray node.
CONFIRMATIONS = 2

#: How long a drained host sits out before it may take shards again.
DRAIN_COOLDOWN: Seconds = 600.0


@dataclass
class SlowNodeEvent:
    """An incident-worthy detector event (drains and un-drains only)."""

    time: Seconds
    kind: str  # "gray-node-drain" | "gray-node-undrain"
    detail: str


class SlowNodeDetector:
    """Compares per-task rates against the job median; drains gray hosts."""

    def __init__(
        self,
        engine,
        platform,
        interval: Seconds = EVAL_INTERVAL,
        ratio: float = RATIO_THRESHOLD,
        confirmations: int = CONFIRMATIONS,
        cooldown: Seconds = DRAIN_COOLDOWN,
        telemetry=None,
    ) -> None:
        self._engine = engine
        self._platform = platform
        self._interval = interval
        self._ratio = ratio
        self._confirmations = confirmations
        self._cooldown = cooldown
        self._telemetry = telemetry
        #: Drained hosts and when they were drained.
        self.drained: Dict[HostId, Seconds] = {}
        #: Consecutive suspicious evaluations per host.
        self._suspicion: Dict[HostId, int] = {}
        #: task id → (processed-bytes counter, container) at the last
        #: tick; the delta over one interval is the task's averaged rate.
        self._last_totals: Dict[TaskId, Tuple[float, str]] = {}
        #: Incident events only — empty when no node is gray.
        self.events: BoundedList = BoundedList(maxlen=256)
        self.drains = 0
        self._timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer is not None:
            return
        self._timer = self._engine.every(
            self._interval, self._tick, name="slow-node-detector"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Evaluation tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self._engine.now
        for host_id in sorted(self.drained):
            if now - self.drained[host_id] >= self._cooldown:
                for container_id in self._containers_on(host_id):
                    self._platform.shard_manager.undrain(container_id)
                del self.drained[host_id]
                self._suspicion.pop(host_id, None)
                self.events.append(
                    SlowNodeEvent(
                        now, "gray-node-undrain",
                        f"{host_id}: cooldown elapsed; host rejoins the "
                        "placement pool",
                    )
                )
        suspects = self._suspect_hosts()
        hosts = sorted(
            {
                manager.container.host_id
                for manager in self._platform.task_managers.values()
                if manager.alive
            }
        )
        for host_id in hosts:
            if host_id in self.drained:
                continue  # Already out of the pool; nothing to confirm.
            if host_id in suspects:
                count = self._suspicion.get(host_id, 0) + 1
                self._suspicion[host_id] = count
                if count >= self._confirmations:
                    self._drain(host_id, suspects[host_id], now)
            else:
                self._suspicion.pop(host_id, None)

    def _suspect_hosts(self) -> Dict[HostId, str]:
        """Hosts running a task persistently below its job median.

        Returns ``{host_id: evidence}`` for this evaluation round. Rates
        are window-averaged processed-bytes deltas: a task needs a
        sample from the previous tick on the *same* container to count
        (a moved or restarted task re-seeds its window instead of
        reporting a bogus negative delta).
        """
        by_job: Dict[str, List[Tuple[float, HostId, str]]] = {}
        managers = self._platform.task_managers
        seen: Dict[TaskId, Tuple[float, str]] = {}
        for container_id in sorted(managers):
            manager = managers[container_id]
            if not manager.alive:
                continue
            host_id = manager.container.host_id
            for task_id, task in sorted(manager.tasks.items()):
                if task.state != TaskState.RUNNING or task.restoring:
                    continue
                total = task.total_processed_mb
                seen[task_id] = (total, container_id)
                previous = self._last_totals.get(task_id)
                if previous is None or previous[1] != container_id:
                    continue  # First window on this container.
                if total < previous[0]:
                    continue  # Restarted in place; window re-seeds.
                rate = (total - previous[0]) / self._interval
                by_job.setdefault(task.spec.job_id, []).append(
                    (rate, host_id, task_id)
                )
        self._last_totals = seen
        suspects: Dict[HostId, str] = {}
        for job_id in sorted(by_job):
            entries = by_job[job_id]
            if len(entries) < 2:
                continue  # No siblings to compare against.
            rates = sorted(rate for rate, __, __ in entries)
            mid = len(rates) // 2
            median = (
                rates[mid] if len(rates) % 2
                else (rates[mid - 1] + rates[mid]) / 2.0
            )
            if median <= 1e-9:
                continue  # Idle job: every rate is ~0, nothing to learn.
            for rate, host_id, task_id in entries:
                if rate < self._ratio * median:
                    suspects.setdefault(
                        host_id,
                        f"{task_id} at {rate:.2f} MB/s vs job median "
                        f"{median:.2f} MB/s",
                    )
        return suspects

    def _containers_on(self, host_id: HostId) -> List[str]:
        managers = self._platform.task_managers
        return [
            container_id
            for container_id in sorted(managers)
            if managers[container_id].container.host_id == host_id
        ]

    def _drain(self, host_id: HostId, evidence: str, now: Seconds) -> None:
        for container_id in self._containers_on(host_id):
            self._platform.shard_manager.drain(container_id)
        self.drained[host_id] = now
        self.drains += 1
        self.events.append(
            SlowNodeEvent(
                now, "gray-node-drain",
                f"{host_id}: {evidence}; shards migrated off",
            )
        )
        if self._telemetry is not None:
            self._telemetry.inc("slownode.drains")
