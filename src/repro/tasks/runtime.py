"""The simulated task runtime — the data plane.

In production this is the stream-processing engine binary; here it is a
model that preserves the behaviours the control plane observes and reacts
to:

* each task drains its disjoint Scribe partition slice at a rate bounded by
  ``P · k`` (the per-thread max stable rate times the thread count,
  equation 2 of the paper) — tasks are the unit of processing capacity;
* CPU usage is proportional to bytes processed ("CPU consumption is
  approximately proportional to the size of input and output data",
  section V-B);
* memory usage is a base footprint (~0.4 GB, the floor visible in Fig. 5b)
  plus a few seconds of buffered input, plus — for stateful jobs — a
  key-cardinality term;
* a task whose memory need exceeds its reservation crashes with OOM, which
  the Task Manager reports to the scaler's symptom detector;
* progress is checkpointed per partition, so restarts resume exactly where
  the previous incarnation stopped.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.scribe.bus import ScribeBus
from repro.scribe.partition import Partition
from repro.tasks.spec import TaskSpec
from repro.types import Seconds, TaskState

#: Memory floor per task: "every task consumes at least ~400MB, regardless
#: of the input traffic volume" (paper section VI, Fig. 5b).
BASE_MEMORY_GB = 0.4

#: Seconds of input data a task buffers in memory ("a tailer holds a few
#: seconds worth of data in memory before processing and flushing").
BUFFER_SECONDS = 5.0

#: GB of input buffered per MB/s of input rate is BUFFER_SECONDS / 1000;
#: state memory per million keys for stateful jobs:
STATE_GB_PER_MILLION_KEYS = 0.25

#: Partition count used when a task's output category does not exist yet
#: (the downstream consumer's provisioning normally creates it first).
DEFAULT_OUTPUT_PARTITIONS = 32

#: Disk per million keys for stateful jobs (spill + checkpointed state).
DISK_GB_PER_MILLION_KEYS = 1.0

#: Rate at which a stateful task restores its state from persistent
#: storage on (re)start, MB/s. "Stateful jobs ... must restore relevant
#: parts of the state on restarts" (paper section V-B) — restore time is
#: what makes stateful rescaling slower than stateless.
STATE_RESTORE_RATE_MB = 200.0


class StepPlan(NamedTuple):
    """The pure outcome of one task step — data, not side effects.

    Computed by :func:`plan_task_step` from a read-only view of the
    task's partitions and applied by :func:`apply_step_plan` (or, on a
    parallel data plane, computed on a worker's mirror and applied by the
    coordinator). A plan is a plain tuple of floats/ints so it pickles
    compactly and carries no references into simulation state.
    """

    #: False for the not-running / non-positive-dt path (rates zeroed).
    ran: bool
    #: True when state restore consumed the whole step.
    restore_only: bool
    processed_mb: float
    #: ``(seq, new_offset)`` per drained partition, where ``seq`` indexes
    #: the task's partition slice in its canonical (ascending) order.
    commits: Tuple[Tuple[int, float], ...]
    new_restore_remaining_mb: float
    last_rate_mb: float
    last_cpu_used: float
    crashed: bool


#: A no-op plan for tasks that are not running (or got a dt <= 0 step).
IDLE_PLAN = StepPlan(False, False, 0.0, (), 0.0, 0.0, 0.0, False)


def plan_memory_needed_gb(
    last_rate_mb: float,
    memory_overhead_gb: float,
    stateful: bool,
    state_key_cardinality: int,
    task_count: int,
) -> float:
    """Memory a task needs at ``last_rate_mb`` — the OOM-check input."""
    needed = (
        BASE_MEMORY_GB
        + memory_overhead_gb
        + last_rate_mb * BUFFER_SECONDS / 1000.0
    )
    if stateful and task_count > 0:
        keys_here = state_key_cardinality / task_count
        needed += (keys_here / 1e6) * STATE_GB_PER_MILLION_KEYS
    return needed


def plan_desired_cores(
    running: bool,
    dt: Seconds,
    restoring: bool,
    available_sum_mb: float,
    max_rate_mb: float,
    rate_per_thread_mb: float,
) -> float:
    """Pure form of :meth:`RunningTask.desired_cores`.

    ``available_sum_mb`` must be the left-to-right sum of
    ``partition.available(offset)`` over the task's partition slice in
    canonical order — the same accumulation order the method uses — so
    the float result is bit-identical wherever it is computed.
    """
    if not running or dt <= 0:
        return 0.0
    if restoring:
        return 1.0
    desired_mb = min(max_rate_mb * dt, available_sum_mb)
    if rate_per_thread_mb <= 0:
        return 0.0
    return (desired_mb / dt) / rate_per_thread_mb


def plan_task_step(
    entries: Sequence[Tuple[float, float]],
    dt: Seconds,
    throttle: float,
    restore_remaining_mb: float,
    max_rate_mb: float,
    rate_per_thread_mb: float,
    memory_overhead_gb: float,
    stateful: bool,
    state_key_cardinality: int,
    task_count: int,
    reserved_memory_gb: float,
    running: bool = True,
) -> StepPlan:
    """Plan one task step from a read-only partition view.

    ``entries`` is ``(readable_mb, committed_offset)`` per partition of
    the task's slice, in canonical (ascending partition index) order.
    Every arithmetic operation happens in exactly the order the original
    ``RunningTask.step`` used, so a plan computed from a mirror of the
    partition state is bit-identical to one computed in place.
    """
    if not running or dt <= 0:
        return IDLE_PLAN
    throttle = min(1.0, max(0.0, throttle))

    # Spend the step on state restore first; leftover time processes.
    if restore_remaining_mb > 1e-9:
        restored = min(restore_remaining_mb, STATE_RESTORE_RATE_MB * dt)
        restore_remaining_mb -= restored
        dt -= restored / STATE_RESTORE_RATE_MB
        if dt <= 1e-12:
            return StepPlan(
                True, True, 0.0, (), restore_remaining_mb, 0.0, 1.0, False
            )

    budget = max_rate_mb * dt * throttle
    processed = 0.0
    # Max-min fair water-filling across the owned partitions: visiting
    # them in ascending order of availability and giving each
    # ``budget / remaining`` guarantees every backlogged partition gets
    # its fair share AND all leftover capacity reaches the hot ones —
    # a skewed partition is never starved to ``capacity / n``.
    #
    # One hard ceiling remains: a partition is a serial stream with a
    # single reader thread, so no partition can be drained faster than
    # one thread's rate (``P · dt``). This is why shuffling work across
    # *partitions* — not just adding threads — matters for hot keys.
    per_partition_cap = rate_per_thread_mb * dt * throttle
    ordered = [
        (readable, seq, offset)
        for seq, (readable, offset) in enumerate(entries)
    ]
    ordered.sort(key=lambda entry: entry[0])
    commits = []
    remaining = len(ordered)
    for available, seq, offset in ordered:
        if budget <= 1e-12:
            break
        share = budget / remaining
        consumed = min(available, share, per_partition_cap)
        if consumed > 0:
            commits.append((seq, offset + consumed))
            processed += consumed
            budget -= consumed
        remaining -= 1

    last_rate_mb = processed / dt
    # CPU ∝ processed bytes; a saturated thread uses ~1 core.
    if rate_per_thread_mb > 0:
        last_cpu_used = last_rate_mb / rate_per_thread_mb
    else:
        last_cpu_used = 0.0
    crashed = reserved_memory_gb > 0 and (
        plan_memory_needed_gb(
            last_rate_mb,
            memory_overhead_gb,
            stateful,
            state_key_cardinality,
            task_count,
        )
        > reserved_memory_gb
    )
    return StepPlan(
        True,
        False,
        processed,
        tuple(commits),
        restore_remaining_mb,
        last_rate_mb,
        last_cpu_used,
        crashed,
    )


def apply_step_plan(
    task: "RunningTask", plan: StepPlan, scribe: ScribeBus
) -> float:
    """Apply a :class:`StepPlan` to authoritative state.

    The single write path for task-step effects: checkpoint commits,
    downstream publish, usage metrics, OOM state. Both the serial
    in-place ``step`` and the parallel data plane's coordinator run
    through here, so there is exactly one implementation to trust.
    """
    if not plan.ran:
        task.last_rate_mb = 0.0
        task.last_cpu_used = 0.0
        return 0.0
    task.restore_remaining_mb = plan.new_restore_remaining_mb
    if plan.restore_only:
        task.last_rate_mb = 0.0
        task.last_cpu_used = 1.0  # restore is I/O+CPU heavy
        return 0.0
    checkpoints = scribe.checkpoints
    partitions = task.partitions
    for seq, new_offset in plan.commits:
        checkpoints.commit(
            task.spec.job_id, partitions[seq].partition_id, new_offset
        )
    task.total_processed_mb += plan.processed_mb
    # Downstream publish: a job in the middle of a pipeline writes its
    # (reduced) output to another set of Scribe partitions.
    if plan.processed_mb > 0 and task.spec.output_category:
        output = scribe.ensure_category(
            task.spec.output_category, DEFAULT_OUTPUT_PARTITIONS
        )
        output.append(plan.processed_mb * task.spec.output_ratio)
    task.last_rate_mb = plan.last_rate_mb
    task.last_cpu_used = plan.last_cpu_used
    if plan.crashed:
        # cgroup kill: stats are preserved and read back on restart
        # (paper section V-A).
        task.state = TaskState.CRASHED
        task.oom_count += 1
    return plan.processed_mb


class RunningTask:
    """One task instance executing inside a Turbine container."""

    def __init__(
        self, spec: TaskSpec, scribe: ScribeBus, passive: bool = False
    ) -> None:
        self.spec = spec
        self._scribe = scribe
        self.state = TaskState.STANDBY if passive else TaskState.RUNNING
        #: True once a passive standby has been promoted to primary.
        self.promoted = False
        self.oom_count = 0
        #: Bytes (MB) processed since start, for per-task rate metrics.
        self.total_processed_mb = 0.0
        #: Most recent step's processing rate (MB/s) and cpu cores used.
        self.last_rate_mb = 0.0
        self.last_cpu_used = 0.0
        self._partitions: Optional[List[Partition]] = None
        #: Stateful tasks must re-load their state before processing.
        #: A passive standby tails the primary's checkpoint stream, so its
        #: state is already warm — promotion skips the restore entirely
        #: (that is the whole point of paying for the replica).
        self.restore_remaining_mb = (
            0.0 if passive else self._initial_state_mb()
        )

    def _initial_state_mb(self) -> float:
        if not self.spec.stateful or self.spec.task_count <= 0:
            return 0.0
        keys_here = self.spec.state_key_cardinality / self.spec.task_count
        return (keys_here / 1e6) * STATE_GB_PER_MILLION_KEYS * 1000.0

    @property
    def restoring(self) -> bool:
        """True while state restore is still in progress."""
        return self.restore_remaining_mb > 1e-9

    # ------------------------------------------------------------------
    # Partition ownership
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[Partition]:
        """The disjoint partition slice this task owns (lazy lookup)."""
        if self._partitions is None:
            if not self.spec.input_category:
                self._partitions = []
            else:
                category = self._scribe.get_category(self.spec.input_category)
                self._partitions = category.partition_slice(
                    self.spec.task_index, self.spec.task_count
                )
        return self._partitions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def max_rate_mb(self) -> float:
        """Maximum stable processing rate: ``P · k`` (equation 2)."""
        return self.spec.rate_per_thread_mb * self.spec.threads

    def desired_cores(self, dt: Seconds) -> float:
        """CPU cores this task would burn next step, given its backlog.

        Used by the Task Manager's contention model: the container's
        cgroup limit is shared, so when the sum of desired cores exceeds
        the container's CPU capacity, every task is throttled
        proportionally.
        """
        return plan_desired_cores(
            running=self.state == TaskState.RUNNING,
            dt=dt,
            restoring=self.restoring,
            available_sum_mb=(
                self.bytes_lagged_mb()
                if self.state == TaskState.RUNNING and dt > 0
                and not self.restoring
                else 0.0
            ),
            max_rate_mb=self.max_rate_mb(),
            rate_per_thread_mb=self.spec.rate_per_thread_mb,
        )

    def partition_entries(self) -> List[Tuple[float, float]]:
        """``(readable_mb, committed_offset)`` per owned partition, in
        canonical slice order — the read-only view :func:`plan_task_step`
        consumes."""
        checkpoints = self._scribe.checkpoints
        job_id = self.spec.job_id
        return [
            (
                partition.readable(
                    checkpoints.get(job_id, partition.partition_id)
                ),
                checkpoints.get(job_id, partition.partition_id),
            )
            for partition in self.partitions
        ]

    def plan_step(self, dt: Seconds, throttle: float = 1.0) -> StepPlan:
        """Plan one step against the live partition state (no effects)."""
        if self.state != TaskState.RUNNING or dt <= 0:
            return IDLE_PLAN
        return plan_task_step(
            entries=self.partition_entries(),
            dt=dt,
            throttle=throttle,
            restore_remaining_mb=self.restore_remaining_mb,
            max_rate_mb=self.max_rate_mb(),
            rate_per_thread_mb=self.spec.rate_per_thread_mb,
            memory_overhead_gb=self.spec.memory_overhead_gb,
            stateful=self.spec.stateful,
            state_key_cardinality=self.spec.state_key_cardinality,
            task_count=self.spec.task_count,
            reserved_memory_gb=self.spec.resources.memory_gb,
        )

    def step(self, dt: Seconds, throttle: float = 1.0) -> float:
        """Process up to ``max_rate · dt · throttle`` MB from the owned
        partitions.

        ``throttle`` in (0, 1] models cgroup CPU contention within the
        Turbine container. Returns MB processed. Updates checkpoints,
        usage metrics, and the task's OOM state. A crashed/stopped task
        processes nothing.

        Implemented as plan-then-apply: :func:`plan_task_step` is a pure
        function of a partition view, so a parallel data plane can run
        the planning on workers and this method stays the serial
        composition of the exact same two halves.
        """
        return apply_step_plan(self, self.plan_step(dt, throttle), self._scribe)

    def disk_needed_gb(self) -> float:
        """Local disk this task holds (stateful state spill + checkpoints).

        "For a join operator, the memory/disk size is proportional to the
        join window size, the degree of input matching, and the degree of
        input disorder" — modelled, like memory, as proportional to the
        per-task key cardinality.
        """
        if not self.spec.stateful or self.spec.task_count <= 0:
            return 0.0
        keys_here = self.spec.state_key_cardinality / self.spec.task_count
        return (keys_here / 1e6) * DISK_GB_PER_MILLION_KEYS

    def memory_needed_gb(self) -> float:
        """Memory this task needs at its current processing rate."""
        return plan_memory_needed_gb(
            self.last_rate_mb,
            self.spec.memory_overhead_gb,
            self.spec.stateful,
            self.spec.state_key_cardinality,
            self.spec.task_count,
        )

    def _check_memory(self) -> None:
        reserved = self.spec.resources.memory_gb
        if reserved > 0 and self.memory_needed_gb() > reserved:
            # cgroup kill: stats are preserved and read back on restart
            # (paper section V-A).
            self.state = TaskState.CRASHED
            self.oom_count += 1

    # ------------------------------------------------------------------
    # Lag accounting
    # ------------------------------------------------------------------
    def bytes_lagged_mb(self) -> float:
        """Unprocessed bytes across this task's partitions."""
        checkpoints = self._scribe.checkpoints
        return sum(
            partition.available(
                checkpoints.get(self.spec.job_id, partition.partition_id)
            )
            for partition in self.partitions
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop cleanly; the checkpoint already reflects all processed data."""
        self.state = TaskState.STOPPED

    def restart(self) -> None:
        """Restart after a crash; resumes from the committed checkpoints.

        A stateful task restores its persistent state again — restarts of
        stateful jobs are never free.
        """
        self.state = TaskState.RUNNING
        self.restore_remaining_mb = self._initial_state_mb()

    def promote(self) -> None:
        """Promote a passive standby to primary.

        The replica has been tailing the primary's checkpoint stream, so
        it starts processing immediately — no reboot clock, no state
        restore. Promoting a non-standby is a bug, not a no-op.
        """
        if self.state != TaskState.STANDBY:
            raise ValueError(
                f"cannot promote {self.spec.task_id}: state is "
                f"{self.state.value}, not standby"
            )
        self.state = TaskState.RUNNING
        self.promoted = True

    def __repr__(self) -> str:
        return (
            f"RunningTask({self.spec.task_id!r}, {self.state.value}, "
            f"rate={self.last_rate_mb:.2f}MB/s)"
        )
