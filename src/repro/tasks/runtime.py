"""The simulated task runtime — the data plane.

In production this is the stream-processing engine binary; here it is a
model that preserves the behaviours the control plane observes and reacts
to:

* each task drains its disjoint Scribe partition slice at a rate bounded by
  ``P · k`` (the per-thread max stable rate times the thread count,
  equation 2 of the paper) — tasks are the unit of processing capacity;
* CPU usage is proportional to bytes processed ("CPU consumption is
  approximately proportional to the size of input and output data",
  section V-B);
* memory usage is a base footprint (~0.4 GB, the floor visible in Fig. 5b)
  plus a few seconds of buffered input, plus — for stateful jobs — a
  key-cardinality term;
* a task whose memory need exceeds its reservation crashes with OOM, which
  the Task Manager reports to the scaler's symptom detector;
* progress is checkpointed per partition, so restarts resume exactly where
  the previous incarnation stopped.
"""

from __future__ import annotations

from typing import List, Optional

from repro.scribe.bus import ScribeBus
from repro.scribe.partition import Partition
from repro.tasks.spec import TaskSpec
from repro.types import Seconds, TaskState

#: Memory floor per task: "every task consumes at least ~400MB, regardless
#: of the input traffic volume" (paper section VI, Fig. 5b).
BASE_MEMORY_GB = 0.4

#: Seconds of input data a task buffers in memory ("a tailer holds a few
#: seconds worth of data in memory before processing and flushing").
BUFFER_SECONDS = 5.0

#: GB of input buffered per MB/s of input rate is BUFFER_SECONDS / 1000;
#: state memory per million keys for stateful jobs:
STATE_GB_PER_MILLION_KEYS = 0.25

#: Partition count used when a task's output category does not exist yet
#: (the downstream consumer's provisioning normally creates it first).
DEFAULT_OUTPUT_PARTITIONS = 32

#: Disk per million keys for stateful jobs (spill + checkpointed state).
DISK_GB_PER_MILLION_KEYS = 1.0

#: Rate at which a stateful task restores its state from persistent
#: storage on (re)start, MB/s. "Stateful jobs ... must restore relevant
#: parts of the state on restarts" (paper section V-B) — restore time is
#: what makes stateful rescaling slower than stateless.
STATE_RESTORE_RATE_MB = 200.0


class RunningTask:
    """One task instance executing inside a Turbine container."""

    def __init__(
        self, spec: TaskSpec, scribe: ScribeBus, passive: bool = False
    ) -> None:
        self.spec = spec
        self._scribe = scribe
        self.state = TaskState.STANDBY if passive else TaskState.RUNNING
        #: True once a passive standby has been promoted to primary.
        self.promoted = False
        self.oom_count = 0
        #: Bytes (MB) processed since start, for per-task rate metrics.
        self.total_processed_mb = 0.0
        #: Most recent step's processing rate (MB/s) and cpu cores used.
        self.last_rate_mb = 0.0
        self.last_cpu_used = 0.0
        self._partitions: Optional[List[Partition]] = None
        #: Stateful tasks must re-load their state before processing.
        #: A passive standby tails the primary's checkpoint stream, so its
        #: state is already warm — promotion skips the restore entirely
        #: (that is the whole point of paying for the replica).
        self.restore_remaining_mb = (
            0.0 if passive else self._initial_state_mb()
        )

    def _initial_state_mb(self) -> float:
        if not self.spec.stateful or self.spec.task_count <= 0:
            return 0.0
        keys_here = self.spec.state_key_cardinality / self.spec.task_count
        return (keys_here / 1e6) * STATE_GB_PER_MILLION_KEYS * 1000.0

    @property
    def restoring(self) -> bool:
        """True while state restore is still in progress."""
        return self.restore_remaining_mb > 1e-9

    # ------------------------------------------------------------------
    # Partition ownership
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[Partition]:
        """The disjoint partition slice this task owns (lazy lookup)."""
        if self._partitions is None:
            if not self.spec.input_category:
                self._partitions = []
            else:
                category = self._scribe.get_category(self.spec.input_category)
                self._partitions = category.partition_slice(
                    self.spec.task_index, self.spec.task_count
                )
        return self._partitions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def max_rate_mb(self) -> float:
        """Maximum stable processing rate: ``P · k`` (equation 2)."""
        return self.spec.rate_per_thread_mb * self.spec.threads

    def desired_cores(self, dt: Seconds) -> float:
        """CPU cores this task would burn next step, given its backlog.

        Used by the Task Manager's contention model: the container's
        cgroup limit is shared, so when the sum of desired cores exceeds
        the container's CPU capacity, every task is throttled
        proportionally.
        """
        if self.state != TaskState.RUNNING or dt <= 0:
            return 0.0
        if self.restoring:
            return 1.0
        desired_mb = min(self.max_rate_mb() * dt, self.bytes_lagged_mb())
        if self.spec.rate_per_thread_mb <= 0:
            return 0.0
        return (desired_mb / dt) / self.spec.rate_per_thread_mb

    def step(self, dt: Seconds, throttle: float = 1.0) -> float:
        """Process up to ``max_rate · dt · throttle`` MB from the owned
        partitions.

        ``throttle`` in (0, 1] models cgroup CPU contention within the
        Turbine container. Returns MB processed. Updates checkpoints,
        usage metrics, and the task's OOM state. A crashed/stopped task
        processes nothing.
        """
        if self.state != TaskState.RUNNING or dt <= 0:
            self.last_rate_mb = 0.0
            self.last_cpu_used = 0.0
            return 0.0
        throttle = min(1.0, max(0.0, throttle))

        # Spend the step on state restore first; leftover time processes.
        if self.restoring:
            restored = min(self.restore_remaining_mb, STATE_RESTORE_RATE_MB * dt)
            self.restore_remaining_mb -= restored
            dt -= restored / STATE_RESTORE_RATE_MB
            if dt <= 1e-12:
                self.last_rate_mb = 0.0
                self.last_cpu_used = 1.0  # restore is I/O+CPU heavy
                return 0.0

        budget = self.max_rate_mb() * dt * throttle
        processed = 0.0
        checkpoints = self._scribe.checkpoints
        # Max-min fair water-filling across the owned partitions: visiting
        # them in ascending order of availability and giving each
        # ``budget / remaining`` guarantees every backlogged partition gets
        # its fair share AND all leftover capacity reaches the hot ones —
        # a skewed partition is never starved to ``capacity / n``.
        #
        # One hard ceiling remains: a partition is a serial stream with a
        # single reader thread, so no partition can be drained faster than
        # one thread's rate (``P · dt``). This is why shuffling work across
        # *partitions* — not just adding threads — matters for hot keys.
        per_partition_cap = self.spec.rate_per_thread_mb * dt * throttle
        entries = []
        for partition in self.partitions:
            offset = checkpoints.get(self.spec.job_id, partition.partition_id)
            entries.append((partition.readable(offset), partition, offset))
        entries.sort(key=lambda entry: entry[0])
        remaining = len(entries)
        for available, partition, offset in entries:
            if budget <= 1e-12:
                break
            share = budget / remaining
            consumed = min(available, share, per_partition_cap)
            if consumed > 0:
                checkpoints.commit(
                    self.spec.job_id, partition.partition_id, offset + consumed
                )
                processed += consumed
                budget -= consumed
            remaining -= 1

        self.total_processed_mb += processed
        # Downstream publish: a job in the middle of a pipeline writes its
        # (reduced) output to another set of Scribe partitions.
        if processed > 0 and self.spec.output_category:
            output = self._scribe.ensure_category(
                self.spec.output_category, DEFAULT_OUTPUT_PARTITIONS
            )
            output.append(processed * self.spec.output_ratio)
        self.last_rate_mb = processed / dt
        # CPU ∝ processed bytes; a saturated thread uses ~1 core.
        if self.spec.rate_per_thread_mb > 0:
            self.last_cpu_used = self.last_rate_mb / self.spec.rate_per_thread_mb
        else:
            self.last_cpu_used = 0.0

        self._check_memory()
        return processed

    def disk_needed_gb(self) -> float:
        """Local disk this task holds (stateful state spill + checkpoints).

        "For a join operator, the memory/disk size is proportional to the
        join window size, the degree of input matching, and the degree of
        input disorder" — modelled, like memory, as proportional to the
        per-task key cardinality.
        """
        if not self.spec.stateful or self.spec.task_count <= 0:
            return 0.0
        keys_here = self.spec.state_key_cardinality / self.spec.task_count
        return (keys_here / 1e6) * DISK_GB_PER_MILLION_KEYS

    def memory_needed_gb(self) -> float:
        """Memory this task needs at its current processing rate."""
        needed = (
            BASE_MEMORY_GB
            + self.spec.memory_overhead_gb
            + self.last_rate_mb * BUFFER_SECONDS / 1000.0
        )
        if self.spec.stateful and self.spec.task_count > 0:
            keys_here = self.spec.state_key_cardinality / self.spec.task_count
            needed += (keys_here / 1e6) * STATE_GB_PER_MILLION_KEYS
        return needed

    def _check_memory(self) -> None:
        reserved = self.spec.resources.memory_gb
        if reserved > 0 and self.memory_needed_gb() > reserved:
            # cgroup kill: stats are preserved and read back on restart
            # (paper section V-A).
            self.state = TaskState.CRASHED
            self.oom_count += 1

    # ------------------------------------------------------------------
    # Lag accounting
    # ------------------------------------------------------------------
    def bytes_lagged_mb(self) -> float:
        """Unprocessed bytes across this task's partitions."""
        checkpoints = self._scribe.checkpoints
        return sum(
            partition.available(
                checkpoints.get(self.spec.job_id, partition.partition_id)
            )
            for partition in self.partitions
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop cleanly; the checkpoint already reflects all processed data."""
        self.state = TaskState.STOPPED

    def restart(self) -> None:
        """Restart after a crash; resumes from the committed checkpoints.

        A stateful task restores its persistent state again — restarts of
        stateful jobs are never free.
        """
        self.state = TaskState.RUNNING
        self.restore_remaining_mb = self._initial_state_mb()

    def promote(self) -> None:
        """Promote a passive standby to primary.

        The replica has been tailing the primary's checkpoint stream, so
        it starts processing immediately — no reboot clock, no state
        restore. Promoting a non-standby is a bug, not a no-op.
        """
        if self.state != TaskState.STANDBY:
            raise ValueError(
                f"cannot promote {self.spec.task_id}: state is "
                f"{self.state.value}, not standby"
            )
        self.state = TaskState.RUNNING
        self.promoted = True

    def __repr__(self) -> str:
        return (
            f"RunningTask({self.spec.task_id!r}, {self.state.value}, "
            f"rate={self.last_rate_mb:.2f}MB/s)"
        )
