"""The Shard Manager.

Facebook's Shard Manager ("similar to Google's Slicer", paper section IV-A)
offers balanced assignment of shards to containers. This implementation
covers the three roles the paper describes:

* **Placement** — owns the shard-to-container mapping and regenerates it
  periodically (default every 30 minutes) from the latest shard loads via
  the bin-packing balancer.
* **Movement** — executes DROP_SHARD/ADD_SHARD against the source and
  destination Task Managers, dropping before adding so two containers never
  run the same shard. Requests that "take too long" trigger a forced kill.
* **Failure handling** — a bi-directional heartbeat protocol: a container
  whose heartbeat is older than the fail-over interval (60 s) is declared
  dead and its shards are re-placed. Task Managers time their connections
  out *earlier* (40 s) and reboot, which is what prevents split-brain
  duplicate tasks (section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.errors import (
    DegradedModeError,
    PlacementError,
    ServiceUnavailableError,
)
from repro.obs.bounded import BoundedList
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer
from repro.resilience import Dependency, RetryPolicy
from repro.sim.engine import Engine, Timer
from repro.tasks.balancer import (
    DEFAULT_BAND,
    PlacementCache,
    compute_assignment,
)
from repro.tasks.shard import all_shard_ids
from repro.types import ContainerId, Seconds, ShardId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tasks.manager import TaskManager

#: "default is 60 seconds" — heartbeat age at which a container is
#: declared dead.
FAILOVER_INTERVAL: Seconds = 60.0

#: How often the Shard Manager scans for stale heartbeats.
FAILOVER_CHECK_INTERVAL: Seconds = 10.0

#: "30 minutes for most of our tiers" — mapping regeneration period.
REBALANCE_INTERVAL: Seconds = 1800.0

#: Load assumed for a shard that has never reported (placement still needs
#: a value); tiny but non-zero so empty shards spread out.
DEFAULT_SHARD_LOAD = ResourceVector(cpu=0.01, memory_gb=0.05)

#: Retained :class:`FailoverEvent` history. Health reports only look one
#: hour back and long soaks fail containers constantly, so the audit list
#: must be bounded.
DEFAULT_FAILOVER_RETENTION = 10_000


@dataclass
class FailoverEvent:
    """Record of one container fail-over (for tests and benchmarks)."""

    time: Seconds
    container_id: ContainerId
    shards_moved: int


class ShardManager:
    """Owns shard placement, movement, and container failure detection."""

    def __init__(
        self,
        engine: Engine,
        num_shards: int,
        failover_interval: Seconds = FAILOVER_INTERVAL,
        rebalance_interval: Seconds = REBALANCE_INTERVAL,
        band: float = DEFAULT_BAND,
        tracer: Optional[Tracer] = None,
        telemetry: Optional[Telemetry] = None,
        failover_retention: int = DEFAULT_FAILOVER_RETENTION,
    ) -> None:
        if num_shards <= 0:
            raise PlacementError(f"num_shards must be positive: {num_shards}")
        self._engine = engine
        self.num_shards = num_shards
        self.failover_interval = failover_interval
        self.rebalance_interval = rebalance_interval
        self.band = band
        #: The authoritative mapping.
        self.assignment: Dict[ShardId, ContainerId] = {}
        #: Latest reported loads.
        self.shard_loads: Dict[ShardId, ResourceVector] = {}
        #: Regional placement requirements per shard (section IV-B:
        #: "satisfying regional constraints").
        self.shard_regions: Dict[ShardId, str] = {}
        self._managers: Dict[ContainerId, "TaskManager"] = {}
        self._heartbeats: Dict[ContainerId, Seconds] = {}
        self._tracer = tracer or NULL_TRACER
        self._telemetry = telemetry or NULL_TELEMETRY
        self.failover_events: List[FailoverEvent] = BoundedList(
            maxlen=failover_retention
        )
        self.rebalance_count = 0
        #: When False the Shard Manager is down: no placement changes, no
        #: failovers; Task Managers keep their shards (degraded mode).
        #: Set through the ``available`` property so recovery resets the
        #: heartbeat clocks (see the setter).
        self._available = True
        #: When False, periodic rebalancing is skipped (the Fig. 7
        #: experiment toggles this).
        self.balancing_enabled = True
        #: Containers administratively drained (e.g. by the slow-node
        #: detector): they stay registered and heartbeating — a gray node
        #: is *not* dead, and unregistering it would spuriously arm its
        #: 40 s reboot clock — but they receive no shard placement until
        #: un-drained.
        self.drained: set = set()
        #: Placement decision cache (exactly equivalent to from-scratch
        #: computation; see repro.tasks.balancer). Disable to force every
        #: round through the full algorithm — results are identical either
        #: way, which tests/integration/test_determinism.py asserts
        #: byte-for-byte.
        self.placement_cache_enabled = True
        self._placement_cache = PlacementCache(telemetry=telemetry)
        self._timers: List[Timer] = []
        #: Resilience edge toward the Task Managers it commands. No
        #: breaker and no auto-retry: a timed-out DROP_SHARD/ADD_SHARD has
        #: its own paper-mandated consequence (force-kill / fail-over),
        #: so the edge only counts and classifies.
        self._manager_dep = Dependency(
            "shard-manager.task-manager",
            clock=lambda: self._engine.now,
            telemetry=self._telemetry,
            retry=RetryPolicy(max_attempts=1, retry_on=()),
        )

    # ------------------------------------------------------------------
    # Availability (chaos hooks)
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        return self._available

    @available.setter
    def available(self, value: bool) -> None:
        value = bool(value)
        if value and not self._available:
            # Recovery grace: every heartbeat went stale during the
            # outage through no fault of the containers. Reset the clocks
            # so recovery does not trigger a spurious mass fail-over;
            # genuinely dead containers miss their next heartbeat and are
            # detected one failover interval later.
            now = self._engine.now
            for container_id in self._heartbeats:
                self._heartbeats[container_id] = now
        self._available = value

    def fail(self) -> None:
        """Begin an availability window: heartbeats, registrations, and
        load reports raise; placement and failovers pause."""
        self.available = False

    def recover(self) -> None:
        """End the availability window (with heartbeat grace)."""
        self.available = True

    # ------------------------------------------------------------------
    # Container registration and heartbeats
    # ------------------------------------------------------------------
    def register_container(self, manager: "TaskManager") -> None:
        """A new (or rebooted-and-reconnected) container joins the tier."""
        if not self.available:
            raise ServiceUnavailableError("Shard Manager is unavailable")
        self._managers[manager.container_id] = manager
        self._heartbeats[manager.container_id] = self._engine.now

    def unregister_container(self, container_id: ContainerId) -> None:
        """A container leaves the tier (decommission)."""
        self._managers.pop(container_id, None)
        self._heartbeats.pop(container_id, None)

    def heartbeat(self, container_id: ContainerId) -> None:
        """Record a Task Manager heartbeat.

        Raises :class:`ServiceUnavailableError` when the Shard Manager is
        down — a service-level outage that affects every container
        equally, so Task Managers keep their shards and do *not* start
        their 40-second reboot clock. Raises plain
        :class:`DegradedModeError` when the container is unknown — from
        this container's point of view its session is gone, which *is*
        the split-brain-risk case that must keep the reboot clock armed.
        """
        if not self.available:
            raise ServiceUnavailableError("Shard Manager is unavailable")
        if container_id not in self._managers:
            raise DegradedModeError(
                f"container {container_id} is not registered"
            )
        self._heartbeats[container_id] = self._engine.now

    def shards_of(self, container_id: ContainerId) -> List[ShardId]:
        """Shards currently assigned to a container (sorted)."""
        return sorted(
            shard_id
            for shard_id, owner in self.assignment.items()
            if owner == container_id
        )

    # ------------------------------------------------------------------
    # Load reports
    # ------------------------------------------------------------------
    def report_shard_load(self, shard_id: ShardId, load: ResourceVector) -> None:
        """Receive an aggregated shard load from a Task Manager."""
        if not self.available:
            raise ServiceUnavailableError("Shard Manager is unavailable")
        self.shard_loads[shard_id] = load

    def pin_shard_to_region(self, shard_id: ShardId, region: str) -> None:
        """Require a shard to live on containers of the given region."""
        self.shard_regions[shard_id] = region

    def unpin_shard(self, shard_id: ShardId) -> None:
        self.shard_regions.pop(shard_id, None)

    # ------------------------------------------------------------------
    # Periodic operation
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the failover-check and rebalance timers."""
        if self._timers:
            return
        self._timers.append(
            self._engine.every(
                FAILOVER_CHECK_INTERVAL, self.check_failovers,
                name="shard-manager-failover",
            )
        )
        self._timers.append(
            self._engine.every(
                self.rebalance_interval, self.rebalance,
                name="shard-manager-rebalance",
            )
        )

    def stop(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def initial_placement(self) -> None:
        """Assign every shard in the tier to the registered containers."""
        self.rebalance(initial=True)

    def rebalance(self, initial: bool = False) -> None:
        """Regenerate the mapping from the latest loads and move shards.

        Skipped when the Shard Manager is degraded or balancing is
        disabled (unless this is the initial placement).
        """
        if not self.available:
            return
        if not self.balancing_enabled and not initial:
            return
        live = self._live_containers()
        if not live:
            return
        capacities = {
            container_id: manager.capacity
            for container_id, manager in live.items()
        }
        loads = {
            shard_id: self.shard_loads.get(shard_id, DEFAULT_SHARD_LOAD)
            for shard_id in all_shard_ids(self.num_shards)
        }
        current = {
            shard_id: owner
            for shard_id, owner in self.assignment.items()
            if owner in live
        }
        started_wall = perf_counter() if self._telemetry.enabled else 0.0
        change = self._compute_placement(
            loads, capacities, current,
            container_regions={
                cid: manager.region for cid, manager in live.items()
            },
        )
        if self._telemetry.enabled:
            self._telemetry.inc("balancer.rounds")
            self._telemetry.observe(
                "balancer.wall_ms", (perf_counter() - started_wall) * 1000.0
            )
            self._telemetry.observe("balancer.moves", float(len(change.moves)))
        self.rebalance_count += 1
        round_event: Optional[TraceEvent] = None
        if change.moves:
            round_event = self._tracer.record(
                "shard-manager",
                "initial-placement" if initial else "rebalance",
                moves=len(change.moves),
            )
        for shard_id, source, destination in change.moves:
            self._move_shard(shard_id, source, destination, parent=round_event)

    def _compute_placement(self, loads, capacities, current, container_regions):
        """Run the balancer, through the decision cache when enabled."""
        if self.placement_cache_enabled:
            return self._placement_cache.compute(
                loads, capacities, current=current, band=self.band,
                container_regions=container_regions,
                shard_regions=self.shard_regions,
            )
        return compute_assignment(
            loads, capacities, current=current, band=self.band,
            container_regions=container_regions,
            shard_regions=self.shard_regions,
        )

    def _move_shard(
        self,
        shard_id: ShardId,
        source: Optional[ContainerId],
        destination: ContainerId,
        parent: Optional[TraceEvent] = None,
        jobs: Optional[List[str]] = None,
    ) -> None:
        """The DROP_SHARD → update map → ADD_SHARD protocol (section IV-A2)."""
        source_manager = self._managers.get(source) if source else None
        move_event: Optional[TraceEvent] = None
        if self._tracer.enabled:
            # Jobs must be collected *before* the drop empties the source.
            if jobs is None:
                jobs = self._jobs_on_shard(source_manager, shard_id)
            move_event = self._tracer.record(
                "shard-manager", "shard-move",
                parent=parent, shard=shard_id,
                origin=source or "", destination=destination, jobs=jobs,
                ops=(["DROP_SHARD", "ADD_SHARD"] if source
                     else ["ADD_SHARD"]),
            )
        if source_manager is not None and source_manager.alive:
            try:
                self._manager_dep.call(source_manager.drop_shard, shard_id)
            except TimeoutError:
                # "If a DROP_SHARD request takes too long, Turbine
                # forcefully kills the corresponding tasks."
                source_manager.force_kill_shard(shard_id)
        self.assignment[shard_id] = destination
        destination_manager = self._managers.get(destination)
        if destination_manager is not None and destination_manager.alive:
            if move_event is not None:
                # Tasks the ADD_SHARD starts parent onto this movement.
                self._tracer.set_shard_context(shard_id, move_event)
            try:
                self._manager_dep.call(destination_manager.add_shard, shard_id)
            except TimeoutError:
                # "... or initiates a Turbine container fail-over process."
                self._fail_over_container(destination)
            finally:
                if move_event is not None:
                    self._tracer.clear_shard_context(shard_id)

    @staticmethod
    def _jobs_on_shard(
        manager: Optional["TaskManager"], shard_id: ShardId
    ) -> List[str]:
        """Distinct job ids with tasks of the shard on the manager."""
        if manager is None:
            return []
        return sorted({
            task.spec.job_id
            for task_id, task in manager.tasks.items()
            if manager._task_shard.get(task_id) == shard_id
        })

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def check_failovers(self) -> None:
        """Declare containers with stale heartbeats dead and re-place
        their shards."""
        if not self.available:
            return
        now = self._engine.now
        stale = [
            container_id
            for container_id, last in self._heartbeats.items()
            if now - last >= self.failover_interval
        ]
        for container_id in stale:
            self._fail_over_container(container_id)

    def _fail_over_container(self, container_id: ContainerId) -> None:
        """Move every shard off a failed container onto live ones.

        If the container is still alive (an unresponsive-but-running
        Turbine container, e.g. a timed-out ADD_SHARD), it is rebooted
        first so its old tasks stop before their shards start elsewhere —
        otherwise the fail-over itself would create duplicates.
        """
        manager = self._managers.get(container_id)
        orphaned = self.shards_of(container_id)
        # Per-shard job ids, captured before the reboot wipes the tasks.
        shard_jobs: Dict[ShardId, List[str]] = {}
        failover_event: Optional[TraceEvent] = None
        if self._tracer.enabled:
            shard_jobs = {
                shard_id: self._jobs_on_shard(manager, shard_id)
                for shard_id in orphaned
            }
            failover_event = self._tracer.record(
                "shard-manager", "failover",
                container=container_id, shards=len(orphaned),
                jobs=sorted({
                    job for jobs in shard_jobs.values() for job in jobs
                }),
            )
        self._telemetry.inc("shard_manager.failovers")
        if manager is not None and manager.alive:
            manager.reboot()
        self.unregister_container(container_id)
        live = self._live_containers()
        if not live:
            # No capacity anywhere: shards stay mapped to the dead
            # container and will be picked up at the next rebalance.
            self.failover_events.append(
                FailoverEvent(self._engine.now, container_id, 0)
            )
            return
        capacities = {
            cid: manager.capacity for cid, manager in live.items()
        }
        loads = {
            shard_id: self.shard_loads.get(shard_id, DEFAULT_SHARD_LOAD)
            for shard_id in orphaned
        }
        current_live_loads: Dict[ShardId, ContainerId] = {
            shard_id: owner
            for shard_id, owner in self.assignment.items()
            if owner in live
        }
        # Place only the orphaned shards; existing placements are the
        # starting load of each container.
        placement = self._compute_placement(
            {**{s: self.shard_loads.get(s, DEFAULT_SHARD_LOAD)
                for s in current_live_loads}, **loads},
            capacities,
            current_live_loads,
            container_regions={
                cid: manager.region for cid, manager in live.items()
            },
        )
        moved = 0
        for shard_id in orphaned:
            destination = placement.assignment[shard_id]
            self._move_shard(
                shard_id, None, destination,
                parent=failover_event, jobs=shard_jobs.get(shard_id),
            )
            moved += 1
        self.failover_events.append(
            FailoverEvent(self._engine.now, container_id, moved)
        )

    # ------------------------------------------------------------------
    # Administrative drain (gray-failure mitigation)
    # ------------------------------------------------------------------
    def drain(self, container_id: ContainerId) -> int:
        """Gracefully move every shard off a container and stop placing
        new ones there.

        The container keeps its registration and heartbeats (it is slow,
        not dead — see :mod:`repro.tasks.slow_node`), so neither its
        reboot clock nor the fail-over detector fires. Returns the number
        of shards moved.
        """
        if not self.available:
            return 0
        self.drained.add(container_id)
        orphaned = self.shards_of(container_id)
        if not orphaned:
            return 0
        live = self._live_containers()
        if not live:
            # Nowhere to move the shards: keep serving on the gray node
            # (slow beats stopped) and retry when capacity returns.
            self.drained.discard(container_id)
            return 0
        capacities = {
            cid: manager.capacity for cid, manager in live.items()
        }
        current = {
            shard_id: owner
            for shard_id, owner in self.assignment.items()
            if owner in live
        }
        placement = self._compute_placement(
            {**{s: self.shard_loads.get(s, DEFAULT_SHARD_LOAD)
                for s in current},
             **{s: self.shard_loads.get(s, DEFAULT_SHARD_LOAD)
                for s in orphaned}},
            capacities,
            current,
            container_regions={
                cid: manager.region for cid, manager in live.items()
            },
        )
        drain_event: Optional[TraceEvent] = None
        if self._tracer.enabled:
            drain_event = self._tracer.record(
                "shard-manager", "drain",
                container=container_id, shards=len(orphaned),
            )
        moved = 0
        for shard_id in orphaned:
            self._move_shard(
                shard_id, container_id, placement.assignment[shard_id],
                parent=drain_event,
            )
            moved += 1
        self._telemetry.inc("shard_manager.drains")
        return moved

    def undrain(self, container_id: ContainerId) -> None:
        """Return a drained container to the placement pool."""
        self.drained.discard(container_id)

    def live_managers(self) -> List["TaskManager"]:
        """All live registered Task Managers (sorted by container id)."""
        live = self._live_containers()
        return [live[container_id] for container_id in sorted(live)]

    def _live_containers(self) -> Dict[ContainerId, "TaskManager"]:
        return {
            container_id: manager
            for container_id, manager in self._managers.items()
            if manager.alive and container_id not in self.drained
        }

    def __repr__(self) -> str:
        return (
            f"ShardManager(shards={self.num_shards}, "
            f"containers={len(self._managers)})"
        )
