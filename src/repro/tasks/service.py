"""The Task Service.

"Internally, the Task Service retrieves the list of jobs from the Job Store
and dynamically generates these task specs considering the job's
parallelism level and by applying other template substitutions." (paper
section IV). Task Managers fetch the *full snapshot* of specs; the service
caches the generated snapshot with a 90-second TTL ("the Task Service
caching expires (90 seconds)", section IV-D), which is one of the three
delays that add up to the paper's 1–2 minute end-to-end scheduling latency.

Spec state is updated by the State Syncer through the
:class:`~repro.tasks.actuator.TurbineActuator` as plans execute, so the
snapshot always reflects *committed* (or committing) state, never a
half-applied plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ServiceUnavailableError
from repro.jobs.configs import Config
from repro.sim.engine import Engine
from repro.tasks.spec import TaskSpec
from repro.types import JobId, Seconds, TaskId

#: Snapshot cache TTL (paper section IV-D).
CACHE_TTL: Seconds = 90.0


class TaskService:
    """Generates and serves task-spec snapshots."""

    def __init__(self, engine: Engine, cache_ttl: Seconds = CACHE_TTL) -> None:
        self._engine = engine
        self._cache_ttl = cache_ttl
        #: Authoritative spec table, job -> list of specs (index order).
        self._specs: Dict[JobId, List[TaskSpec]] = {}
        #: Cached snapshot + its build time and version.
        self._cached_snapshot: Optional[Dict[TaskId, TaskSpec]] = None
        self._cached_at: Seconds = -float("inf")
        self._build_counter = 0
        self._version = 0
        self._shard_index: Dict[str, Dict[TaskId, TaskSpec]] = {}
        self._shard_index_key: Optional[tuple] = None
        #: When False the service is down; managers fall back to their own
        #: cached snapshots (degraded mode, section IV-D).
        self.available = True

    # ------------------------------------------------------------------
    # Availability (chaos hooks)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Begin an availability window: snapshot serving raises and
        managers run on their last-known-good snapshots."""
        self.available = False

    def recover(self) -> None:
        """End the availability window."""
        self.available = True

    # ------------------------------------------------------------------
    # Spec table updates (called by the actuator)
    # ------------------------------------------------------------------
    def set_job_specs(
        self, job_id: JobId, config: Config, urgent: bool = False
    ) -> List[TaskSpec]:
        """(Re)generate the specs of one job from its configuration.

        ``urgent=True`` busts the snapshot cache so the change is visible
        at the managers' next refresh. The State Syncer uses it for the
        *structural* phase of a complex synchronization — the job's tasks
        were just stopped, and leaving them down for a full cache TTL
        would double the paper's restart gap. Ordinary settings pushes
        (package releases etc.) stay lazy: they propagate when the cache
        expires, which is exactly the section IV-D propagation chain.

        A non-positive parallelism is a malformed configuration, not a
        request for zero tasks — rejecting it here makes the State
        Syncer's plan fail loudly (and eventually quarantine the job)
        instead of silently unscheduling every task.
        """
        task_count = int(config.get("task_count", 1))
        if task_count < 1:
            from repro.errors import SyncError

            raise SyncError(
                f"job {job_id} has invalid task_count {task_count}"
            )
        specs = [
            TaskSpec.from_job_config(job_id, index, config)
            for index in range(task_count)
        ]
        self._specs[job_id] = specs
        self._invalidate(urgent)
        return specs

    def remove_job(self, job_id: JobId) -> None:
        """Drop a stopped/deleted job's specs (always urgent — a stale
        cached snapshot must not resurrect stopped tasks)."""
        if self._specs.pop(job_id, None) is not None:
            self._invalidate(urgent=True)

    def _invalidate(self, urgent: bool = False) -> None:
        # Lazy by default: the cached snapshot is NOT dropped, so the
        # change becomes visible when the TTL lapses ("task updates can be
        # reflected in runtime after the Task Service caching expires (90
        # seconds) plus synchronization time", section IV-D). The cache
        # trades freshness for fan-out capacity.
        self._version += 1
        if urgent:
            self._cached_snapshot = None

    # ------------------------------------------------------------------
    # Snapshot serving
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone version of the spec table (bumped on every change)."""
        return self._version

    def snapshot(self) -> Dict[TaskId, TaskSpec]:
        """The full task-spec snapshot, served from cache within the TTL.

        Raises :class:`ServiceUnavailableError` when the service is down —
        callers keep their previous snapshot in that case.
        """
        if not self.available:
            raise ServiceUnavailableError("Task Service is unavailable")
        now = self._engine.now
        if (
            self._cached_snapshot is not None
            and now - self._cached_at < self._cache_ttl
        ):
            return self._cached_snapshot
        snapshot = {
            spec.task_id: spec
            for specs in self._specs.values()
            for spec in specs
        }
        self._cached_snapshot = snapshot
        self._cached_at = now
        self._build_counter += 1
        return snapshot

    def shard_index(
        self, num_shards: int
    ) -> Dict[str, Dict[TaskId, TaskSpec]]:
        """The snapshot grouped by shard id: ``{shard: {task_id: spec}}``.

        In the paper every Task Manager computes the MD5 grouping locally;
        since the computation is a pure function of the (shared) snapshot,
        this memoizes one grouping per snapshot version and lets all
        managers read it — semantically identical, much cheaper at scale.
        """
        snapshot = self.snapshot()  # raises when degraded
        # Memoize per snapshot *build* (not table version): within the
        # TTL every manager sees the same cached snapshot and grouping.
        key = (self._build_counter, num_shards)
        if self._shard_index_key != key:
            from repro.tasks.shard import shard_id_for_task

            index: Dict[str, Dict[TaskId, TaskSpec]] = {}
            for task_id, spec in snapshot.items():
                shard = shard_id_for_task(task_id, num_shards)
                index.setdefault(shard, {})[task_id] = spec
            self._shard_index = index
            self._shard_index_key = key
        return self._shard_index

    def specs_of(self, job_id: JobId) -> List[TaskSpec]:
        """The current specs of one job (empty when unknown)."""
        return list(self._specs.get(job_id, []))

    def job_ids(self) -> List[JobId]:
        """Jobs with at least one spec, sorted."""
        return sorted(self._specs)

    def __repr__(self) -> str:
        total = sum(len(specs) for specs in self._specs.values())
        return f"TaskService(jobs={len(self._specs)}, tasks={total})"
