"""The Turbine actuator: Task Management's implementation of
:class:`~repro.jobs.plan.TaskActuator`.

This is the seam between *what to run* and *where to run*: the State Syncer
executes plans against this object without knowing anything about shards or
containers. Every method is idempotent, as the plan contract requires.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SyncError
from repro.jobs.configs import Config
from repro.jobs.plan import TaskActuator
from repro.obs.trace import NULL_TRACER, SLOT_SYNC, Tracer
from repro.scribe.bus import ScribeBus
from repro.tasks.service import TaskService
from repro.tasks.shard_manager import ShardManager
from repro.types import JobId, TaskState


class TurbineActuator(TaskActuator):
    """Executes syncer plans against the Task Service and Task Managers."""

    def __init__(
        self,
        task_service: TaskService,
        shard_manager: ShardManager,
        scribe: ScribeBus,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._service = task_service
        self._shard_manager = shard_manager
        self._scribe = scribe
        self._tracer = tracer or NULL_TRACER

    def known_job_ids(self):
        """Jobs with live task specs (used by the syncer's GC sweep)."""
        return self._service.job_ids()

    # ------------------------------------------------------------------
    # Simple synchronization
    # ------------------------------------------------------------------
    def apply_settings(self, job_id: JobId, config: Config) -> None:
        """Regenerate the job's task specs with the new settings.

        Propagation to the running tasks is eventual: Task Managers pick
        up the new specs on their next refresh (the paper's "the package
        setting will eventually propagate to the impacted tasks").
        """
        self._service.set_job_specs(job_id, config)
        self._tracer.record(
            "task-service", "specs-updated", job_id=job_id,
            parent=self._tracer.peek_context(job_id, SLOT_SYNC),
            task_count=int(config.get("task_count", 1)),
        )

    # ------------------------------------------------------------------
    # Complex synchronization phases
    # ------------------------------------------------------------------
    def stop_tasks(self, job_id: JobId) -> None:
        """Phase 1: remove the job's specs and stop its tasks everywhere.

        Removing the specs first guarantees no Task Manager restarts an old
        task from a snapshot refresh while the plan is in flight.
        """
        self._service.remove_job(job_id)
        stopped = 0
        for manager in self._shard_manager.live_managers():
            stopped += manager.stop_job_tasks(job_id)
        self._tracer.record(
            "task-service", "tasks-stopped", job_id=job_id,
            parent=self._tracer.peek_context(job_id, SLOT_SYNC),
            stopped=stopped,
        )

    def redistribute_checkpoints(
        self, job_id: JobId, old_task_count: int, new_task_count: int
    ) -> None:
        """Phase 2: re-map checkpoints to the new task layout.

        Checkpoints here are keyed by *partition*, not by task, so the
        redistribution the paper performs explicitly is a pure re-slicing:
        the new tasks' partition slices resume from the per-partition
        offsets automatically. What this phase must still guarantee is
        ordering — it runs only when every old task is fully stopped,
        otherwise a straggler could advance a checkpoint mid-handoff.
        """
        still_running = [
            task.spec.task_id
            for manager in self._shard_manager.live_managers()
            for task in manager.tasks.values()
            if task.spec.job_id == job_id and task.state == TaskState.RUNNING
        ]
        if still_running:
            raise SyncError(
                f"cannot redistribute checkpoints of {job_id}: tasks still "
                f"running: {still_running[:5]}"
            )

    def start_tasks(self, job_id: JobId, task_count: int, config: Config) -> None:
        """Phase 3: publish the new specs; tasks start on manager refresh.

        The 1–2 minute end-to-end scheduling latency the paper quotes is
        exactly this propagation chain (State Syncer round + Task Service
        cache TTL + Task Manager refresh).
        """
        if int(config.get("task_count", task_count)) != task_count:
            raise SyncError(
                f"start_tasks for {job_id}: config task_count disagrees "
                f"with plan ({config.get('task_count')} != {task_count})"
            )
        # Urgent: the job's tasks are currently stopped (phase 1); waiting
        # for the cache TTL would leave them down for another 90 seconds.
        self._service.set_job_specs(job_id, config, urgent=True)
        self._tracer.record(
            "task-service", "specs-published", job_id=job_id,
            parent=self._tracer.peek_context(job_id, SLOT_SYNC),
            task_count=task_count,
        )
