"""Task specifications.

"A Task Spec includes all configurations necessary to run a task, such as
package version, arguments, and number of threads." (paper section IV).
Specs are generated from a job's committed configuration by the Task
Service, one per task index, and are the unit the local Task Managers
consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.cluster.resources import ResourceVector
from repro.errors import TurbineError
from repro.jobs.model import (
    KEY_HOT_STANDBY,
    KEY_INPUT,
    KEY_MEMORY_OVERHEAD,
    KEY_PACKAGE,
    KEY_PERF,
    KEY_PRIORITY,
    KEY_RESOURCES,
    KEY_STATE_KEY_CARDINALITY,
    KEY_STATEFUL,
    KEY_TASK_COUNT,
    KEY_THREADS,
)
from repro.types import JobId, Priority, TaskId


def task_id_for(job_id: JobId, task_index: int) -> TaskId:
    """Canonical task id: ``"<job_id>:<index>"``."""
    return f"{job_id}:{task_index}"


@dataclass(frozen=True)
class TaskSpec:
    """Everything a Task Manager needs to run one task."""

    task_id: TaskId
    job_id: JobId
    task_index: int
    task_count: int
    package_name: str
    package_version: str
    threads: int
    resources: ResourceVector
    input_category: str
    output_category: str = ""
    #: Output bytes per processed input byte.
    output_ratio: float = 1.0
    stateful: bool = False
    priority: Priority = Priority.NORMAL
    #: Ground-truth max stable processing rate per thread (MB/s) — used by
    #: the simulated runtime, opaque to the control plane.
    rate_per_thread_mb: float = 2.0
    state_key_cardinality: int = 0
    #: Constant per-task memory extra (message-size buffering), GB.
    memory_overhead_gb: float = 0.0
    #: Opt-in hot-standby replica: the standby plane keeps a passive
    #: copy of this task warm on a different host and promotes it when
    #: the primary's container dies. Deliberately NOT part of
    #: ``settings_fingerprint`` — toggling it must not restart the
    #: primary; only the standby plane reacts.
    hot_standby: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.task_index < self.task_count:
            raise TurbineError(
                f"task index {self.task_index} out of range "
                f"for {self.task_count} tasks"
            )

    @classmethod
    def from_job_config(
        cls, job_id: JobId, task_index: int, config: Dict[str, Any]
    ) -> "TaskSpec":
        """Generate the spec for one task from a committed job config.

        This is the "dynamic generation ... considering the job's
        parallelism level and applying other template substitutions"
        of section IV.
        """
        package = config.get(KEY_PACKAGE, {})
        perf = config.get(KEY_PERF, {})
        output = config.get("output", {})
        return cls(
            output_category=output.get("category", ""),
            output_ratio=float(output.get("ratio", 1.0)),
            task_id=task_id_for(job_id, task_index),
            job_id=job_id,
            task_index=task_index,
            task_count=int(config.get(KEY_TASK_COUNT, 1)),
            package_name=package.get("name", "stream_engine"),
            package_version=package.get("version", "1.0"),
            threads=int(config.get(KEY_THREADS, 1)),
            resources=ResourceVector.from_dict(config.get(KEY_RESOURCES, {})),
            input_category=config.get(KEY_INPUT, {}).get("category", ""),
            stateful=bool(config.get(KEY_STATEFUL, False)),
            priority=Priority(int(config.get(KEY_PRIORITY, Priority.NORMAL))),
            rate_per_thread_mb=float(perf.get("rate_per_thread_mb", 2.0)),
            state_key_cardinality=int(config.get(KEY_STATE_KEY_CARDINALITY, 0)),
            memory_overhead_gb=float(config.get(KEY_MEMORY_OVERHEAD, 0.0)),
            hot_standby=bool(config.get(KEY_HOT_STANDBY, False)),
        )

    #: Specs are hashable on task_id + package version so managers can
    #: detect "same task, new settings" cheaply.
    def settings_fingerprint(self) -> tuple:
        """A tuple identifying the runtime-relevant settings of this spec.

        When the fingerprint of a task's spec changes, the Task Manager
        must restart the task to pick up the new settings.
        """
        return (
            self.package_name,
            self.package_version,
            self.threads,
            self.task_count,
            self.resources,
            self.input_category,
            self.output_category,
            self.rate_per_thread_mb,
        )


#: Sentinel container capacity fraction: "the upper limit of vertical
#: scaling is set to a portion of resources available in a single container
#: (typically 1/5) to keep each task fine-grained enough to move"
#: (paper section V-E).
VERTICAL_LIMIT_FRACTION = 0.2
