"""The shard load balancer.

"The algorithm ... does a bin-packing of shards to Turbine containers such
that the capacity constraint of each Turbine container is satisfied while
also a global resource balance is maintained across the cluster. The
resource balance is defined in terms of a utilization band per resource
type ... the total load of each Turbine container is within a band (e.g.
+/-10%) of the average of the Turbine container loads across the tier."
(paper section IV-B).

The implementation is a deterministic greedy rebalancer that (1) keeps the
existing assignment where possible (movement is not free — each move
restarts tasks), (2) places unassigned shards on the least-loaded
container, and (3) drains overloaded containers into underloaded ones until
every container is inside the band or no further improving move exists.
It maps 100 K shards onto thousands of containers well under the paper's
two-second figure (see ``benchmarks/test_placement_speed.py``).

Decision cache
--------------

Successive placement rounds differ in few inputs (a handful of load
reports, occasionally a lost container), so the decision is highly
cacheable. :class:`PlacementCache` wraps the algorithm with three tiers:

* **hit** — every input identical to the previous round and the previous
  result was band-stable: return the prior assignment with zero moves,
  skipping the algorithm entirely (this is what makes a quiescent tier's
  round ≥5× cheaper; see ``benchmarks/test_placement_speed.py``);
* **repair** — a bounded delta (loads changed, shards added/removed, a
  container lost but the reference capacity unchanged): re-run the
  algorithm but reuse the memoized per-shard scalar loads and sort order,
  skipping the dominant recomputation;
* **miss** — anything else: full recompute, repopulating the cache.

Every tier is *exactly* equivalent to a from-scratch
:func:`compute_assignment` on the same inputs — the memoized values are
pure functions of inputs that did not change, and float summation order
is preserved — so enabling the cache can never alter a placement
decision. ``tests/tasks/test_placement_cache.py`` proves this property
under randomized deltas.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.errors import PlacementError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.types import ContainerId, ShardId

#: "within a band (e.g +/-10%) of the average" — the default band.
DEFAULT_BAND = 0.10

#: Fraction of container capacity kept free: "maintaining a head room per
#: host" for absorbing spikes (sections IV-B, VI-A).
DEFAULT_HEADROOM = 0.10


@dataclass
class AssignmentChange:
    """The delta between the old and the new shard assignment."""

    assignment: Dict[ShardId, ContainerId]
    moves: List[Tuple[ShardId, Optional[ContainerId], ContainerId]] = field(
        default_factory=list
    )

    @property
    def num_moves(self) -> int:
        return len(self.moves)


def _scalar_load(
    load: ResourceVector, reference_capacity: ResourceVector
) -> float:
    """Collapse a multi-dimensional load to its dominant share.

    The balancer compares containers by dominant-share utilization against
    a common reference capacity, which makes CPU-heavy and memory-heavy
    shards commensurable.
    """
    return load.utilization_of(reference_capacity)


def compute_assignment(
    shard_loads: Mapping[ShardId, ResourceVector],
    container_capacities: Mapping[ContainerId, ResourceVector],
    current: Optional[Mapping[ShardId, ContainerId]] = None,
    band: float = DEFAULT_BAND,
    headroom: float = DEFAULT_HEADROOM,
    container_regions: Optional[Mapping[ContainerId, str]] = None,
    shard_regions: Optional[Mapping[ShardId, str]] = None,
) -> AssignmentChange:
    """Produce a balanced shard-to-container assignment.

    Args:
        shard_loads: load of every shard in the tier.
        container_capacities: capacity of every live container.
        current: the existing assignment (shards on dead containers are
            treated as unassigned).
        band: allowed relative deviation from the mean container load.
        headroom: capacity fraction the packing tries to keep free.
        container_regions: optional region label per container.
        shard_regions: optional region *requirement* per shard — a shard
            with a region is only ever placed on containers of that region
            ("The algorithm also ensures additional constraints are
            satisfied, e.g. ... satisfying regional constraints",
            paper section IV-B).

    Returns:
        The new assignment plus the move list.

    Raises:
        PlacementError: no containers, invalid band/headroom, or a
            regional constraint that no container can satisfy.
    """
    change, __ = _compute_core(
        shard_loads, container_capacities, current, band, headroom,
        container_regions, shard_regions,
    )
    return change


@dataclass
class _PlacementInternals:
    """Memoizable by-products of one placement computation."""

    reference: ResourceVector
    scalar_loads: Dict[ShardId, float]
    sorted_shards: List[ShardId]
    #: False when the band rebalance ran out of rounds before converging:
    #: re-running the algorithm on identical inputs could still move
    #: shards, so the result must not be served from the cache as-is.
    stable: bool


def _compute_core(
    shard_loads: Mapping[ShardId, ResourceVector],
    container_capacities: Mapping[ContainerId, ResourceVector],
    current: Optional[Mapping[ShardId, ContainerId]],
    band: float,
    headroom: float,
    container_regions: Optional[Mapping[ContainerId, str]],
    shard_regions: Optional[Mapping[ShardId, str]],
    scalar_loads: Optional[Dict[ShardId, float]] = None,
    sorted_shards: Optional[List[ShardId]] = None,
    reference: Optional[ResourceVector] = None,
) -> Tuple[AssignmentChange, _PlacementInternals]:
    """The placement algorithm, with optional memoized internals.

    ``scalar_loads``, ``sorted_shards``, and ``reference`` may be supplied
    by :class:`PlacementCache` when the caller can prove they equal what
    this function would compute (they are pure functions of unchanged
    inputs); the result is then bit-identical to an unmemoized run because
    every float and every iteration order is preserved.
    """
    if not container_capacities:
        raise PlacementError("cannot place shards on zero containers")
    if band <= 0:
        raise PlacementError(f"band must be positive: {band}")
    if not 0 <= headroom < 1:
        raise PlacementError(f"headroom must be in [0, 1): {headroom}")
    current = current or {}
    container_regions = container_regions or {}
    shard_regions = shard_regions or {}

    container_ids = sorted(container_capacities)
    if reference is None:
        reference = _reference_capacity(container_capacities)

    def eligible(shard_id: ShardId, container_id: ContainerId) -> bool:
        required = shard_regions.get(shard_id)
        if required is None:
            return True
        return container_regions.get(container_id) == required

    if scalar_loads is None:
        scalar_loads = {
            shard_id: _scalar_load(load, reference)
            for shard_id, load in shard_loads.items()
        }
    if sorted_shards is None:
        sorted_shards = sorted(shard_loads)

    # Phase 1 — keep valid existing placements (region-compatible only).
    placed: Dict[ShardId, ContainerId] = {}
    container_load: Dict[ContainerId, float] = {
        container_id: 0.0 for container_id in container_ids
    }
    shards_on: Dict[ContainerId, List[ShardId]] = {
        container_id: [] for container_id in container_ids
    }
    unassigned: List[ShardId] = []
    for shard_id in sorted_shards:
        container_id = current.get(shard_id)
        if container_id in container_load and eligible(shard_id, container_id):
            placed[shard_id] = container_id
            container_load[container_id] += scalar_loads[shard_id]
            shards_on[container_id].append(shard_id)
        else:
            unassigned.append(shard_id)

    # Phase 2 — place unassigned shards, heaviest first, on the least
    # loaded *eligible* container. Per-region heaps with lazy staleness
    # checks keep this O(n log n) even with constraints.
    moves: List[Tuple[ShardId, Optional[ContainerId], ContainerId]] = []
    heaps: Dict[Optional[str], list] = {}

    def heap_for(region: Optional[str]) -> list:
        if region not in heaps:
            if region is None:
                members = container_ids
            else:
                members = [
                    cid for cid in container_ids
                    if container_regions.get(cid) == region
                ]
            heap = [(container_load[cid], cid) for cid in members]
            heapq.heapify(heap)
            heaps[region] = heap
        return heaps[region]

    unassigned.sort(key=lambda shard_id: (-scalar_loads[shard_id], shard_id))
    for shard_id in unassigned:
        region = shard_regions.get(shard_id)
        heap = heap_for(region)
        container_id = None
        while heap:
            load, candidate = heapq.heappop(heap)
            if abs(container_load[candidate] - load) > 1e-12:
                # Stale entry (the load changed via another region heap):
                # push the fresh value and re-examine.
                heapq.heappush(heap, (container_load[candidate], candidate))
                continue
            container_id = candidate
            break
        if container_id is None:
            raise PlacementError(
                f"no container satisfies region {region!r} for {shard_id}"
            )
        placed[shard_id] = container_id
        new_load = container_load[container_id] + scalar_loads[shard_id]
        container_load[container_id] = new_load
        shards_on[container_id].append(shard_id)
        moves.append((shard_id, current.get(shard_id), container_id))
        heapq.heappush(heap, (new_load, container_id))

    # Phase 3 — drain containers above the band into containers below it.
    stable = _rebalance_within_band(
        container_load, shards_on, scalar_loads, placed, moves, band,
        eligible=eligible,
    )

    return (
        AssignmentChange(assignment=placed, moves=moves),
        _PlacementInternals(reference, scalar_loads, sorted_shards, stable),
    )


def _reference_capacity(
    container_capacities: Mapping[ContainerId, ResourceVector]
) -> ResourceVector:
    """Mean container capacity, the normalization basis for scalar loads."""
    total = ResourceVector.zero()
    for capacity in container_capacities.values():
        total = total + capacity
    return total.scaled(1.0 / len(container_capacities))


def _rebalance_within_band(
    container_load: Dict[ContainerId, float],
    shards_on: Dict[ContainerId, List[ShardId]],
    scalar_loads: Mapping[ShardId, float],
    placed: Dict[ShardId, ContainerId],
    moves: List[Tuple[ShardId, Optional[ContainerId], ContainerId]],
    band: float,
    eligible=None,
) -> bool:
    """Move shards off overloaded containers until all are inside the band.

    Each round moves the best-fitting shard from the most loaded container
    to the least loaded one. The loop stops when the spread is inside the
    band or when no move improves it (a single shard can be too big to fit
    any band — the algorithm then leaves it where it is).

    Returns True when the result is *stable* — re-running on the final
    state would make no further move — and False when the round budget
    ran out first. The decision cache may only serve a pure hit for a
    stable result.
    """
    num_containers = len(container_load)
    if num_containers < 2:
        return True
    total = sum(container_load.values())
    average = total / num_containers
    if average <= 0:
        return True
    upper = average * (1.0 + band)
    lower = average * (1.0 - band)

    # Bounded number of rounds keeps worst-case latency predictable.
    max_rounds = max(64, 4 * len(scalar_loads) // max(1, num_containers))
    for __ in range(max_rounds):
        hottest = max(container_load, key=lambda c: (container_load[c], c))
        coldest = min(container_load, key=lambda c: (container_load[c], c))
        if container_load[hottest] <= upper and container_load[coldest] >= lower:
            return True  # everyone inside the band
        excess = container_load[hottest] - average
        candidates = shards_on[hottest]
        if not candidates:
            return True
        # The shard closest to (but not exceeding) the excess reduces the
        # overload most without overshooting the cold container.
        best = None
        best_key = None
        for shard_id in candidates:
            load = scalar_loads[shard_id]
            if load <= 0:
                continue
            if eligible is not None and not eligible(shard_id, coldest):
                continue  # regional constraint pins this shard here
            overshoot = abs(excess - load)
            key = (load > excess, overshoot, shard_id)
            if best_key is None or key < best_key:
                best, best_key = shard_id, key
        if best is None:
            return True
        moved_load = scalar_loads[best]
        new_cold = container_load[coldest] + moved_load
        new_hot = container_load[hottest] - moved_load
        # Only move when it strictly reduces the max of the pair.
        if max(new_cold, new_hot) >= container_load[hottest]:
            return True
        shards_on[hottest].remove(best)
        shards_on[coldest].append(best)
        container_load[hottest] = new_hot
        container_load[coldest] = new_cold
        placed[best] = coldest
        moves.append((best, hottest, coldest))
    return False


@dataclass
class _CachedPlacement:
    """Inputs and by-products of the last placement round."""

    band: float
    headroom: float
    shard_loads: Dict[ShardId, ResourceVector]
    capacities: Dict[ContainerId, ResourceVector]
    container_regions: Dict[ContainerId, str]
    shard_regions: Dict[ShardId, str]
    assignment: Dict[ShardId, ContainerId]
    internals: _PlacementInternals
    #: True when the cached round produced zero moves. Only then is its
    #: output a provable fixed point: the round's container loads were
    #: accumulated purely in phase-1 order, so an identical re-run is
    #: bit-identical. A round that *moved* shards left loads computed via
    #: move arithmetic (+x then -x), and a from-scratch recomputation of
    #: the same assignment can land on the other side of the band
    #: boundary — serving a hit there would diverge from fresh compute.
    settled: bool = False


class PlacementCache:
    """A decision cache around :func:`compute_assignment`.

    Tiers (see the module docstring): **hit** when every input matches the
    previous round and its result was band-stable — the prior assignment
    is returned with zero moves in O(input comparison); **repair** when
    only shard loads / the shard set / the container set changed but the
    reference capacity is unchanged — the algorithm re-runs with memoized
    scalar loads and sort order; **miss** otherwise — full recompute.

    Every tier returns exactly what a from-scratch
    :func:`compute_assignment` would, so same-seed simulations are
    byte-identical with the cache on or off.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self._telemetry = telemetry or NULL_TELEMETRY
        self._cached: Optional[_CachedPlacement] = None
        self.hits = 0
        self.repairs = 0
        self.misses = 0

    def invalidate(self) -> None:
        """Drop the cached round (next compute is a full recompute)."""
        self._cached = None

    def compute(
        self,
        shard_loads: Mapping[ShardId, ResourceVector],
        container_capacities: Mapping[ContainerId, ResourceVector],
        current: Optional[Mapping[ShardId, ContainerId]] = None,
        band: float = DEFAULT_BAND,
        headroom: float = DEFAULT_HEADROOM,
        container_regions: Optional[Mapping[ContainerId, str]] = None,
        shard_regions: Optional[Mapping[ShardId, str]] = None,
    ) -> AssignmentChange:
        """Drop-in replacement for :func:`compute_assignment`."""
        current = current or {}
        container_regions = container_regions or {}
        shard_regions = shard_regions or {}
        cached = self._cached
        if (
            cached is None
            or not container_capacities
            or band != cached.band
            or headroom != cached.headroom
            or dict(container_regions) != cached.container_regions
            or dict(shard_regions) != cached.shard_regions
        ):
            return self._full(
                shard_loads, container_capacities, current, band, headroom,
                container_regions, shard_regions,
            )
        capacities_same = (
            dict(container_capacities) == cached.capacities
        )
        if capacities_same:
            reference = cached.internals.reference
        else:
            # A changed container set (e.g. one lost to a fail-over) only
            # invalidates the scalar-load memo if it moved the reference
            # capacity; on homogeneous fleets it does not.
            reference = _reference_capacity(container_capacities)
            if reference != cached.internals.reference:
                return self._full(
                    shard_loads, container_capacities, current, band,
                    headroom, container_regions, shard_regions,
                )
        loads_same = dict(shard_loads) == cached.shard_loads
        if (
            loads_same
            and capacities_same
            and cached.internals.stable
            and cached.settled
            and dict(current) == cached.assignment
        ):
            self.hits += 1
            self._telemetry.inc("cache.balancer.hits")
            return AssignmentChange(
                assignment=dict(cached.assignment), moves=[]
            )
        return self._repair(
            shard_loads, container_capacities, current, band, headroom,
            container_regions, shard_regions, reference,
        )

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------
    def _full(
        self, shard_loads, container_capacities, current, band, headroom,
        container_regions, shard_regions,
    ) -> AssignmentChange:
        change, internals = _compute_core(
            shard_loads, container_capacities, current, band, headroom,
            container_regions, shard_regions,
        )
        self.misses += 1
        self._telemetry.inc("cache.balancer.misses")
        self._remember(
            change, internals, shard_loads, container_capacities, band,
            headroom, container_regions, shard_regions,
        )
        return change

    def _repair(
        self, shard_loads, container_capacities, current, band, headroom,
        container_regions, shard_regions, reference,
    ) -> AssignmentChange:
        cached = self._cached
        memo_loads = cached.shard_loads
        memo_scalars = cached.internals.scalar_loads
        scalar_loads: Dict[ShardId, float] = {}
        delta = 0
        for shard_id, load in shard_loads.items():
            previous = memo_loads.get(shard_id)
            if previous is not None and previous == load:
                # _scalar_load is a pure function of (load, reference) and
                # neither changed: the memoized float is bit-identical to
                # what a recomputation would produce.
                scalar_loads[shard_id] = memo_scalars[shard_id]
            else:
                scalar_loads[shard_id] = _scalar_load(load, reference)
                delta += 1
        if shard_loads.keys() == memo_loads.keys():
            sorted_shards = cached.internals.sorted_shards
        else:
            sorted_shards = sorted(shard_loads)
            delta += 1
        change, internals = _compute_core(
            shard_loads, container_capacities, current, band, headroom,
            container_regions, shard_regions,
            scalar_loads=scalar_loads,
            sorted_shards=sorted_shards,
            reference=reference,
        )
        self.repairs += 1
        self._telemetry.inc("cache.balancer.repairs")
        self._telemetry.observe("cache.balancer.delta", float(delta))
        self._remember(
            change, internals, shard_loads, container_capacities, band,
            headroom, container_regions, shard_regions,
        )
        return change

    def _remember(
        self, change, internals, shard_loads, container_capacities, band,
        headroom, container_regions, shard_regions,
    ) -> None:
        # Shallow copies: values (ResourceVector, str) are immutable, and
        # callers rebuild their input dicts each round.
        self._cached = _CachedPlacement(
            band=band,
            headroom=headroom,
            shard_loads=dict(shard_loads),
            capacities=dict(container_capacities),
            container_regions=dict(container_regions),
            shard_regions=dict(shard_regions),
            assignment=dict(change.assignment),
            internals=internals,
            settled=not change.moves,
        )


def load_spread(container_load: Mapping[ContainerId, float]) -> float:
    """Max relative deviation from the mean load (0 = perfectly balanced)."""
    if not container_load:
        return 0.0
    loads = list(container_load.values())
    average = sum(loads) / len(loads)
    if average <= 0:
        return 0.0
    return max(abs(load - average) for load in loads) / average
