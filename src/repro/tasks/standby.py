"""Hot-standby replicas with sub-heartbeat takeover.

The reboot-clock math in section IV-C makes a cold recovery expensive: a
lost container costs the 40 s connection timeout (or the 60 s fail-over
interval) before its tasks even *begin* restarting elsewhere, plus a full
state restore for stateful jobs. For jobs that opt in
(``hot_standby: true`` in their config), the ``StandbyPlane`` keeps a
passive replica of every task placed on a container of a *different host*
than the primary. The replica tails the primary's checkpoint stream — its
state is warm — so when the primary's container dies, promotion is a
state flip on the next plane tick (1 s), not a reboot.

Exactly-once is preserved by construction:

* A passive replica is in ``TaskState.STANDBY``: ``step()`` processes
  nothing, so it can never duplicate the primary's work.
* Promotion happens only when no alive manager runs the primary, and every
  promotion is appended to the ``turbine.standby.promotions`` command log
  as a canonical-JSON record — the audit trail the takeover drill decodes.
* When the control plane eventually restarts the real task (shard
  fail-over), the Task Manager calls :meth:`release_for_start` *before*
  starting it, retiring the promoted replica first. Both incarnations
  advance the same per-partition checkpoints, so the handoff neither
  loses nor replays a byte.

Routine placement records no events; only promotions, handoffs, and
retirements land in the incident timeline — a fault-free run with the
plane attached renders the same timeline as one without it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import DegradedModeError
from repro.obs.bounded import BoundedList
from repro.tasks.runtime import RunningTask
from repro.tasks.spec import TaskSpec
from repro.types import ContainerId, Seconds, TaskId, TaskState

#: Plane tick. One tick is the promotion latency bound — well under the
#: 10 s heartbeat, let alone the 40 s reboot clock.
STANDBY_INTERVAL: Seconds = 1.0

#: Scribe category recording every promotion (the exactly-once audit log).
PROMOTION_LOG = "turbine.standby.promotions"


@dataclass
class StandbyEvent:
    """An incident-worthy standby-plane event."""

    time: Seconds
    kind: str  # "standby-promote" | "standby-handoff" | "standby-retire"
    detail: str


@dataclass(frozen=True)
class PromotionRecord:
    """One takeover, as kept in memory for reports and goldens."""

    time: Seconds
    task_id: TaskId
    container_id: ContainerId
    #: Seconds between the primary's last observed liveness and promotion.
    takeover_lag: Seconds


class StandbyPlane:
    """Places passive replicas and promotes them when primaries die."""

    def __init__(
        self,
        engine,
        platform,
        interval: Seconds = STANDBY_INTERVAL,
        telemetry=None,
    ) -> None:
        self._engine = engine
        self._platform = platform
        self._interval = interval
        self._telemetry = telemetry
        #: Where each task's replica currently lives.
        self.placements: Dict[TaskId, ContainerId] = {}
        #: Every takeover this plane performed.
        self.promotions: List[PromotionRecord] = []
        #: Incident events only (promotions/handoffs — never placement),
        #: so fault-free timelines are byte-identical with the plane off.
        self.events: BoundedList = BoundedList(maxlen=256)
        self._last_alive: Dict[TaskId, Seconds] = {}
        self._timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._timer is not None:
            return
        self._timer = self._engine.every(
            self._interval, self._tick, name="standby-plane"
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Reconcile tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self._engine.now
        wanted = {spec.task_id: spec for spec in self._hot_specs()}
        for task_id in sorted(self.placements):
            container_id = self.placements[task_id]
            manager = self._platform.task_managers.get(container_id)
            if task_id not in wanted:
                # Job gone or opted out: retire the replica quietly.
                if manager is not None:
                    manager.drop_standby(task_id)
                del self.placements[task_id]
                continue
            if (
                manager is None
                or not manager.alive
                or task_id not in manager.standbys
            ):
                # The replica itself was lost (host death, manager
                # reboot); forget it and re-place below.
                del self.placements[task_id]
                continue
            replica = manager.standbys[task_id]
            if self._primary_alive(task_id):
                self._last_alive[task_id] = now
                if replica.promoted:
                    # Backstop only: the start-task handoff hook retires
                    # promoted replicas before a primary restarts, so
                    # reaching here means a primary appeared without the
                    # hook (e.g. a manually injected task). Never let two
                    # incarnations run a full tick.
                    manager.drop_standby(task_id)
                    del self.placements[task_id]
                    self.events.append(
                        StandbyEvent(
                            now, "standby-retire",
                            f"{task_id}: primary reappeared; promoted "
                            f"replica on {container_id} retired",
                        )
                    )
            elif not replica.promoted:
                self._promote(manager, replica, now)
        for task_id in sorted(wanted):
            if task_id not in self.placements:
                self._place(wanted[task_id])

    def _hot_specs(self) -> List[TaskSpec]:
        service = self._platform.task_service
        try:
            job_ids = service.job_ids()
        except DegradedModeError:
            return []
        specs: List[TaskSpec] = []
        for job_id in job_ids:
            try:
                job_specs = service.specs_of(job_id)
            except DegradedModeError:
                continue
            specs.extend(spec for spec in job_specs if spec.hot_standby)
        return specs

    # ------------------------------------------------------------------
    # Placement (host anti-affinity with the primary)
    # ------------------------------------------------------------------
    def _place(self, spec: TaskSpec) -> None:
        primary = self._primary_manager(spec.task_id)
        if primary is None:
            return  # Wait until the primary is placed; re-try next tick.
        primary_host = primary.container.host_id
        managers = self._platform.task_managers
        candidates = [
            container_id
            for container_id in sorted(managers)
            if managers[container_id].alive
            and managers[container_id].container.host_id != primary_host
        ]
        if not candidates:
            return
        target = candidates[spec.task_index % len(candidates)]
        replica = RunningTask(spec, self._platform.scribe, passive=True)
        managers[target].adopt_standby(replica)
        self.placements[spec.task_id] = target
        self._last_alive.setdefault(spec.task_id, self._engine.now)

    # ------------------------------------------------------------------
    # Promotion and handoff
    # ------------------------------------------------------------------
    def _promote(self, manager, replica: RunningTask, now: Seconds) -> None:
        task_id = replica.spec.task_id
        replica.promote()
        failed_at = self._last_alive.get(task_id, now)
        lag = now - failed_at
        self.promotions.append(
            PromotionRecord(now, task_id, manager.container_id, lag)
        )
        # Durable, canonical-JSON audit record: the takeover drill decodes
        # this log to prove every promotion happened exactly once.
        self._platform.scribe.ensure_log(PROMOTION_LOG).append(
            json.dumps(
                {
                    "at": now,
                    "container": manager.container_id,
                    "op": "promote",
                    "task": task_id,
                },
                sort_keys=True,
            )
        )
        # The recovery-lag window closes at the replica's first progress
        # sample, measured from when the primary was last seen alive.
        manager.note_task_failure(task_id, failed_at)
        self.events.append(
            StandbyEvent(
                now, "standby-promote",
                f"{task_id}: promoted on {manager.container_id} "
                f"{lag:g}s after primary loss",
            )
        )
        if self._telemetry is not None:
            self._telemetry.inc("standby.promotions")

    def release_for_start(self, task_id: TaskId) -> None:
        """Retire this task's replica before its primary (re)starts.

        Called by every Task Manager from ``_start_task`` — the
        exactly-once half of the handoff protocol. A passive replica is
        simply dropped (and re-placed next tick against the new
        primary); a promoted one records the handoff in the timeline.
        """
        container_id = self.placements.pop(task_id, None)
        if container_id is None:
            return
        manager = self._platform.task_managers.get(container_id)
        if manager is None:
            return
        replica = manager.drop_standby(task_id)
        if replica is not None and replica.promoted:
            self.events.append(
                StandbyEvent(
                    self._engine.now, "standby-handoff",
                    f"{task_id}: primary restarting; promoted replica on "
                    f"{container_id} retired",
                )
            )
            if self._telemetry is not None:
                self._telemetry.inc("standby.handoffs")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def reserved_memory_gb(self) -> float:
        """Extra fleet memory the replicas pin (the EXPERIMENTS.md cost)."""
        total = 0.0
        for task_id in sorted(self.placements):
            manager = self._platform.task_managers.get(
                self.placements[task_id]
            )
            if manager is None:
                continue
            replica = manager.standbys.get(task_id)
            if replica is not None:
                total += replica.spec.resources.memory_gb
        return total

    # ------------------------------------------------------------------
    # Primary liveness
    # ------------------------------------------------------------------
    def _primary_manager(self, task_id: TaskId):
        managers = self._platform.task_managers
        for container_id in sorted(managers):
            manager = managers[container_id]
            if manager.alive and task_id in manager.tasks:
                return manager
        return None

    def _primary_alive(self, task_id: TaskId) -> bool:
        manager = self._primary_manager(task_id)
        if manager is None:
            return False
        return manager.tasks[task_id].state in (
            TaskState.RUNNING, TaskState.STARTING
        )
