"""The local Task Manager.

"Each Turbine Container runs a local Task Manager that spawns a subset of
stream processing tasks within that container." (paper section IV). The
manager:

* refreshes the full task-spec snapshot every 60 seconds and reconciles
  the tasks of its assigned shards (start / stop / restart on settings
  change, restart on crash);
* answers the Shard Manager's ADD_SHARD / DROP_SHARD requests;
* heartbeats to the Shard Manager, and — if its connection is broken for
  longer than the 40-second connection timeout — reboots itself *before*
  the Shard Manager's 60-second fail-over can create a duplicate elsewhere
  (section IV-C);
* steps its tasks' data-plane processing and aggregates per-shard loads,
  reporting them to the Shard Manager every ten minutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.container import TurbineContainer
from repro.cluster.resources import ResourceVector
from repro.errors import DegradedModeError, ServiceUnavailableError
from repro.metrics.store import MetricStore
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACER, SLOT_SYNC, Tracer
from repro.resilience import Dependency, LastKnownGood, RetryPolicy
from repro.scribe.bus import ScribeBus
from repro.sim.engine import Engine, Timer
from repro.tasks.runtime import RunningTask, apply_step_plan
from repro.tasks.service import TaskService
from repro.tasks.shard_manager import ShardManager
from repro.tasks.spec import TaskSpec
from repro.types import Seconds, ShardId, TaskId, TaskState

#: "Each task manager has a local refresh thread to periodically (every 60
#: seconds) fetch from the Task Service."
REFRESH_INTERVAL: Seconds = 60.0

#: "timeout is configured to 40 seconds, fail-over is 60 seconds".
CONNECTION_TIMEOUT: Seconds = 40.0

#: Heartbeat period (must be well under the connection timeout).
HEARTBEAT_INTERVAL: Seconds = 10.0

#: "This refreshed shard load is reported to the Shard Manager every ten
#: minutes."
LOAD_REPORT_INTERVAL: Seconds = 600.0

#: Data-plane step period. Coarser steps trade fidelity for speed in
#: long-horizon benchmarks.
STEP_INTERVAL: Seconds = 10.0


class TaskManager:
    """Runs the tasks of the shards assigned to one Turbine container."""

    def __init__(
        self,
        engine: Engine,
        container: TurbineContainer,
        task_service: TaskService,
        shard_manager: ShardManager,
        scribe: ScribeBus,
        metrics: Optional[MetricStore] = None,
        refresh_interval: Seconds = REFRESH_INTERVAL,
        heartbeat_interval: Seconds = HEARTBEAT_INTERVAL,
        connection_timeout: Seconds = CONNECTION_TIMEOUT,
        step_interval: Seconds = STEP_INTERVAL,
        load_report_interval: Seconds = LOAD_REPORT_INTERVAL,
        record_task_metrics: bool = False,
        tracer: Optional[Tracer] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._tracer = tracer or NULL_TRACER
        self._engine = engine
        self.container = container
        self._service = task_service
        self._shard_manager = shard_manager
        self._scribe = scribe
        self._metrics = metrics
        self._refresh_interval = refresh_interval
        self._heartbeat_interval = heartbeat_interval
        self._connection_timeout = connection_timeout
        self._step_interval = step_interval
        self._load_report_interval = load_report_interval
        self._record_task_metrics = record_task_metrics

        self.assigned_shards: set = set()
        self.tasks: Dict[TaskId, RunningTask] = {}
        self._task_shard: Dict[TaskId, ShardId] = {}
        #: Hot-standby replicas hosted here, keyed by the primary's task
        #: id. Kept out of ``tasks`` on purpose: standbys have no shard
        #: assignment, so reconciliation and load reporting must never
        #: see them (a passive replica is invisible to the control plane
        #: until the standby plane promotes it).
        self.standbys: Dict[TaskId, RunningTask] = {}
        #: Gray-failure model: a slow node degrades every task's
        #: throughput by this factor without failing a single health
        #: check (heartbeats keep flowing). 1.0 = healthy.
        self.slow_factor = 1.0
        #: Optional resiliency planes, wired by the platform when the
        #: corresponding features are enabled.
        self.standby_plane = None
        self.checkpoint_plane = None
        #: Parallel data plane (:class:`repro.sim.parallel.plane.
        #: PlatformDataPlane`). When wired, the plane owns the step
        #: cadence: this manager arms no step timer and instead exposes
        #: :meth:`data_plane_dt` / :meth:`throttle_for` /
        #: :meth:`apply_data_plane_step` to the plane's tick barrier.
        self.data_plane = None
        #: When each task last failed, for the task.recovery_lag SLI
        #: (failure -> first post-recovery progress sample).
        self._failed_at: Dict[TaskId, Seconds] = {}
        #: Last-known-good shard index for degraded-mode operation
        #: ("containers run tasks based on existing snapshots", IV-D).
        self._index_lkg: LastKnownGood = LastKnownGood()
        #: Resilience edges toward the two control-plane services this
        #: manager calls. The edges share one telemetry name per target
        #: across all containers, so counters aggregate fleet-wide. The
        #: reconnect retry policy reproduces the historical fixed
        #: heartbeat-interval cadence (multiplier 1, no jitter) so
        #: recovery timing is unchanged.
        self._sm_dep = Dependency(
            "task-manager.shard-manager",
            clock=lambda: engine.now,
            telemetry=telemetry,
            retry=RetryPolicy(
                max_attempts=1, base_delay=heartbeat_interval,
                multiplier=1.0, retry_on=(),
            ),
        )
        self._ts_dep = Dependency(
            "task-manager.task-service",
            clock=lambda: engine.now,
            telemetry=telemetry,
        )
        self._telemetry = telemetry
        self._reconnect_attempts = 0
        #: Simulated network partition toward the Shard Manager.
        self.partitioned = False
        #: Test hooks: make DROP_SHARD / ADD_SHARD hang (raise TimeoutError).
        self.slow_drop = False
        self.slow_add = False
        self._outage_started: Optional[Seconds] = None
        self._last_step_time: Seconds = engine.now
        self.reboot_count = 0
        self.oom_events = 0
        self._timers: List[Timer] = []

    # ------------------------------------------------------------------
    # Identity and liveness
    # ------------------------------------------------------------------
    @property
    def container_id(self) -> str:
        return self.container.container_id

    @property
    def capacity(self) -> ResourceVector:
        return self.container.capacity

    @property
    def region(self) -> str:
        """Region of the underlying host (for regional placement)."""
        return self.container.region

    @property
    def alive(self) -> bool:
        return self.container.alive

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register with the Shard Manager and arm all periodic timers.

        When the Shard Manager is in an availability window the
        registration is deferred to the reconnect loop — the timers still
        arm, so the container is fully functional the moment it manages
        to register.
        """
        try:
            self._sm_dep.call(self._shard_manager.register_container, self)
        except ServiceUnavailableError:
            self._schedule_reconnect()
        if self._timers:
            return
        jitter = self._engine.rng.fork(self.container_id)
        self._timers = [
            self._engine.every(
                self._refresh_interval, self._refresh, name=f"{self.container_id}-refresh",
                initial_delay=jitter.uniform(0, self._refresh_interval),
            ),
            self._engine.every(
                self._heartbeat_interval, self._heartbeat_tick,
                name=f"{self.container_id}-heartbeat",
            ),
        ]
        if self.data_plane is None:
            # The parallel data plane (when wired) steps every manager
            # from its own single timer; arming a per-container step
            # timer too would double-step the tasks.
            self._timers.append(
                self._engine.every(
                    self._step_interval, self._step_tasks,
                    name=f"{self.container_id}-step",
                )
            )
        self._timers.append(
            self._engine.every(
                self._load_report_interval, self._report_loads,
                name=f"{self.container_id}-load-report",
                initial_delay=jitter.uniform(0, self._load_report_interval),
            )
        )

    def shutdown(self) -> None:
        """Stop all timers and tasks (container decommission)."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self._stop_all_tasks()

    # ------------------------------------------------------------------
    # Shard movement protocol (called by the Shard Manager)
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: ShardId) -> None:
        """ADD_SHARD: adopt a shard and start its tasks."""
        if not self.alive or self.slow_add:
            raise TimeoutError(f"{self.container_id} add timed out")
        self.assigned_shards.add(shard_id)
        self._reconcile_shard(shard_id)

    def drop_shard(self, shard_id: ShardId) -> None:
        """DROP_SHARD: stop the shard's tasks and forget it."""
        if self.slow_drop:
            raise TimeoutError(f"{self.container_id} drop timed out")
        self._stop_shard_tasks(shard_id)
        self.assigned_shards.discard(shard_id)

    def force_kill_shard(self, shard_id: ShardId) -> None:
        """Forceful kill after a DROP_SHARD timeout (section IV-A2)."""
        self._stop_shard_tasks(shard_id)
        self.assigned_shards.discard(shard_id)

    # ------------------------------------------------------------------
    # Periodic: snapshot refresh and reconciliation
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        if not self.alive:
            return
        now = self._engine.now
        index = self._ts_dep.probe(
            self._service.shard_index, self._shard_manager.num_shards
        )
        if index is not None:
            self._index_lkg.store(index, now)
        elif self._telemetry is not None and self._index_lkg.has_value:
            # Task Service down: keep operating on the last-known-good
            # snapshot (paper section IV-D) and record how stale it is.
            self._telemetry.observe(
                "resilience.task-manager.task-service.staleness_s",
                self._index_lkg.age(now),
            )
        for shard_id in sorted(self.assigned_shards):
            self._reconcile_shard(shard_id)

    @property
    def _cached_index(self) -> Dict[ShardId, Dict[TaskId, TaskSpec]]:
        """The last successfully fetched shard index (empty when never)."""
        return self._index_lkg.get({})

    def _reconcile_shard(self, shard_id: ShardId) -> None:
        """Drive this shard's tasks to match the (cached) spec snapshot."""
        desired = self._cached_index.get(shard_id, {})
        # Stop tasks that should no longer run here.
        for task_id in [
            tid for tid, sid in self._task_shard.items()
            if sid == shard_id and tid not in desired
        ]:
            self._stop_task(task_id)
        # Start / restart what should run.
        for task_id, spec in sorted(desired.items()):
            existing = self.tasks.get(task_id)
            if existing is None:
                self._start_task(spec, shard_id)
            elif existing.spec.settings_fingerprint() != spec.settings_fingerprint():
                # "task update ... relatively lightweight": restart with the
                # new settings, resuming from the committed checkpoints.
                self._stop_task(task_id)
                self._start_task(spec, shard_id)
            elif existing.state == TaskState.CRASHED:
                existing.restart()

    def _start_task(self, spec: TaskSpec, shard_id: ShardId) -> None:
        # Exactly-once handoff: if a promoted standby is covering for this
        # task anywhere in the fleet, retire it before the real task
        # starts, so two incarnations never process the same partitions.
        if self.standby_plane is not None:
            self.standby_plane.release_for_start(spec.task_id)
        # Durable checkpoints: roll the live cursors forward to the last
        # snapshot so a restart resumes from O(since-last-checkpoint)
        # instead of the backlog horizon.
        if self.checkpoint_plane is not None:
            self.checkpoint_plane.on_task_start(spec.job_id)
        if self.data_plane is not None:
            # The roll-forward above (and the start itself) may have moved
            # committed cursors; worker mirrors must resync this job.
            self.data_plane.mark_job_dirty(spec.job_id)
        task = RunningTask(spec, self._scribe)
        self.tasks[spec.task_id] = task
        self._task_shard[spec.task_id] = shard_id
        self.container.reserve(spec.task_id, spec.resources)
        if self._tracer.enabled:
            # Cause: an in-flight shard movement if one brought this task
            # here, otherwise the sync plan that (re)published the spec.
            parent = (
                self._tracer.peek_shard_context(shard_id)
                or self._tracer.peek_context(spec.job_id, SLOT_SYNC)
            )
            self._tracer.record(
                "task-manager", "task-start", job_id=spec.job_id,
                parent=parent, task=spec.task_id, shard=shard_id,
                container=self.container_id,
            )

    def _stop_task(self, task_id: TaskId) -> None:
        task = self.tasks.pop(task_id, None)
        if task is None:
            return
        task.stop()
        self._task_shard.pop(task_id, None)
        if task_id in self.container.reservations:
            self.container.release(task_id)

    def stop_job_tasks(self, job_id: str) -> int:
        """Synchronously stop every task of one job (complex-sync phase 1).

        Returns how many tasks were stopped.
        """
        doomed = [
            task_id
            for task_id, task in self.tasks.items()
            if task.spec.job_id == job_id
        ]
        for task_id in doomed:
            self._stop_task(task_id)
        for task_id in [
            tid for tid, task in self.standbys.items()
            if task.spec.job_id == job_id
        ]:
            self.drop_standby(task_id)
        return len(doomed)

    def _stop_shard_tasks(self, shard_id: ShardId) -> None:
        for task_id in [
            tid for tid, sid in self._task_shard.items() if sid == shard_id
        ]:
            self._stop_task(task_id)

    def _stop_all_tasks(self) -> None:
        for task_id in list(self.tasks):
            self._stop_task(task_id)
        for task_id in list(self.standbys):
            self.drop_standby(task_id)

    # ------------------------------------------------------------------
    # Hot-standby hosting (driven by the standby plane)
    # ------------------------------------------------------------------
    def adopt_standby(self, task: RunningTask) -> None:
        """Host a passive replica; reserves resources like a real task."""
        task_id = task.spec.task_id
        self.standbys[task_id] = task
        self.container.reserve(f"standby:{task_id}", task.spec.resources)

    def drop_standby(self, task_id: TaskId) -> Optional[RunningTask]:
        """Stop and release a hosted replica (promoted or passive)."""
        task = self.standbys.pop(task_id, None)
        if task is None:
            return None
        task.stop()
        key = f"standby:{task_id}"
        if key in self.container.reservations:
            self.container.release(key)
        return task

    # ------------------------------------------------------------------
    # Periodic: heartbeat and the 40-second connection timeout
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        if not self.alive:
            return
        if self.partitioned:
            # *This* container cannot reach the Shard Manager while
            # everyone else can: fail-over may already be under way
            # elsewhere, so the 40-second self-reboot clock must run.
            self._note_connection_failure()
            return
        try:
            self._sm_dep.call(self._shard_manager.heartbeat, self.container_id)
        except ServiceUnavailableError:
            # Service-level outage: no fail-over can happen anywhere, so
            # degraded mode means "keep your shards" — rebooting here
            # would needlessly kill healthy tasks (section IV-D).
            self._outage_started = None
            return
        except DegradedModeError:
            # Reachable but our session is gone (e.g. not registered):
            # treat as a connection failure and arm the reboot clock.
            self._note_connection_failure()
            return
        self._outage_started = None

    def _note_connection_failure(self) -> None:
        now = self._engine.now
        if self._outage_started is None:
            self._outage_started = now
            return
        if now - self._outage_started >= self._connection_timeout:
            self.reboot()

    def reboot(self) -> None:
        """Self-reboot after the proactive connection timeout.

        All tasks stop (so a fail-over elsewhere cannot duplicate them) and
        local shard state clears. On reconnect, the container either gets
        its old shards back (fail-over did not happen yet) or rejoins as an
        empty container (section IV-C).
        """
        self._stop_all_tasks()
        self.assigned_shards.clear()
        self.reboot_count += 1
        self._outage_started = None
        self.container.reboot()
        self._engine.call_in(0.0, self._try_reconnect)

    def _try_reconnect(self) -> None:
        if not self.alive:
            return
        if self.partitioned:
            self._schedule_reconnect()
            return
        try:
            self._sm_dep.call(self._shard_manager.register_container, self)
        except DegradedModeError:
            # Shard Manager still down; back off per the retry policy.
            self._schedule_reconnect()
            return
        self._reconnect_attempts = 0
        # Whatever shards the Shard Manager still maps here are re-adopted;
        # if fail-over already moved them, this list is empty.
        for shard_id in self._shard_manager.shards_of(self.container_id):
            self.add_shard(shard_id)

    def _schedule_reconnect(self) -> None:
        delay = self._sm_dep.schedule_delay(self._reconnect_attempts)
        self._reconnect_attempts += 1
        self._engine.call_in(delay, self._try_reconnect)

    # ------------------------------------------------------------------
    # Periodic: data-plane stepping
    # ------------------------------------------------------------------
    def _step_tasks(self) -> None:
        now = self._engine.now
        dt = now - self._last_step_time
        self._last_step_time = now
        if not self.alive or dt <= 0:
            return
        # Contention model: the container's cgroup CPU limit is shared.
        # When the tasks collectively want more cores than the container
        # has, everyone slows down proportionally — this is what produces
        # lag on hot containers (the paper's Fig. 7 observation).
        throttle = 1.0
        capacity_cpu = self.container.capacity.cpu
        if capacity_cpu > 0:
            desired = sum(
                task.desired_cores(dt) for task in self.tasks.values()
            )
            if self.standbys:
                desired += sum(
                    task.desired_cores(dt) for task in self.standbys.values()
                )
            if desired > capacity_cpu:
                throttle = capacity_cpu / desired
        # A gray node processes slower without looking unhealthy: the
        # degradation lands in the data-plane throttle, never in
        # heartbeats or liveness.
        throttle *= self.slow_factor
        # Coalesced sampling: gather every task's usage samples and land
        # them in one batched store call per step event, instead of three
        # store round-trips per task.
        samples = (
            [] if self._record_task_metrics and self._metrics is not None
            else None
        )
        step_items = list(self.tasks.items())
        if self.standbys:
            # Passive replicas no-op inside step() (STANDBY is not
            # RUNNING); promoted ones process like any primary.
            step_items.extend(self.standbys.items())
        for task_id, task in step_items:
            was_running = task.state == TaskState.RUNNING
            task.step(dt, throttle=throttle)
            if was_running and task.state == TaskState.CRASHED:
                self._handle_oom(task)
            if (
                task_id in self._failed_at
                and task.state == TaskState.RUNNING
                and task.last_rate_mb > 0
            ):
                # First post-recovery progress sample: close the
                # recovery-lag window for the task.recovery_lag SLI.
                lag = now - self._failed_at.pop(task_id)
                if self._metrics is not None:
                    self._metrics.record(
                        task.spec.job_id, "recovery_lag", now, lag
                    )
            if samples is not None and task.state != TaskState.STANDBY:
                samples.append((task_id, "cpu_used", task.last_cpu_used))
                samples.append((task_id, "memory_gb", task.memory_needed_gb()))
                samples.append((task_id, "rate_mb", task.last_rate_mb))
        if samples:
            self._metrics.record_many(now, samples)

    # ------------------------------------------------------------------
    # Parallel data plane hooks (the plane's tick replaces _step_tasks;
    # each hook mirrors one stage of the serial loop above, so the two
    # paths stay byte-identical per task).
    # ------------------------------------------------------------------
    def data_plane_dt(self, now: Seconds) -> Seconds:
        """Advance the step clock exactly like the serial loop's prologue
        (the clock advances even for a dead container)."""
        dt = now - self._last_step_time
        self._last_step_time = now
        return dt

    def throttle_for(self, desired: float) -> float:
        """The contention throttle the serial loop would apply for a
        given total desired-cores demand (includes the gray-node slow
        factor)."""
        throttle = 1.0
        capacity_cpu = self.container.capacity.cpu
        if capacity_cpu > 0 and desired > capacity_cpu:
            throttle = capacity_cpu / desired
        return throttle * self.slow_factor

    def apply_data_plane_step(
        self, now: Seconds, dt: Seconds, throttle: float, plans: List
    ) -> None:
        """Apply pre-computed step plans — the serial loop's per-task
        body (OOM handling, recovery-lag SLI, metric sampling), with
        ``task.step`` replaced by applying the plan the plane computed
        from the same pre-tick state.

        ``plans`` is ``[(task, StepPlan | None)]`` in the same order the
        serial loop visits tasks (``tasks`` then ``standbys``). A
        ``None`` plan marks a contended-job slot: its plan is computed
        here, sequentially, so same-tick readers of shared partitions
        see each other's commits exactly like the serial loop.
        """
        samples = (
            [] if self._record_task_metrics and self._metrics is not None
            else None
        )
        for task, plan in plans:
            task_id = task.spec.task_id
            was_running = task.state == TaskState.RUNNING
            if plan is None:
                plan = task.plan_step(dt, throttle)
            apply_step_plan(task, plan, self._scribe)
            if was_running and task.state == TaskState.CRASHED:
                self._handle_oom(task)
            if (
                task_id in self._failed_at
                and task.state == TaskState.RUNNING
                and task.last_rate_mb > 0
            ):
                lag = now - self._failed_at.pop(task_id)
                if self._metrics is not None:
                    self._metrics.record(
                        task.spec.job_id, "recovery_lag", now, lag
                    )
            if samples is not None and task.state != TaskState.STANDBY:
                samples.append((task_id, "cpu_used", task.last_cpu_used))
                samples.append((task_id, "memory_gb", task.memory_needed_gb()))
                samples.append((task_id, "rate_mb", task.last_rate_mb))
        if samples:
            self._metrics.record_many(now, samples)

    def note_task_failure(self, task_id: TaskId, at: Seconds) -> None:
        """Open a recovery-lag window (used by the standby plane, whose
        promoted replica's first progress sample closes it)."""
        self._failed_at[task_id] = at

    def _handle_oom(self, task: RunningTask) -> None:
        """Read preserved OOM stats and post them to the metric system
        (paper section V-A); restart the task from its checkpoint."""
        self.oom_events += 1
        self._failed_at[task.spec.task_id] = self._engine.now
        if self._metrics is not None:
            self._metrics.record(
                task.spec.job_id, "oom_events", self._engine.now, 1.0
            )
        task.restart()

    # ------------------------------------------------------------------
    # Periodic: shard load aggregation
    # ------------------------------------------------------------------
    def _report_loads(self) -> None:
        """Aggregate task usage per shard and report to the Shard Manager.

        "A background load aggregator thread in each Task Manager collects
        the task resource usage metrics and aggregates them to calculate
        the latest shard load." (section IV-B).
        """
        if not self.alive or self.partitioned:
            return
        per_shard: Dict[ShardId, ResourceVector] = {}
        for task_id, task in self.tasks.items():
            shard_id = self._task_shard[task_id]
            usage = ResourceVector(
                cpu=task.last_cpu_used,
                memory_gb=task.memory_needed_gb(),
                disk_gb=task.disk_needed_gb(),
            )
            per_shard[shard_id] = per_shard.get(
                shard_id, ResourceVector.zero()
            ) + usage
        for shard_id, load in sorted(per_shard.items()):
            if (
                self._sm_dep.probe(
                    self._shard_manager.report_shard_load, shard_id, load,
                    default=False,
                )
                is False
            ):
                # Shard Manager unavailable: drop this report — loads are
                # periodic, the next interval re-reports everything.
                return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def running_task_ids(self) -> List[TaskId]:
        """Tasks currently in RUNNING state (sorted).

        Promoted standbys count — they *are* the running incarnation
        while the takeover window is open.
        """
        running = {
            task_id
            for task_id, task in self.tasks.items()
            if task.state == TaskState.RUNNING
        }
        running.update(
            task_id
            for task_id, task in self.standbys.items()
            if task.state == TaskState.RUNNING
        )
        return sorted(running)

    def __repr__(self) -> str:
        return (
            f"TaskManager({self.container_id!r}, "
            f"shards={len(self.assigned_shards)}, tasks={len(self.tasks)})"
        )
