"""Job-level statistics collection.

Computes, per job, the metrics the Auto Scaler's symptom detectors consume
(paper section V-A):

* ``input_rate_mb`` — MB/s arriving in the job's input category;
* ``processing_rate_mb`` — MB/s the job's tasks actually processed;
* ``bytes_lagged_mb`` — bytes available but not yet ingested;
* ``time_lagged`` — equation (1): ``total_bytes_lagged / processing_rate``;
* ``task_rate_stdev`` — imbalance measure, "the standard deviation of
  processing rate across all the tasks belonging to the same job";
* ``running_tasks`` — live task count (availability dashboards).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.aggregate import stdev
from repro.metrics.store import MetricStore
from repro.scribe.bus import ScribeBus
from repro.sim.engine import Engine, Timer
from repro.tasks.runtime import RunningTask
from repro.tasks.service import TaskService
from repro.tasks.shard_manager import ShardManager
from repro.types import JobId, Seconds, TaskState

#: Collection period: once a minute, like the paper's per-minute workload
#: metrics (section V-C).
COLLECT_INTERVAL: Seconds = 60.0

#: time_lagged stand-in when the job has backlog but zero throughput.
INFINITE_LAG: float = 1e9


class JobStatsCollector:
    """Periodically derives job-level metrics from the data plane."""

    def __init__(
        self,
        engine: Engine,
        task_service: TaskService,
        shard_manager: ShardManager,
        scribe: ScribeBus,
        metrics: MetricStore,
        interval: Seconds = COLLECT_INTERVAL,
    ) -> None:
        self._engine = engine
        self._service = task_service
        self._shard_manager = shard_manager
        self._scribe = scribe
        self._metrics = metrics
        self._interval = interval
        self._last_heads: Dict[JobId, float] = {}
        self._last_processed: Dict[JobId, float] = {}
        self._last_time: Optional[Seconds] = None
        self._timer: Optional[Timer] = None

    def start(self) -> None:
        """Arm the periodic collection timer."""
        if self._timer is None:
            self._timer = self._engine.every(
                self._interval, self.collect_once, name="job-stats"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # One collection round
    # ------------------------------------------------------------------
    def collect_once(self) -> None:
        """Compute and record metrics for every job with specs.

        Derived job metrics are coalesced across the whole round into one
        batched store call — one collection event lands one sample set.
        The rate metrics each job's lag computation reads back are the
        exception; they are recorded inline so the read sees them.
        """
        now = self._engine.now
        dt = now - self._last_time if self._last_time is not None else None
        tasks_by_job = self._tasks_by_job()

        batch: List[tuple] = []
        for job_id in self._service.job_ids():
            specs = self._service.specs_of(job_id)
            if not specs:
                continue
            category_name = specs[0].input_category
            tasks = tasks_by_job.get(job_id, [])
            self._collect_job(job_id, category_name, tasks, now, dt, batch)
        if batch:
            self._metrics.record_many(now, batch)
        self._last_time = now

    def _collect_job(
        self,
        job_id: JobId,
        category_name: str,
        tasks: List[RunningTask],
        now: Seconds,
        dt: Optional[Seconds],
        batch: List[tuple],
    ) -> None:
        head = 0.0
        lagged = 0.0
        if category_name:
            category = self._scribe.get_category(category_name)
            head = category.total_head()
            checkpoints = self._scribe.checkpoints
            lagged = sum(
                partition.available(
                    checkpoints.get(job_id, partition.partition_id)
                )
                for partition in category.partitions
            )
        processed_total = sum(task.total_processed_mb for task in tasks)

        if dt is not None and dt > 0:
            input_rate = (head - self._last_heads.get(job_id, head)) / dt
            processing_rate = (
                processed_total - self._last_processed.get(job_id, processed_total)
            ) / dt
            # The pattern analyzer needs 14 days of per-minute input rates
            # (paper section V-C); give this series a longer retention.
            self._metrics.series(
                job_id, "input_rate_mb", retention=15 * 86400.0
            ).record(now, max(0.0, input_rate))
            # Recorded inline (not batched): the rate-basis fallback just
            # below reads this series back including the current sample.
            self._metrics.record(
                job_id, "processing_rate_mb", now, max(0.0, processing_rate)
            )
            # Equation (1)'s denominator is what the job *can* process per
            # second. The instantaneous rate dips to zero during routine
            # restarts (package pushes, parallelism changes); using the
            # recent processing capability avoids phantom infinite lag.
            rate_basis = max(0.0, processing_rate)
            if rate_basis <= 1e-9:
                recent = self._metrics.series(
                    job_id, "processing_rate_mb"
                ).average_over(900.0, now)
                rate_basis = recent or 0.0
            if lagged <= 1e-9:
                time_lagged = 0.0
            elif rate_basis > 1e-9:
                time_lagged = lagged / rate_basis
            else:
                time_lagged = INFINITE_LAG
            batch.append((job_id, "time_lagged", time_lagged))
        self._last_heads[job_id] = head
        self._last_processed[job_id] = processed_total

        batch.append((job_id, "bytes_lagged_mb", lagged))
        running = [t for t in tasks if t.state == TaskState.RUNNING]
        batch.append((job_id, "running_tasks", float(len(running))))
        if running:
            batch.append((
                job_id, "task_rate_stdev",
                stdev(task.last_rate_mb for task in running),
            ))
            batch.append((
                job_id, "task_memory_max_gb",
                max(task.memory_needed_gb() for task in running),
            ))
            batch.append((
                job_id, "task_cpu_mean",
                sum(task.last_cpu_used for task in running) / len(running),
            ))

    def _tasks_by_job(self) -> Dict[JobId, List[RunningTask]]:
        grouped: Dict[JobId, List[RunningTask]] = {}
        for manager in self._shard_manager.live_managers():
            for task in manager.tasks.values():
                grouped.setdefault(task.spec.job_id, []).append(task)
            # Hosted replicas: passive ones are filtered out by every
            # RUNNING-state check downstream, while a promoted standby
            # keeps processing_rate/running_tasks (and therefore the
            # availability SLI) truthful during the takeover window.
            for task in manager.standbys.values():
                grouped.setdefault(task.spec.job_id, []).append(task)
        return grouped
