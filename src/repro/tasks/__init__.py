"""Task Management layer — *where to run*.

Implements the paper's section IV: the Task Service that turns job configs
into task specs, the per-container local Task Managers with their MD5
task-to-shard mapping, the Shard Manager (Facebook's Slicer-like service)
with its ADD_SHARD/DROP_SHARD movement protocol and bi-directional
heartbeat failover, and the bin-packing load balancer that keeps every
container within a utilization band of the tier average.
"""

from repro.tasks.actuator import TurbineActuator
from repro.tasks.balancer import (
    AssignmentChange,
    PlacementCache,
    compute_assignment,
)
from repro.tasks.manager import TaskManager
from repro.tasks.runtime import RunningTask
from repro.tasks.service import TaskService
from repro.tasks.shard import shard_id_for_task
from repro.tasks.shard_manager import ShardManager
from repro.tasks.spec import TaskSpec
from repro.tasks.stats import JobStatsCollector

__all__ = [
    "TaskSpec",
    "TaskService",
    "TaskManager",
    "ShardManager",
    "RunningTask",
    "TurbineActuator",
    "JobStatsCollector",
    "shard_id_for_task",
    "compute_assignment",
    "AssignmentChange",
    "PlacementCache",
]
