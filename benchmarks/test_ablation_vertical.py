"""Ablation — vertical-first scaling vs horizontal-only.

DESIGN.md calls out the vertical-before-horizontal policy (paper
section V-E): vertical scaling is a settings change (a *simple*
synchronization — tasks restart in place) while horizontal scaling is a
*complex* synchronization (stop all tasks, redistribute checkpoints,
start). Favoring vertical therefore minimizes churn.

This bench runs the same moderate traffic step under both policies and
compares the number of complex synchronizations and the final task count.
Horizontal-only is emulated by provisioning jobs already at the thread
ceiling, which removes vertical headroom.
"""

from repro import JobSpec
from repro.analysis import Table
from repro.scaler import AutoScalerConfig
from repro.workloads import TrafficDriver

from benchmarks.simharness import build_platform

RATE_MB = 10.0  # needs 5 thread-units at P=2
NUM_JOBS = 8


def run_policy(vertical_scaling: bool):
    platform = build_platform(
        num_hosts=4, seed=66, num_shards=64, step_interval=30.0,
        with_scaler=True,
        scaler_config=AutoScalerConfig(
            interval=120.0, vertical_scaling=vertical_scaling,
        ),
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(NUM_JOBS):
        platform.provision(
            JobSpec(job_id=f"job-{index}", input_category=f"cat-{index}",
                    task_count=3, threads_per_task=1,
                    rate_per_thread_mb=2.0, task_count_limit=64),
            partitions=32,
        )
        driver.add_source(f"cat-{index}", lambda t: RATE_MB)
    driver.start()
    platform.run_for(hours=2)

    complex_syncs = sum(
        len(report.complex_synced) for report in platform.syncer.rounds
    )
    tasks = sum(
        platform.job_service.expected_config(f"job-{index}")["task_count"]
        for index in range(NUM_JOBS)
    )
    lagging = sum(
        1 for index in range(NUM_JOBS)
        if (platform.metrics.latest(f"job-{index}", "time_lagged") or 0.0)
        > 90.0
    )
    return complex_syncs, tasks, lagging


def test_vertical_first_reduces_churn(experiment):
    def run():
        return run_policy(vertical_scaling=True), run_policy(
            vertical_scaling=False
        )

    with_vertical, horizontal_only = experiment(run)

    table = Table(["policy", "complex syncs", "total tasks", "lagging jobs"])
    table.add_row("vertical-first (threads 1→2)", *with_vertical)
    table.add_row("horizontal-only (forced)", *horizontal_only)
    print("\n" + table.render())

    vertical_churn, vertical_tasks, vertical_lagging = with_vertical
    horizontal_churn, horizontal_tasks, horizontal_lagging = horizontal_only

    assert vertical_lagging == 0 and horizontal_lagging == 0, (
        "both policies must end within SLO"
    )
    assert vertical_churn < horizontal_churn, (
        "vertical scaling avoids complex synchronizations"
    )
    assert vertical_tasks <= horizontal_tasks, (
        "vertical absorbs demand without adding tasks"
    )
