"""Fig. 10 — resource savings from the auto-scaler rollout.

"Without auto scaling, jobs have to be over-provisioned to handle peak
traffic and reserve some headroom ... the overall task count dropped from
~120K to ~43K, saving ~22% of CPU and ~51% of memory. After the rollout,
the Capacity Manager was authorized to reclaim the saved capacity."

Scaled here: an over-provisioned Scuba fleet (every job sized at ~3x its
steady-state need with peak-sized memory reservations) runs for a while,
then the Auto Scaler is launched. Reported: task count and reserved
CPU/memory before vs after. Shape asserted: a large task-count drop, with
memory savings exceeding CPU savings (memory is reservation-driven, CPU
keeps serving the same traffic on fewer, busier tasks).
"""

import math

from repro import JobSpec, ResourceVector
from repro.analysis import Table
from repro.scaler import AutoScalerConfig
from repro.workloads import ScubaFleet, TrafficDriver

from benchmarks.simharness import build_platform, total_expected_tasks, total_reservations

NUM_JOBS = 250


def overprovisioned_spec(profile) -> JobSpec:
    """Pre-rollout sizing: ~3x the needed tasks, peak-sized memory."""
    needed = max(1, math.ceil(profile.base_rate_mb / 2.0))
    return JobSpec(
        job_id=profile.job_id,
        input_category=f"cat/{profile.job_id.rsplit('-', 1)[-1]}",
        task_count=min(32, needed * 3),
        threads_per_task=1,
        resources_per_task=ResourceVector(cpu=1.0, memory_gb=2.0),
        rate_per_thread_mb=2.0,
        memory_overhead_gb=profile.memory_overhead_gb,
        task_count_limit=32,
    )


def run_experiment_fn():
    platform = build_platform(
        num_hosts=24, seed=10, containers_per_host=4, num_shards=512,
        stats_interval=300.0,
        # Step the data plane at half the traffic tick so in-flight bytes
        # drain before each stats sample — otherwise steady jobs carry a
        # phantom one-tick lag that blocks the scaler's quiet-window check.
        step_interval=30.0,
        with_scaler=False,
    )
    fleet = ScubaFleet(num_jobs=NUM_JOBS, seed=10)
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for profile in fleet.profiles:
        spec = overprovisioned_spec(profile)
        platform.provision(spec, partitions=32)
        driver.add_source(
            spec.input_category, lambda t, rate=profile.base_rate_mb: rate
        )
    driver.start()
    platform.run_for(hours=2)

    before_tasks = total_expected_tasks(platform)
    before = total_reservations(platform)

    # The rollout: attach and start the Auto Scaler with a short quiet
    # window (production uses a day; compressed here).
    platform.attach_scaler(
        AutoScalerConfig(interval=300.0, downscale_after=3600.0)
    )
    platform.scaler.start()
    platform.run_for(hours=8)

    after_tasks = total_expected_tasks(platform)
    after = total_reservations(platform)
    lagging = sum(
        1 for job_id in platform.job_service.active_job_ids()
        if (platform.metrics.latest(job_id, "time_lagged") or 0.0) > 90.0
    )
    return before_tasks, before, after_tasks, after, lagging


def test_fig10_rollout_savings(experiment):
    before_tasks, before, after_tasks, after, lagging = experiment(
        run_experiment_fn
    )

    table = Table(["metric", "before", "after", "saving"])
    table.add_row("task count", before_tasks, after_tasks,
                  f"{1 - after_tasks / before_tasks:.1%}")
    table.add_row("reserved CPU (cores)", before["cpu"], after["cpu"],
                  f"{1 - after['cpu'] / before['cpu']:.1%}")
    table.add_row("reserved memory (GB)", before["memory_gb"],
                  after["memory_gb"],
                  f"{1 - after['memory_gb'] / before['memory_gb']:.1%}")
    print("\n" + table.render())
    print(f"\njobs lagging after rollout: {lagging} "
          f"(savings must not break SLOs)")
    print("paper: task count 120K→43K (-64%), CPU -22%, memory -51%")

    task_saving = 1 - after_tasks / before_tasks
    cpu_saving = 1 - after["cpu"] / before["cpu"]
    memory_saving = 1 - after["memory_gb"] / before["memory_gb"]

    assert task_saving > 0.40, "the over-provisioned fleet shrinks a lot"
    assert memory_saving > 0.30
    assert cpu_saving > 0.10
    assert memory_saving > cpu_saving, (
        "memory savings dominate CPU savings, as in the paper"
    )
    assert lagging <= NUM_JOBS * 0.02, "right-sizing must not cause lag"
