"""Shared platform builders for the simulation experiments.

Production runs at 600+ hosts and 120 K tasks; the experiments here scale
the cluster down (documented per bench) while keeping every control-plane
interval at its paper value unless noted. Coarser data-plane stepping is
the one concession to pure-Python speed — it does not change control-plane
behaviour, only the granularity at which bytes move.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import JobSpec, PlatformConfig, Turbine
from repro.metrics.aggregate import percentile
from repro.workloads import ScubaFleet, TrafficDriver


def build_platform(
    num_hosts: int,
    seed: int,
    containers_per_host: int = 2,
    num_shards: int = 128,
    step_interval: float = 60.0,
    stats_interval: float = 120.0,
    heartbeat_interval: float = 10.0,
    with_scaler: bool = False,
    scaler_config=None,
) -> Turbine:
    config = PlatformConfig(
        num_shards=num_shards,
        containers_per_host=containers_per_host,
        step_interval=step_interval,
        stats_interval=stats_interval,
        heartbeat_interval=heartbeat_interval,
    )
    platform = Turbine.create(num_hosts=num_hosts, seed=seed, config=config)
    if with_scaler:
        platform.attach_scaler(scaler_config)
    platform.start()
    return platform


def provision_scuba_fleet(
    platform: Turbine,
    fleet: ScubaFleet,
    # Keep the driver tick at (or below) the data-plane step interval so
    # per-step processing is smooth rather than bursty.
    driver_tick: float = 60.0,
    partitions_per_category: int = 8,
    reservation_headroom: float = 0.3,
    task_count_limit: int = 32,
) -> TrafficDriver:
    """Provision a Scuba fleet and attach steady traffic for each table."""
    driver = TrafficDriver(platform.engine, platform.scribe, tick=driver_tick)
    specs = fleet.job_specs(
        task_count_limit=task_count_limit,
        reservation_headroom=reservation_headroom,
    )
    for profile, spec in zip(fleet.profiles, specs):
        platform.provision(spec, partitions=partitions_per_category)
        driver.add_source(
            spec.input_category, lambda t, rate=profile.base_rate_mb: rate
        )
    driver.start()
    return driver


def host_cpu_percentiles(platform: Turbine) -> Tuple[float, float, float]:
    """(p5, p50, p95) of per-host CPU utilization right now."""
    usage = platform.host_utilization()
    live_hosts = [h.host_id for h in platform.cluster.live_hosts()]
    utils = [usage.get(host, {}).get("cpu_util", 0.0) for host in live_hosts]
    if not utils:
        return (0.0, 0.0, 0.0)
    return (
        percentile(utils, 5), percentile(utils, 50), percentile(utils, 95)
    )


def total_expected_tasks(platform: Turbine) -> int:
    """Sum of expected task counts across active jobs."""
    return sum(
        int(platform.job_service.expected_config(job_id).get("task_count", 0))
        for job_id in platform.job_service.active_job_ids()
    )


def total_reservations(platform: Turbine) -> Dict[str, float]:
    """Cluster-wide reserved CPU cores and memory GB."""
    reserved = platform.cluster.total_reserved()
    return {"cpu": reserved.cpu, "memory_gb": reserved.memory_gb}
