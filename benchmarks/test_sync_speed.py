"""Section III-B scalar claim — batched simple synchronization speed.

"We can perform simple synchronizations of tens of thousands of jobs
within seconds through batching."
"""

from repro.jobs import ConfigLevel, JobService, JobSpec, JobStore, StateSyncer
from repro.testing import NullActuator

NUM_JOBS = 20_000


def build_fleet():
    store = JobStore()
    service = JobService(store)
    for index in range(NUM_JOBS):
        service.provision(
            JobSpec(job_id=f"job-{index:06d}", input_category="cat")
        )
    syncer = StateSyncer(store, NullActuator())
    syncer.sync_once()  # initial complex syncs, not what we measure
    # A global package release: every job needs one simple sync.
    for job_id in service.job_ids():
        service.patch(
            job_id, ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "2.0"}},
        )
    return syncer


def test_simple_sync_twenty_thousand_jobs(benchmark):
    syncer = build_fleet()

    report = benchmark.pedantic(syncer.sync_once, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.max
    print(f"\n{len(report.simple_synced):,} simple syncs in {elapsed:.2f}s "
          f"(paper: tens of thousands within seconds)")
    assert len(report.simple_synced) == NUM_JOBS
    assert report.complex_synced == []
    assert elapsed < 30.0
