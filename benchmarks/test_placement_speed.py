"""Section VI-A scalar claim — placement speed.

"each execution of the placement algorithm computing the mapping of 100K
shards onto thousands of Turbine containers takes less than two seconds."
"""

import time

from repro.cluster import ResourceVector
from repro.sim import SeededRng
from repro.tasks import PlacementCache, compute_assignment


def build_tier(num_shards=100_000, num_containers=3_000, seed=1):
    rng = SeededRng(seed)
    shards = {
        f"shard-{i:06d}": ResourceVector(
            cpu=rng.uniform(0.01, 1.0), memory_gb=rng.uniform(0.1, 2.0)
        )
        for i in range(num_shards)
    }
    containers = {
        f"turbine-{i:05d}": ResourceVector(cpu=10.0, memory_gb=26.0)
        for i in range(num_containers)
    }
    return shards, containers


def test_place_100k_shards_under_two_seconds(benchmark):
    shards, containers = build_tier()

    def place():
        return compute_assignment(shards, containers)

    change = benchmark.pedantic(place, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.max
    print(f"\n100K shards -> 3K containers in {elapsed:.2f}s (paper: <2s)")
    assert elapsed < 2.0
    assert len(change.assignment) == len(shards)


def test_incremental_rebalance_is_faster(benchmark):
    """Periodic rebalancing reuses the existing assignment, so the steady
    state round is cheaper than the cold placement."""
    shards, containers = build_tier(num_shards=50_000, num_containers=1_500)
    first = compute_assignment(shards, containers)

    def rebalance():
        return compute_assignment(shards, containers, current=first.assignment)

    change = benchmark.pedantic(rebalance, rounds=1, iterations=1)
    assert change.num_moves < len(shards) * 0.05, (
        "a quiet tier moves almost nothing"
    )


def test_cache_hit_round_5x_faster_than_cold_compute(benchmark):
    """The decision cache's payoff: an unchanged tier's placement round is
    an input comparison, not a bin-packing run. The issue's acceptance bar
    is ≥5x; the observed gap is far larger."""
    shards, containers = build_tier(num_shards=50_000, num_containers=1_500)
    cache = PlacementCache()

    start = time.perf_counter()
    first = cache.compute(shards, containers)
    cold_elapsed = time.perf_counter() - start
    assert cache.misses == 1

    current = dict(first.assignment)

    def hit_round():
        return cache.compute(shards, containers, current)

    change = benchmark.pedantic(hit_round, rounds=1, iterations=1)
    hit_elapsed = benchmark.stats.stats.max
    assert cache.hits >= 1, "unchanged inputs must be served from the cache"
    assert change.assignment == first.assignment
    assert change.moves == []

    speedup = cold_elapsed / max(hit_elapsed, 1e-9)
    print(
        f"\nunchanged tier (50K shards): cold {cold_elapsed * 1e3:.0f}ms, "
        f"cache hit {hit_elapsed * 1e3:.1f}ms ({speedup:,.0f}x)"
    )
    assert speedup >= 5.0


def test_repair_round_faster_than_cold_compute(benchmark):
    """A bounded delta (one load report changed) re-runs the packing with
    memoized scalar loads — cheaper than cold, identical result."""
    shards, containers = build_tier(num_shards=50_000, num_containers=1_500)
    cache = PlacementCache()
    first = cache.compute(shards, containers)
    current = dict(first.assignment)
    shards = dict(shards)
    shards["shard-025000"] = ResourceVector(cpu=0.9, memory_gb=1.9)

    def repair_round():
        return cache.compute(shards, containers, current)

    change = benchmark.pedantic(repair_round, rounds=1, iterations=1)
    assert cache.repairs >= 1
    fresh = compute_assignment(shards, containers, current=current)
    assert change.assignment == fresh.assignment
    assert change.moves == fresh.moves
