"""Section VI-A scalar claim — placement speed.

"each execution of the placement algorithm computing the mapping of 100K
shards onto thousands of Turbine containers takes less than two seconds."
"""

from repro.cluster import ResourceVector
from repro.sim import SeededRng
from repro.tasks import compute_assignment


def build_tier(num_shards=100_000, num_containers=3_000, seed=1):
    rng = SeededRng(seed)
    shards = {
        f"shard-{i:06d}": ResourceVector(
            cpu=rng.uniform(0.01, 1.0), memory_gb=rng.uniform(0.1, 2.0)
        )
        for i in range(num_shards)
    }
    containers = {
        f"turbine-{i:05d}": ResourceVector(cpu=10.0, memory_gb=26.0)
        for i in range(num_containers)
    }
    return shards, containers


def test_place_100k_shards_under_two_seconds(benchmark):
    shards, containers = build_tier()

    def place():
        return compute_assignment(shards, containers)

    change = benchmark.pedantic(place, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.max
    print(f"\n100K shards -> 3K containers in {elapsed:.2f}s (paper: <2s)")
    assert elapsed < 2.0
    assert len(change.assignment) == len(shards)


def test_incremental_rebalance_is_faster(benchmark):
    """Periodic rebalancing reuses the existing assignment, so the steady
    state round is cheaper than the cold placement."""
    shards, containers = build_tier(num_shards=50_000, num_containers=1_500)
    first = compute_assignment(shards, containers)

    def rebalance():
        return compute_assignment(shards, containers, current=first.assignment)

    change = benchmark.pedantic(rebalance, rounds=1, iterations=1)
    assert change.num_moves < len(shards) * 0.05, (
        "a quiet tier moves almost nothing"
    )
