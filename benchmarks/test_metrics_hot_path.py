"""Streaming metrics engine hot paths: batched ingest, O(1) windows.

Two costs dominate the metric plane at fleet scale (paper section V-C:
per-minute workload metrics for every task of every job):

* **ingest** — every task manager step lands one sample per task per
  metric; the batched ``record_many`` path is measured here at 10 000
  tasks over one simulated day of collection ticks;
* **trailing-window reads** — every scaler round asks for averages and
  maxima over the last N minutes; the incremental window aggregates
  answer in O(1) amortized instead of rescanning O(window) samples.

The acceptance bar from the issue: windowed reads under sustained
ingestion must be at least 5× faster with the streaming engine than with
the naive rescan path — while returning bit-identical values (the
equality is asserted below too; the exhaustive proof is the property
suite in tests/metrics/test_streaming_equivalence.py).
"""

import time

from repro.metrics.series import TimeSeries
from repro.metrics.store import MetricStore

NUM_TASKS = 10_000
#: One simulated day of ten-minute collection ticks.
INGEST_TICKS = 144
TICK_SECONDS = 600.0

#: The acceptance threshold from the issue ("at least 5x"). The measured
#: gap is far larger on wide windows; 5x keeps the assertion robust on
#: noisy CI.
MIN_SPEEDUP = 5.0

#: Read benchmark: one day of 5-second samples, then sustained
#: record+read rounds over hour-scale trailing windows.
READ_PRELOAD = 17_280
READ_ROUNDS = 200


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def ingest_one_day(store):
    now = 0.0
    for _ in range(INGEST_TICKS):
        now += TICK_SECONDS
        batch = [
            (f"task-{index:05d}", "cpu_used", (index % 97) * 0.01)
            for index in range(NUM_TASKS)
        ]
        store.record_many(now, batch)
    return store


def test_ingest_10k_tasks_one_day(benchmark):
    """Batched ingest throughput: 10 000 tasks × 1 day of ticks."""
    store = benchmark.pedantic(
        ingest_one_day, args=(MetricStore(),), rounds=1, iterations=1
    )
    elapsed = benchmark.stats.stats.max
    total = NUM_TASKS * INGEST_TICKS
    assert store.samples_ingested == total
    assert store.batches_ingested == INGEST_TICKS
    print(
        f"\ningested {total:,} samples in {elapsed:.2f}s "
        f"({total / elapsed / 1e6:.2f}M samples/s)"
    )


#: Scaler-shaped windows: a four-hour average (downscale validation) and
#: a two-hour max (peak detection) over five-second samples.
AVG_WINDOW = 14_400.0
MAX_WINDOW = 7_200.0


def build_loaded_series(streaming):
    series = TimeSeries(retention=2 * 86400.0, streaming=streaming)
    now = 0.0
    for index in range(READ_PRELOAD):
        now += 5.0
        series.record(now, (index % 977) * 0.5)
    # Warm the read path (for streaming: the one-off O(window) build of
    # the rolling state) so the benchmark measures the steady state every
    # scaler round after the first one sees.
    series.average_over(AVG_WINDOW, now)
    series.max_over(MAX_WINDOW, now)
    return series, now


def read_rounds(series, now):
    """Sustained ingestion with scaler-shaped reads: every round appends
    one sample then asks for a window average and a window max."""
    acc = 0.0
    for index in range(READ_ROUNDS):
        now += 5.0
        series.record(now, (index % 977) * 0.5)
        acc += series.average_over(AVG_WINDOW, now)
        acc += series.max_over(MAX_WINDOW, now)
    return acc


def test_windowed_reads_5x_faster_streaming_than_naive(benchmark):
    naive_series, naive_now = build_loaded_series(streaming=False)
    naive_elapsed, naive_acc = timed(lambda: read_rounds(naive_series, naive_now))

    fast_series, fast_now = build_loaded_series(streaming=True)
    fast_acc = benchmark.pedantic(
        read_rounds, args=(fast_series, fast_now), rounds=1, iterations=1
    )
    fast_elapsed = benchmark.stats.stats.max

    # Same samples, same reads — the answers must agree bit for bit.
    assert fast_acc == naive_acc
    assert fast_series.window_fast == 2 * (READ_ROUNDS + 1)

    speedup = naive_elapsed / max(fast_elapsed, 1e-9)
    per_read = fast_elapsed / (2 * READ_ROUNDS)
    print(
        f"\n{2 * READ_ROUNDS} windowed reads over {READ_PRELOAD:,}-sample "
        f"series: naive {naive_elapsed * 1e3:.1f}ms, "
        f"streaming {fast_elapsed * 1e3:.1f}ms "
        f"({speedup:.0f}x, {per_read * 1e6:.1f}us/read)"
    )
    assert speedup >= MIN_SPEEDUP


def test_historical_range_reads_hit_rollup_buckets(benchmark):
    """The pattern analyzer's 14-day reads served from 5-minute buckets."""
    def build(streaming):
        series = TimeSeries(retention=15 * 86400.0, streaming=streaming)
        now = 0.0
        for index in range(14 * 1440):  # 14 days of per-minute samples
            now += 60.0
            series.record(now, (index % 1231) * 0.25)
        return series, now

    def scan_days(series, now):
        acc = 0.0
        for day in range(1, 15):
            start = now - day * 86400.0
            total, count, peak = series.aggregate_between(
                start, start + 86400.0
            )
            acc += total + count + peak
        return acc

    naive_series, naive_now = build(streaming=False)
    naive_elapsed, naive_acc = timed(lambda: scan_days(naive_series, naive_now))

    fast_series, fast_now = build(streaming=True)
    fast_acc = benchmark.pedantic(
        scan_days, args=(fast_series, fast_now), rounds=1, iterations=1
    )
    fast_elapsed = benchmark.stats.stats.max

    assert fast_acc == naive_acc
    assert fast_series.rollup_reads == 14
    print(
        f"\n14 day-wide range reads: naive {naive_elapsed * 1e3:.2f}ms, "
        f"rollup-backed {fast_elapsed * 1e3:.2f}ms "
        f"({naive_elapsed / max(fast_elapsed, 1e-9):.1f}x)"
    )
