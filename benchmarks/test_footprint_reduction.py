"""Section VI-A scalar claim — footprint reduction vs one-task-per-container.

"Before Turbine, each Scuba Tailer task ran in a separate Tupperware
container. The migration to Turbine resulted in a ~33% footprint reduction
thanks to Turbine's better use of the fragmented resources within each
container."

Model: pre-Turbine, every task occupies a fixed-shape standalone container
(sized for the common case, so big tasks need a bigger standard shape and
small tasks waste the difference). With Turbine, tasks pack into shared
parent containers by actual usage plus headroom. Hosts needed = the
dominant resource dimension.
"""

import math

from repro.cluster.host import DEFAULT_HOST_CAPACITY
from repro.workloads import ScubaFleet

FLEET_SIZE = 5_000

#: The standalone-container shape of the pre-Turbine deployment: 1 CPU and
#: 2.5 GB covers the overwhelming majority of tailer tasks (Fig. 5), with
#: heavy tasks taking multiples of the standard shape.
STANDALONE_CPU = 1.0
STANDALONE_MEM_GB = 2.5

#: Headroom Turbine keeps per host for spikes (sections IV-B, VI-A).
TURBINE_HEADROOM = 0.25


def hosts_standalone(fleet: ScubaFleet) -> int:
    """One container per task, rounded up to the standard shape."""
    total_cpu = 0.0
    total_mem = 0.0
    for profile in fleet.profiles:
        cpu_shapes = max(1, math.ceil(profile.task_cpu_cores / STANDALONE_CPU))
        mem_shapes = max(1, math.ceil(profile.task_memory_gb / STANDALONE_MEM_GB))
        shapes = max(cpu_shapes, mem_shapes)
        total_cpu += shapes * STANDALONE_CPU * profile.task_count
        total_mem += shapes * STANDALONE_MEM_GB * profile.task_count
    by_cpu = total_cpu / DEFAULT_HOST_CAPACITY.cpu
    by_mem = total_mem / DEFAULT_HOST_CAPACITY.memory_gb
    return math.ceil(max(by_cpu, by_mem))


def hosts_turbine(fleet: ScubaFleet) -> int:
    """Tasks packed by actual usage plus cluster headroom."""
    cpus, memories = fleet.task_footprints()
    total_cpu = sum(cpus) * (1.0 + TURBINE_HEADROOM)
    total_mem = sum(memories) * (1.0 + TURBINE_HEADROOM)
    by_cpu = total_cpu / DEFAULT_HOST_CAPACITY.cpu
    by_mem = total_mem / DEFAULT_HOST_CAPACITY.memory_gb
    return math.ceil(max(by_cpu, by_mem))


def test_footprint_reduction(experiment):
    def run():
        fleet = ScubaFleet(FLEET_SIZE, seed=33)
        return hosts_standalone(fleet), hosts_turbine(fleet)

    standalone, turbine = experiment(run)
    reduction = 1.0 - turbine / standalone
    print(f"\nhosts, one task per container : {standalone}")
    print(f"hosts, Turbine packing        : {turbine}")
    print(f"footprint reduction           : {reduction:.1%} (paper: ~33%)")

    assert turbine < standalone
    assert 0.20 <= reduction <= 0.60, (
        "packing fragmented resources must save roughly a third"
    )
