"""Algorithm 1 — hierarchical JSON config merge throughput.

The merge runs on every State Syncer round for every job (tens of
thousands of jobs every 30 seconds in production), so it must be cheap.
This bench measures merges/second over realistic 4-level configs.
"""

from repro.jobs import ConfigLevel, JobSpec, merge_levels
from repro.jobs.model import base_config


def realistic_levels():
    spec = JobSpec(
        job_id="scuba/table", input_category="cat", task_count=16,
        threads_per_task=2,
    )
    return {
        ConfigLevel.BASE: base_config(),
        ConfigLevel.PROVISIONER: spec.to_provisioner_config(),
        ConfigLevel.SCALER: {
            "task_count": 24,
            "resources": {"cpu": 2.0, "memory_gb": 1.5},
        },
        ConfigLevel.ONCALL: {"task_count": 32},
    }


def test_merge_throughput(benchmark):
    levels = realistic_levels()
    merged = benchmark(merge_levels, levels)
    # Correctness: precedence respected even under the benchmark loop.
    assert merged["task_count"] == 32
    assert merged["resources"]["cpu"] == 2.0
    assert merged["package"]["name"] == "stream_engine"


def test_merge_thirty_thousand_jobs(benchmark):
    """One syncer round's worth of merges: 30 K jobs within seconds."""
    levels = realistic_levels()

    def merge_fleet():
        for __ in range(30_000):
            merge_levels(levels)

    benchmark.pedantic(merge_fleet, rounds=1, iterations=1)
    total_seconds = benchmark.stats.stats.max
    print(f"\n30,000 merges in {total_seconds:.2f}s")
    assert total_seconds < 10.0, "a syncer round's merges fit in seconds"
