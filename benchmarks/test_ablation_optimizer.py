"""Ablation — IR optimization shrinks cross-stage (Scribe) traffic.

Stage boundaries cost real resources: every byte crossing a shuffle is
written to and read from the persistent bus. Predicate pushdown moves the
filter below the shuffle, so only surviving rows pay that cost. This bench
provisions the same query with and without optimization, drives identical
traffic, and measures the bytes that actually land in the intermediate
category plus the downstream stage's required capacity.
"""

from repro import PlatformConfig, Turbine
from repro.analysis import Table
from repro.provision import (
    Aggregate,
    Field,
    Filter,
    ProvisionService,
    Query,
    Schema,
    Shuffle,
    Sink,
    Source,
)
from repro.workloads import TrafficDriver

EVENTS = Schema.of(
    Field("key", "int"), Field("valid", "bool"), Field("payload", "string"),
)
SELECTIVITY = 0.25
RATE_MB = 8.0


def make_query():
    # Filter written *above* the shuffle, as a user naturally would.
    agg = Aggregate(
        Filter(
            Shuffle(Source("events", EVENTS, rate_mb=RATE_MB), "key"),
            "valid", selectivity=SELECTIVITY,
        ),
        group_by="key", aggregates=("count",),
    )
    return Query("opt", Sink(agg, "opt_out"))


def run_variant(optimize_ir: bool):
    platform = Turbine.create(
        num_hosts=4, seed=71,
        config=PlatformConfig(num_shards=64, containers_per_host=2),
    )
    platform.start()
    pipeline = ProvisionService().provision(
        make_query(), platform, optimize_ir=optimize_ir
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("events", lambda t: RATE_MB)
    driver.start()
    platform.run_for(minutes=30)
    intermediate = platform.scribe.get_category(
        pipeline.intermediate_categories[0]
    )
    downstream_tasks = pipeline.job_specs[1].task_count
    return intermediate.total_head(), downstream_tasks


def test_pushdown_shrinks_shuffle_traffic(experiment):
    def run():
        return run_variant(optimize_ir=True), run_variant(optimize_ir=False)

    (optimized_mb, optimized_tasks), (naive_mb, naive_tasks) = experiment(run)

    table = Table(["variant", "intermediate MB", "stage-1 tasks"])
    table.add_row("optimized (pushdown)", optimized_mb, optimized_tasks)
    table.add_row("unoptimized", naive_mb, naive_tasks)
    print("\n" + table.render())
    print(f"\nshuffle traffic reduction: {1 - optimized_mb / naive_mb:.0%} "
          f"(filter selectivity {SELECTIVITY})")

    assert optimized_mb < naive_mb * (SELECTIVITY + 0.1), (
        "pushdown must cut shuffle traffic roughly by the selectivity"
    )
    assert optimized_tasks <= naive_tasks, (
        "the downstream stage is provisioned smaller too"
    )
