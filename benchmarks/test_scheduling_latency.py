"""Section IV-D scalar claims — scheduling and recovery latencies.

* "The overall end to end scheduling is 1-2 minutes on average, even for
  cluster-wide updates." (State Syncer 30 s + Task Service cache 90 s +
  Task Manager refresh 60 s)
* "Turbine ... is capable of pushing a global stream-processing engine
  upgrade — an operation requiring a restart of tens of thousands of
  tasks — within 5 minutes."
* "If system failures occur, fail-overs start after 60 seconds. The
  downtime for a task on average is less than 2 minutes."
"""

from repro import ConfigLevel, JobSpec
from repro.analysis import Table
from repro.metrics.aggregate import mean

from benchmarks.simharness import build_platform


def measure_end_to_end_scheduling():
    """Provision jobs at random instants; measure provision→running."""
    platform = build_platform(num_hosts=4, seed=44, num_shards=64)
    platform.run_for(minutes=5)
    latencies = []
    rng = platform.engine.rng.fork("arrivals")
    for index in range(12):
        platform.run_for(seconds=rng.uniform(30.0, 300.0))
        job_id = f"job-{index:02d}"
        platform.provision(
            JobSpec(job_id=job_id, input_category=f"cat-{index:02d}",
                    task_count=4),
        )
        start = platform.now
        while len(platform.tasks_of_job(job_id)) < 4:
            platform.run_for(seconds=5.0)
            if platform.now - start > 600.0:
                break
        latencies.append(platform.now - start)
    return latencies


def measure_global_push():
    """A cluster-wide engine upgrade across every job."""
    platform = build_platform(num_hosts=6, seed=45, num_shards=128)
    for index in range(40):
        platform.provision(
            JobSpec(job_id=f"job-{index:02d}", input_category=f"c{index:02d}",
                    task_count=4),
        )
    platform.run_for(minutes=5)

    start = platform.now
    for index in range(40):
        platform.job_service.patch(
            f"job-{index:02d}", ConfigLevel.PROVISIONER,
            {"package": {"name": "stream_engine", "version": "7.7"}},
        )

    def all_upgraded():
        versions = [
            task.spec.package_version
            for manager in platform.task_managers.values()
            for task in manager.tasks.values()
        ]
        return versions and all(v == "7.7" for v in versions)

    while not all_upgraded():
        platform.run_for(seconds=10.0)
        if platform.now - start > 900.0:
            break
    return platform.now - start


def measure_failover_downtime():
    """Host loss → tasks running again elsewhere."""
    platform = build_platform(num_hosts=4, seed=46, num_shards=64)
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=16),
    )
    platform.run_for(minutes=5)
    assert len(platform.tasks_of_job("job")) == 16

    # Kill the most loaded host so the measurement covers a real group of
    # tasks, not a single straggler.
    per_host = {}
    for manager in platform.task_managers.values():
        per_host.setdefault(manager.container.host_id, 0)
        per_host[manager.container.host_id] += len(manager.running_task_ids())
    victim_host = max(per_host, key=lambda host: (per_host[host], host))
    lost = per_host[victim_host]
    platform.cluster.fail_host(victim_host)
    start = platform.now
    while len(platform.tasks_of_job("job")) < 16:
        platform.run_for(seconds=5.0)
        if platform.now - start > 600.0:
            break
    return platform.now - start, lost


def run_experiment_fn():
    scheduling = measure_end_to_end_scheduling()
    push = measure_global_push()
    downtime, lost = measure_failover_downtime()
    return scheduling, push, downtime, lost


def test_scheduling_latencies(experiment):
    scheduling, push, downtime, lost = experiment(run_experiment_fn)

    table = Table(["claim", "paper", "measured"])
    table.add_row("end-to-end scheduling (mean)", "1-2 min",
                  f"{mean(scheduling) / 60:.2f} min")
    table.add_row("end-to-end scheduling (max)", "-",
                  f"{max(scheduling) / 60:.2f} min")
    table.add_row("cluster-wide engine push", "< 5 min",
                  f"{push / 60:.2f} min")
    table.add_row(f"failover downtime ({lost} tasks)", "< 2 min avg",
                  f"{downtime / 60:.2f} min")
    print("\n" + table.render())

    assert 30.0 <= mean(scheduling) <= 150.0, "~1-2 minutes on average"
    assert max(scheduling) <= 240.0
    assert push <= 300.0, "global upgrade within 5 minutes"
    assert downtime <= 150.0, "failover restores tasks within ~2 minutes"
    assert downtime >= 60.0, "fail-overs start after the 60 s interval"
