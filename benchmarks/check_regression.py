#!/usr/bin/env python
"""Benchmark regression gate: compare a run against BENCH_baseline.json.

Raw wall-clock times are machine-dependent — a committed baseline of
absolute numbers would fail on every hardware change. Instead the gate
normalizes every benchmark by a *reference* benchmark measured in the
same run (the cold 100K-shard placement, a pure CPU-bound computation),
and compares these ratios. A ratio is stable across machines of different
speed, but moves immediately when one code path regresses relative to the
rest — which is exactly what the gate is for: catching the incremental
paths silently degrading back to O(fleet) work.

Usage:
    pytest benchmarks/test_sync_speed.py benchmarks/test_incremental_sync.py \\
        benchmarks/test_placement_speed.py --benchmark-only \\
        --benchmark-json=bench.json
    python benchmarks/check_regression.py bench.json            # gate
    python benchmarks/check_regression.py bench.json --update   # re-baseline

Exit status 1 when any benchmark regressed by more than its allowed
tolerance (default +25% over the baseline ratio; micro-benchmarks whose
absolute time is tiny carry a larger per-entry tolerance because their
ratio is noisier — see ``tolerance`` in the baseline file).
"""

import argparse
import json
import sys
from pathlib import Path

#: CPU-bound yardstick all other benchmarks are expressed in units of.
REFERENCE = "test_place_100k_shards_under_two_seconds"

#: Default allowed regression: +25% over the committed ratio.
DEFAULT_TOLERANCE = 0.25

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"


def load_ratios(results_path):
    """Map benchmark name -> mean time normalized by the reference."""
    data = json.loads(Path(results_path).read_text())
    means = {
        bench["name"]: bench["stats"]["mean"]
        for bench in data["benchmarks"]
    }
    if REFERENCE not in means:
        sys.exit(f"reference benchmark {REFERENCE!r} missing from results")
    reference = means[REFERENCE]
    return {
        name: mean / reference
        for name, mean in means.items()
        if name != REFERENCE
    }


def update_baseline(ratios, baseline_path):
    existing = {}
    if baseline_path.exists():
        existing = {
            entry["name"]: entry
            for entry in json.loads(baseline_path.read_text())["benchmarks"]
        }
    benchmarks = []
    for name in sorted(ratios):
        entry = {"name": name, "ratio": round(ratios[name], 6)}
        tolerance = existing.get(name, {}).get("tolerance")
        if tolerance is not None:
            entry["tolerance"] = tolerance
        benchmarks.append(entry)
    baseline_path.write_text(
        json.dumps(
            {"reference": REFERENCE, "benchmarks": benchmarks}, indent=2
        )
        + "\n"
    )
    print(f"baseline updated: {baseline_path} ({len(benchmarks)} entries)")


def check(ratios, baseline_path):
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for entry in baseline["benchmarks"]:
        name = entry["name"]
        if name not in ratios:
            failures.append(f"{name}: missing from this run")
            continue
        tolerance = entry.get("tolerance", DEFAULT_TOLERANCE)
        allowed = entry["ratio"] * (1.0 + tolerance)
        actual = ratios[name]
        verdict = "ok" if actual <= allowed else "REGRESSED"
        delta = (actual / entry["ratio"] - 1.0) * 100.0
        source = "per-entry" if "tolerance" in entry else "default"
        print(
            f"{name}: ratio {actual:.4f} "
            f"(baseline {entry['ratio']:.4f}, {delta:+.1f}%, "
            f"allowed <= {allowed:.4f}, "
            f"tolerance +{tolerance:.0%} [{source}]) "
            f"{verdict}"
        )
        if actual > allowed:
            failures.append(
                f"{name}: ratio {actual:.4f} exceeds allowed {allowed:.4f} "
                f"(+{(actual / entry['ratio'] - 1.0) * 100:.0f}% vs baseline)"
            )
    known = {entry["name"] for entry in baseline["benchmarks"]}
    for name in sorted(set(ratios) - known):
        # A benchmark that runs but has no committed ratio is ungated —
        # failing loudly here is what forces new benchmarks to register
        # in the baseline instead of silently floating free.
        print(f"{name}: NOT IN BASELINE")
        failures.append(
            f"{name}: present in this run but missing from the baseline "
            "(register it with --update)"
        )
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="pytest-benchmark --benchmark-json file")
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_PATH,
        help=f"baseline file (default: {BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)
    ratios = load_ratios(args.results)
    if args.update:
        update_baseline(ratios, args.baseline)
        return 0
    return check(ratios, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
