"""Fig. 8 — the Auto Scaler drains a backlog much faster.

The paper's incident: a Scuba tailer job was disabled for five days and
accumulated a large backlog. In ``cluster1`` (auto scaler launched) the
scaler grew the job to the 32-task default limit, the operator lifted the
limit, and it scaled to 128 tasks; ``cluster2`` (no auto scaler) processed
the same backlog ~8x slower — even after a manual bump to 128 tasks its
recovery stayed suboptimal because of uneven traffic distribution.

Scaled here: a 2-hour backlog at 12 MB/s; cluster2 receives the same
manual 32-task bump but with skewed input. Reported: the lag-over-time
series for both clusters; asserted: cluster1 recovers several times
faster.
"""

from repro import ConfigLevel, JobSpec, SLO
from repro.analysis import format_series
from repro.scaler import AutoScalerConfig
from repro.workloads import TrafficDriver

from benchmarks.simharness import build_platform

INPUT_RATE_MB = 12.0
BACKLOG_SECONDS = 4 * 3600.0
#: Drained when lag falls below ~2.5 minutes of input — above the steady
#: in-flight volume of one traffic tick.
DRAINED_MB = INPUT_RATE_MB * 150.0
JOB = "scuba/backlogged"
CATEGORY = "backlogged"


def build_cluster(with_scaler: bool, seed: int):
    platform = build_platform(
        num_hosts=8, seed=seed, containers_per_host=4, num_shards=128,
        with_scaler=with_scaler,
        scaler_config=AutoScalerConfig(interval=120.0) if with_scaler else None,
    )
    platform.provision(
        JobSpec(
            job_id=JOB, input_category=CATEGORY, task_count=4,
            rate_per_thread_mb=2.0, task_count_limit=32,
            slo=SLO(max_lag_seconds=90.0, recovery_seconds=1800.0),
        ),
        partitions=128,
    )
    # Disable the job (the paper's "application problems") and accumulate
    # the backlog.
    platform.actuator.stop_tasks(JOB)
    platform.scribe.get_category(CATEGORY).append(
        INPUT_RATE_MB * BACKLOG_SECONDS
    )
    return platform


def drain(platform, with_scaler: bool, manual_bump_to: int = 0):
    """Re-enable the job and record (hours, lag GB) until drained."""
    platform.job_store.commit_running(JOB, {})  # force resync/restart
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source(CATEGORY, lambda t: INPUT_RATE_MB)
    driver.start()
    if manual_bump_to:
        # cluster2's operator bumps parallelism manually, but the input is
        # skewed at the *task* level: a few tasks own hot partitions whose
        # combined rate leaves them almost no spare capacity, so their
        # share of the backlog drains very slowly — the paper's "recovery
        # speed was still suboptimal because of uneven traffic
        # distribution among tasks".
        platform.job_service.patch(
            JOB, ConfigLevel.ONCALL, {"task_count": manual_bump_to}
        )
        category = platform.scribe.get_category(CATEGORY)
        weights = [8.0 if index < 4 else 0.2
                   for index in range(category.num_partitions)]
        category.set_weights(weights)

    start = platform.now
    series = [(0.0, platform.job_lag_mb(JOB) / 1000.0)]
    lifted = False
    while platform.job_lag_mb(JOB) > DRAINED_MB:
        platform.run_for(minutes=15)
        elapsed = platform.now - start
        series.append((elapsed, platform.job_lag_mb(JOB) / 1000.0))
        if with_scaler and not lifted:
            config = platform.job_service.expected_config(JOB)
            if config["task_count"] >= 32:
                platform.job_service.patch(
                    JOB, ConfigLevel.ONCALL, {"task_count_limit": 128}
                )
                lifted = True
        if elapsed > 48 * 3600.0:
            break
    return (platform.now - start) / 3600.0, series


def run_experiment_fn():
    cluster1 = build_cluster(with_scaler=True, seed=8)
    hours1, series1 = drain(cluster1, with_scaler=True)
    cluster2 = build_cluster(with_scaler=False, seed=8)
    hours2, series2 = drain(cluster2, with_scaler=False, manual_bump_to=32)
    return hours1, series1, hours2, series2


def test_fig8_backlog_recovery(experiment):
    hours1, series1, hours2, series2 = experiment(run_experiment_fn)

    print("\n" + format_series("cluster1 lag (GB, with auto scaler)",
                               series1, time_unit="h"))
    print("\n" + format_series("cluster2 lag (GB, manual bump, skewed input)",
                               series2, time_unit="h"))
    speedup = hours2 / hours1
    print(f"\ncluster1 (scaler)  : {hours1:5.2f} h to drain")
    print(f"cluster2 (manual)  : {hours2:5.2f} h to drain")
    print(f"speedup            : {speedup:.1f}x (paper: ~8x)")

    assert hours1 < hours2, "the auto scaler must win"
    assert speedup > 3.0, "and win by a wide margin (paper: ~8x)"
    # Lag decreases monotonically once recovery starts in cluster1.
    lags1 = [lag for __, lag in series1]
    assert lags1[-1] < lags1[0] * 0.1
