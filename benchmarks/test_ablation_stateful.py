"""Ablation — stateful jobs pay more for horizontal scaling.

"Horizontal scaling is challenging since changing the number of tasks
requires redistributing input checkpoints between tasks for stateless
jobs, and, additionally, redistributing state for stateful jobs. ... such
redistribution requires coordination between tasks and, as a result, takes
more time." (paper section V-E).

This bench performs the same parallelism change (4 → 8 tasks) on a
stateless job and on a stateful job with substantial state, and measures
the end-to-end disruption: the time from the config change until the job
is processing at full capacity again (the stateful job additionally
re-loads its state partitions on every new task).
"""

from repro import JobSpec, ResourceVector, SLO
from repro.analysis import Table
from repro.jobs import ConfigLevel
from repro.workloads import TrafficDriver

from benchmarks.simharness import build_platform

RATE_MB = 6.0


def measure_resize_disruption(stateful: bool, keys: int = 0):
    platform = build_platform(
        num_hosts=4, seed=99, num_shards=64, step_interval=10.0,
    )
    # The stateful variant holds keys/task_count × 0.25 GB/M of state per
    # task; reserve enough memory that OOM does not confound the restore
    # measurement.
    memory = 0.5 if not stateful else 1.0 + (keys / 4 / 1e6) * 0.25 * 1.3
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=4,
                rate_per_thread_mb=2.0, stateful=stateful,
                state_key_cardinality=keys,
                resources_per_task=ResourceVector(cpu=1.0, memory_gb=memory),
                slo=SLO(max_lag_seconds=90.0)),
        partitions=64,
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=10.0)
    driver.add_source("cat", lambda t: RATE_MB)
    driver.start()
    platform.run_for(minutes=10)
    assert platform.job_lag_mb("job") < RATE_MB * 60, "healthy before resize"

    start = platform.now
    platform.job_service.patch("job", ConfigLevel.SCALER, {"task_count": 8})
    # Disruption ends when all 8 tasks run, none is restoring, and the
    # backlog built during the restart has drained back to steady state.
    while True:
        platform.run_for(seconds=10.0)
        tasks = [
            task
            for manager in platform.task_managers.values()
            for task in manager.tasks.values()
            if task.spec.job_id == "job"
        ]
        running = [t for t in tasks if t.state.value == "running"]
        if (
            len(running) == 8
            and not any(t.restoring for t in running)
            and platform.job_lag_mb("job") < RATE_MB * 30
        ):
            break
        if platform.now - start > 3600.0:
            break
    return platform.now - start


def test_stateful_resize_costs_more(experiment):
    def run():
        stateless = measure_resize_disruption(stateful=False)
        stateful = measure_resize_disruption(
            stateful=True, keys=160_000_000  # 40 GB of state
        )
        return stateless, stateful

    stateless_seconds, stateful_seconds = experiment(run)

    table = Table(["job kind", "resize disruption (s)"])
    table.add_row("stateless (checkpoints only)", stateless_seconds)
    table.add_row("stateful (40 GB state restore)", stateful_seconds)
    print("\n" + table.render())

    assert stateless_seconds <= 300.0, (
        "a stateless resize completes within the scheduling latency"
    )
    assert stateful_seconds > stateless_seconds, (
        "state redistribution must make the stateful resize slower"
    )
