"""Platform data plane at scale: sliced step ticks vs the serial stepper.

The capability bench for the parallel data plane: a 128-task SLO-tracked
deployment — 16 diurnal jobs, 128 Scribe partitions per category (16
readable partitions per task), two simulated hours at the 10 s step
cadence (720 data-plane ticks) — run once with the plane at 1 partition
slice and once at 4 slices in worker processes. The sliced run must
produce byte-identical exports (fingerprint, timeline, SLO report,
trace, deterministic telemetry) while cutting wall-clock.

The ≥2× speedup assertion is conditional on hardware, same contract as
``test_parallel_substrate.py``: slices run on cores, so a runner with
fewer than 4 usable CPUs physically cannot show it (the bench then
still gates byte-identity plus a bounded overhead floor — the sliced
run must never collapse). The strong-scaling table across 1/2/4
partitions lives in EXPERIMENTS.md ("Parallel data plane").
"""

import os
import time

from repro import JobSpec, PlatformConfig, Turbine
from repro.chaos.runner import platform_fingerprint
from repro.ops.timeline import IncidentTimeline
from repro.workloads import DiurnalPattern, TrafficDriver

SEED = 20260808
JOBS = 16
TASKS_PER_JOB = 8
#: Scribe partitions per category: 16 readable partitions per task, so
#: per-tick planning work (sort + water-fill over entries) dominates the
#: coordinator's serial apply loop — the Amdahl headroom the speedup
#: gate needs.
CATEGORY_PARTITIONS = 128
SIM_HOURS = 2.0

#: The acceptance bar from the issue, asserted when >= 4 cores exist.
MIN_SPEEDUP = 2.0

#: Single-core safety net: slice orchestration overhead on a starved
#: runner must stay bounded.
MAX_SLOWDOWN = 1.8

_EXPORTS = ("fingerprint", "timeline", "slo", "trace", "telemetry")

_cache = {}


def _run_platform(partitions, use_processes):
    platform = Turbine.create(
        num_hosts=16, seed=SEED,
        config=PlatformConfig(
            num_shards=64, containers_per_host=4,
            data_plane_partitions=partitions,
            data_plane_processes=use_processes,
        ),
    )
    platform.enable_tracing()
    platform.enable_instrumentation()
    platform.attach_slo()
    platform.start()
    driver = TrafficDriver(
        platform.engine, platform.scribe, tick=300.0,
        metrics=platform.metrics,
    )
    for index in range(JOBS):
        platform.provision(
            JobSpec(
                job_id=f"job-{index}", input_category=f"cat-{index}",
                task_count=TASKS_PER_JOB, rate_per_thread_mb=2.0,
            ),
            partitions=CATEGORY_PARTITIONS,
        )
        driver.add_source(
            f"cat-{index}",
            DiurnalPattern(
                3.0 + index % 5, amplitude=0.3,
                rng=platform.engine.rng.fork(f"wl-{index}"),
            ),
        )
    driver.start()
    started = time.perf_counter()
    try:
        platform.run_for(hours=SIM_HOURS)
    finally:
        plane = platform.data_plane
        if plane is not None:
            plane.close()
    return {
        "wall_s": time.perf_counter() - started,
        "fingerprint": platform_fingerprint(platform),
        "timeline": IncidentTimeline(platform).render(),
        "slo": platform.slo.to_json(platform.now),
        "trace": platform.tracer.to_jsonl(),
        "telemetry": platform.telemetry.to_jsonl(deterministic=True),
        "ticks": plane.ticks if plane is not None else 0,
        "plan_skew": plane.plan_skew if plane is not None else 0.0,
        "used_processes": bool(plane.used_processes) if plane else False,
    }


def _single_slice():
    if "single" not in _cache:
        _cache["single"] = _run_platform(1, False)
    return _cache["single"]


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_platform_data_plane_single_slice(experiment):
    """The 128-task SLO deployment completes with the plane at width 1."""
    # Unmeasured cold run first: warms entity-key tables so both sides
    # of the speedup comparison measure warm-cache steady state.
    _single_slice()
    result = experiment(lambda: _run_platform(1, False))
    _cache["single"] = result

    assert result["ticks"] == int(SIM_HOURS * 3600 / 10.0)
    assert result["fingerprint"], "fingerprint export must not be empty"
    assert "dataplane.ticks" in result["telemetry"]
    print(
        f"\nsingle slice: {JOBS * TASKS_PER_JOB} tasks x "
        f"{SIM_HOURS:g} simulated hours in {result['wall_s']:.2f}s wall "
        f"({result['ticks']} ticks)"
    )


def test_platform_data_plane_four_slices(experiment):
    """4 slices: byte-identical exports, >=2x wall on >=4 cores."""
    base = _single_slice()
    result = experiment(lambda: _run_platform(4, True))

    for name in _EXPORTS:
        assert result[name] == base[name], (
            f"{name} diverged between 1 and 4 partition slices"
        )
    assert result["ticks"] == base["ticks"]
    assert result["plan_skew"] >= 1.0

    cores = _usable_cores()
    speedup = base["wall_s"] / result["wall_s"]
    mode = "processes" if result["used_processes"] else "in-process fallback"
    print(
        f"\n4 slices ({mode}, {cores} usable cores): "
        f"{result['wall_s']:.2f}s vs single slice {base['wall_s']:.2f}s "
        f"-> speedup {speedup:.2f}x, plan skew {result['plan_skew']:.3f}"
    )
    if result["used_processes"] and cores >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x on {cores} cores, got {speedup:.2f}x"
        )
    else:
        assert speedup >= 1.0 / MAX_SLOWDOWN, (
            f"sliced run collapsed: {speedup:.2f}x "
            f"(cores={cores}, mode={mode})"
        )
