"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one table/figure of the paper: it runs the
simulation (once — these are experiments, not micro-benchmarks, so
``rounds=1``), prints the same rows/series the paper reports, and asserts
the qualitative *shape* (who wins, by roughly what factor, where the
crossover falls). Absolute numbers differ from the paper's production
fleet; EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, fn):
    """Run a full experiment once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def experiment(benchmark):
    """Fixture: ``experiment(fn)`` runs fn once and returns its result."""
    def runner(fn):
        return run_experiment(benchmark, fn)

    return runner
