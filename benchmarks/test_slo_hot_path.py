"""SLO plane hot path: incremental SLI evaluation vs naive rescans.

Every simulated minute the SLO tracker judges every (job, SLO) pair and
then reads burn rates over the rule windows (5 min/1 h page, 30 min/6 h
ticket) plus the full compliance window for the error budget. This
benchmark models the classic SRE configuration — a **monthly** error
budget, i.e. a 30-day compliance window over per-minute judgements, so
the budget read spans ~43 000 samples. All reads go through
:func:`repro.obs.slo.bad_fraction` / :func:`repro.obs.slo.burn_rate` —
the exact production code path — over the tracker's 0/1 bookkeeping
series.

With streaming on, each read is served by the rolling
:class:`~repro.metrics.window.WindowAggregate` state in O(1) amortized;
with streaming off, each read rescans every sample inside the window.
The acceptance bar from the issue: the incremental path must evaluate a
fleet at least 5× faster than the naive rescan — while returning
bit-identical burn rates and budgets (asserted below).
"""

import time

from repro.metrics.store import MetricStore
from repro.obs.slo import bad_fraction, burn_rate

NUM_JOBS = 10
#: Thirty days of per-minute judgements preloaded per job (the monthly
#: compliance window is full when the measurement starts).
PRELOAD_MINUTES = 43_200
#: Sustained tracker rounds measured: record one judgement per job, then
#: read every burn-rate window, every round.
EVAL_ROUNDS = 20
#: The tracker's read set: page rule (5 min + 1 h), ticket rule windows
#: (30 min + 6 h), and the 30-day compliance/budget window.
WINDOWS = (300.0, 1800.0, 3600.0, 21600.0, 30 * 86400.0)
TARGET = 0.99
#: The tracker's bookkeeping retention: 1.25 × the compliance window.
RETENTION = 30 * 86400.0 * 1.25

#: The acceptance threshold from the issue ("at least 5x").
MIN_SPEEDUP = 5.0


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def judgement(job, minute):
    """A deterministic 0/1 bad-sample pattern (bursty, job-dependent)."""
    return 1.0 if (minute + job * 7) % 13 < 2 else 0.0


def build_store(streaming):
    """A tracker-shaped bookkeeping store after a month of evaluations."""
    store = MetricStore(default_retention=RETENTION, streaming=streaming)
    now = 0.0
    for minute in range(PRELOAD_MINUTES):
        now += 60.0
        store.record_many(now, [
            (f"job-{job:03d}", "slo_bad.lag", judgement(job, minute))
            for job in range(NUM_JOBS)
        ])
    # Warm every read window (for streaming: the one-off O(window) build
    # of each rolling aggregate) so the measurement sees the steady state
    # every tracker round after the first one sees.
    for job in range(NUM_JOBS):
        series = store.series(f"job-{job:03d}", "slo_bad.lag")
        for window in WINDOWS:
            bad_fraction(series, window, now)
    return store, now


def evaluate_rounds(store, now):
    """Sustained tracker rounds: land one judgement per job, then read
    every burn window for every job — the per-minute fleet evaluation."""
    acc = 0.0
    for round_index in range(EVAL_ROUNDS):
        now += 60.0
        store.record_many(now, [
            (f"job-{job:03d}", "slo_bad.lag",
             judgement(job, PRELOAD_MINUTES + round_index))
            for job in range(NUM_JOBS)
        ])
        for job in range(NUM_JOBS):
            series = store.series(f"job-{job:03d}", "slo_bad.lag")
            for window in WINDOWS:
                acc += burn_rate(series, window, now, TARGET)
    return acc


def test_fleet_slo_evaluation_5x_faster_streaming_than_naive(benchmark):
    naive_store, naive_now = build_store(streaming=False)
    naive_elapsed, naive_acc = timed(
        lambda: evaluate_rounds(naive_store, naive_now)
    )

    fast_store, fast_now = build_store(streaming=True)
    fast_acc = benchmark.pedantic(
        evaluate_rounds, args=(fast_store, fast_now), rounds=1, iterations=1
    )
    fast_elapsed = benchmark.stats.stats.max

    # Same judgements, same windows — burn rates must agree bit for bit.
    assert fast_acc == naive_acc
    reads = EVAL_ROUNDS * NUM_JOBS * len(WINDOWS)
    assert fast_store.read_stats()["window_fast"] >= reads

    speedup = naive_elapsed / max(fast_elapsed, 1e-9)
    print(
        f"\n{reads} burn-rate reads across {NUM_JOBS} jobs: "
        f"naive {naive_elapsed * 1e3:.1f}ms, "
        f"streaming {fast_elapsed * 1e3:.1f}ms ({speedup:.0f}x)"
    )
    assert speedup >= MIN_SPEEDUP
