"""Sharded parallel substrate at scale: 100k tasks through one day.

This is the ROADMAP item-2 capability bench: the fleet-scale workload —
100 000 tasks across 20 diurnal jobs, one full simulated day of
data-plane steps plus 24 control-plane round barriers — must complete
inside the CI bench gate on the single loop, and running the *same*
spec at 4 partitions in worker processes must produce byte-identical
exports while cutting wall-clock.

The ≥2× speedup assertion is conditional on hardware: partitions run on
cores, so a runner with fewer than 4 usable CPUs physically cannot show
it (the bench then still runs, prints the measured numbers, and gates
only on byte-identity plus a bounded overhead factor — the partitioned
run must never collapse). The strong-scaling table across 1/2/4/8
partitions lives in EXPERIMENTS.md.
"""

import os

from repro.sim.parallel import run_fleet, standard_fleet

SEED = 20260808
TASKS = 100_000
JOBS = 20
SHARDS = 256
#: Per-minute data-plane stepping — the paper's workload-metric cadence
#: (section V: per-minute metrics for every task of every job).
STEP_S = 60.0

#: The acceptance bar from the issue, asserted when >= 4 cores exist.
MIN_SPEEDUP = 2.0

#: Single-core safety net: process orchestration overhead on a starved
#: runner must stay bounded (measured ~1.1x on one core).
MAX_SLOWDOWN = 1.8

_EXPORTS = ("fingerprint_json", "timeline_text", "slo_json", "telemetry_jsonl")

_cache = {}


def _spec():
    return standard_fleet(
        seed=SEED,
        total_tasks=TASKS,
        num_jobs=JOBS,
        num_shards=SHARDS,
        step_interval=STEP_S,
    )


def _single_loop():
    if "single" not in _cache:
        _cache["single"] = run_fleet(_spec(), partitions=1)
    return _cache["single"]


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_single_loop_100k_tasks_one_day(experiment):
    """The 100k-task/day workload completes on the single event loop."""
    # Unmeasured cold run first: it warms the module-level entity-keyed
    # tables (task->shard indexes) so both sides of the speedup
    # comparison measure warm-cache steady state.
    _single_loop()
    result = experiment(lambda: run_fleet(_spec(), partitions=1))
    _cache["single"] = result

    assert result.partitions == 1 and not result.used_processes
    assert result.rounds == 24
    final = result.fingerprint["final"]
    assert len(final) == JOBS
    # The fleet actually ran: tasks exist, data moved, control acted.
    assert sum(job["task_count"] for job in final.values()) >= TASKS
    assert sum(job["processed_u"] for job in final.values()) > 0
    assert result.fingerprint["crash_total"] > 0
    print(
        f"\nsingle loop: {TASKS} tasks x 1 simulated day "
        f"in {result.wall_s:.2f}s wall ({result.events} events)"
    )


def test_four_partitions_100k_tasks_one_day(experiment):
    """4 partitions: byte-identical exports, >=2x wall on >=4 cores."""
    base = _single_loop()
    result = experiment(
        lambda: run_fleet(_spec(), partitions=4, use_processes=True)
    )

    for name in _EXPORTS:
        assert getattr(result, name) == getattr(base, name), (
            f"{name} diverged between 1 and 4 partitions"
        )

    cores = _usable_cores()
    speedup = base.wall_s / result.wall_s
    mode = "processes" if result.used_processes else "in-process fallback"
    print(
        f"\n4 partitions ({mode}, {cores} usable cores): "
        f"{result.wall_s:.2f}s vs single loop {base.wall_s:.2f}s "
        f"-> speedup {speedup:.2f}x"
    )
    if result.used_processes and cores >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x on {cores} cores, got {speedup:.2f}x"
        )
    else:
        assert speedup >= 1.0 / MAX_SLOWDOWN, (
            f"partitioned run collapsed: {speedup:.2f}x "
            f"(cores={cores}, mode={mode})"
        )
