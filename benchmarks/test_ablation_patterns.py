"""Ablation — the preactive pattern analyzer's historical pruning.

"These repeated patterns are leveraged to ensure that the scaler does not
keep changing resource allocations too frequently." (paper section V-C).

Scenario: a strongly diurnal job. Without the 14-day history check, the
scaler downsizes the job during the nightly trough and has to scale it
back every morning — flapping allocations and risking morning SLO
violations. With the history check, the trough-time downscale is vetoed
(the same clock window in prior days saw peak traffic the reduced count
could not sustain), so allocations stay stable.
"""

from repro import JobSpec
from repro.analysis import Table
from repro.scaler import AutoScalerConfig
from repro.scaler.plan_generator import Action
from repro.workloads import DiurnalPattern, TrafficDriver

from benchmarks.simharness import build_platform

DAY = 86400.0


def run_scaler(pattern_history: bool):
    platform = build_platform(
        num_hosts=4, seed=88, num_shards=64, step_interval=30.0,
        stats_interval=300.0,
        with_scaler=True,
        scaler_config=AutoScalerConfig(
            interval=600.0,
            downscale_after=4 * 3600.0,
            pattern_history=pattern_history,
            # The validation window must reach from the nightly trough to
            # the daily peak, else history has nothing to veto with.
            pattern_validate_hours=12.0,
        ),
    )
    # Strong diurnal: 8 MB/s mean, 4.8-11.2 swing; provisioned for peak.
    pattern = DiurnalPattern(
        8.0, amplitude=0.4, rng=platform.engine.rng.fork("wl"),
    )
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=7,
                rate_per_thread_mb=2.0, task_count_limit=32),
        partitions=64,
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("cat", pattern)
    driver.start()

    platform.run_for(days=3)

    resize_actions = [
        action for action in platform.scaler.actions
        if action.action in (Action.DOWNSCALE, Action.UPSCALE_HORIZONTAL,
                             Action.UPSCALE_VERTICAL)
    ]
    lag_series = platform.metrics.series("job", "time_lagged")
    violations = sum(
        1 for __, value in lag_series.all_points() if value > 90.0
    )
    return len(resize_actions), violations


def test_pattern_history_prevents_flapping(experiment):
    def run():
        return run_scaler(pattern_history=True), run_scaler(
            pattern_history=False
        )

    with_history, without_history = experiment(run)

    table = Table(["configuration", "resize actions (3 days)",
                   "SLO-violation samples"])
    table.add_row("preactive (14-day history)", *with_history)
    table.add_row("no history (estimate only)", *without_history)
    print("\n" + table.render())

    history_actions, history_violations = with_history
    naive_actions, naive_violations = without_history

    assert history_actions < naive_actions, (
        "historical pruning must reduce allocation churn"
    )
    assert history_violations <= naive_violations, (
        "stability must not come at the cost of more violations"
    )
