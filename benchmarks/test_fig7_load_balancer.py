"""Fig. 7 — the load balancer stabilizes per-host utilization.

Timeline (as in the paper's test-cluster experiment, section VI-A):
  hour  0–6  : balancer enabled, traffic with occasional spikes;
  hour  6    : balancer disabled → spiky per-host CPU persists;
  hour 14    : fail-over triggered on a few machines → imbalance across
               the cluster (recovered hosts sit idle, survivors run hot);
  hour 20    : balancer re-enabled → utilization converges quickly.

Reported series: p5/p50/p95 of per-host CPU utilization every 30 min.
Shape assertions: the p95–p5 spread grows after the forced fail-over and
shrinks back once the balancer returns.
"""

from repro.analysis import Table
from repro.workloads import ScubaFleet, SpikeSchedule, TrafficDriver

from benchmarks.simharness import build_platform, host_cpu_percentiles

HOURS = 24


def run_experiment_fn():
    platform = build_platform(
        num_hosts=8, seed=77, containers_per_host=2, num_shards=128,
        step_interval=60.0, stats_interval=300.0, heartbeat_interval=10.0,
    )
    fleet = ScubaFleet(num_jobs=300, seed=77)
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    rng = platform.engine.rng.fork("fig7")
    for profile, spec in zip(fleet.profiles, fleet.job_specs()):
        platform.provision(spec, partitions=8)
        schedule = SpikeSchedule(lambda t, r=profile.base_rate_mb: r)
        # Random 20-minute 3x input spikes while the balancer is off
        # (hours 6–14) — the paper's "occasional spiky CPU utilization".
        if rng.random() < 0.3:
            start = rng.uniform(6.0, 13.5) * 3600.0
            schedule.add(start, start + 1200.0, factor=3.0)
        driver.add_source(spec.input_category, schedule)
    driver.start()

    samples = []  # (hour, p5, p50, p95)
    engine = platform.engine

    def disable_balancer():
        platform.shard_manager.balancing_enabled = False

    def trigger_failover():
        # "we then manually triggered the failover on a few machines".
        for host_id in ("host-0", "host-1", "host-2"):
            platform.cluster.fail_host(host_id)

    def recover_hosts():
        for host_id in ("host-0", "host-1", "host-2"):
            platform.recover_host(host_id)

    def enable_balancer():
        platform.shard_manager.balancing_enabled = True

    engine.call_at(6.0 * 3600.0, disable_balancer)
    engine.call_at(14.0 * 3600.0, trigger_failover)
    engine.call_at(14.0 * 3600.0 + 300.0, recover_hosts)
    engine.call_at(20.0 * 3600.0, enable_balancer)

    for __ in range(HOURS * 2):
        platform.run_for(minutes=30)
        p5, p50, p95 = host_cpu_percentiles(platform)
        samples.append((platform.now / 3600.0, p5, p50, p95))
    return samples


def spread(sample):
    __, p5, __, p95 = sample
    return p95 - p5


def test_fig7_load_balancer(experiment):
    samples = experiment(run_experiment_fn)

    table = Table(["hour", "p5", "p50", "p95"])
    for hour, p5, p50, p95 in samples:
        table.add_row(f"{hour:.1f}", p5, p50, p95)
    print("\n" + table.render())

    # Baseline starts after the warm-up (initial scheduling + first load
    # reports + first rebalance all settle within ~2 hours).
    baseline = [s for s in samples if 3.0 <= s[0] <= 6.0]
    imbalanced = [s for s in samples if 14.5 <= s[0] <= 20.0]
    recovered = [s for s in samples if s[0] >= 22.0]

    baseline_spread = max(spread(s) for s in baseline)
    imbalanced_spread = max(spread(s) for s in imbalanced)
    recovered_spread = max(spread(s) for s in recovered)

    print(f"\nmax p95-p5 spread  baseline(LB on) : {baseline_spread:.3f}")
    print(f"max p95-p5 spread  failover (LB off): {imbalanced_spread:.3f}")
    print(f"max p95-p5 spread  recovered(LB on) : {recovered_spread:.3f}")

    assert imbalanced_spread > baseline_spread * 1.5, (
        "forced fail-over without the balancer must visibly imbalance hosts"
    )
    assert recovered_spread < imbalanced_spread * 0.7, (
        "re-enabling the balancer must converge utilization back"
    )
