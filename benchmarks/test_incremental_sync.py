"""Incremental control-plane round cost vs. full fleet scans.

The dirty-set State Syncer's payoff: on a quiescent fleet of tens of
thousands of jobs, an incremental round drains an empty change feed and
touches nothing, while a full scan re-reads and re-diffs every job. The
acceptance bar from the issue: the quiescent incremental round must be at
least 5× cheaper. In practice it is orders of magnitude cheaper — the
round cost is O(dirty set), not O(fleet).

A second benchmark measures the targeted case: one job changes out of
50 000, and the incremental round syncs exactly that one.
"""

import time

from repro.jobs import ConfigLevel, JobService, JobSpec, JobStore, StateSyncer
from repro.testing import NullActuator

NUM_JOBS = 50_000
#: The acceptance threshold from the issue ("at least 5x faster"). The
#: real gap is far larger; 5x keeps the assertion robust on noisy CI.
MIN_SPEEDUP = 5.0


def build_fleet(num_jobs=NUM_JOBS, **syncer_kwargs):
    store = JobStore()
    service = JobService(store)
    for index in range(num_jobs):
        service.provision(
            JobSpec(job_id=f"job-{index:06d}", input_category="cat")
        )
    syncer = StateSyncer(store, NullActuator(), **syncer_kwargs)
    syncer.sync_once()  # initial complex syncs; converges the fleet
    return store, service, syncer


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def test_quiescent_incremental_round_5x_faster_than_full_scan(benchmark):
    store, service, syncer = build_fleet()

    # Reference cost: a forced full scan over the converged fleet.
    syncer_full = StateSyncer(store, NullActuator(), incremental=False)
    full_elapsed, full_report = timed(syncer_full.sync_once)
    assert full_report.full_scan
    assert full_report.examined == NUM_JOBS
    assert full_report.total_synced == 0

    # Measured cost: the incremental round over the same quiescent fleet.
    report = benchmark.pedantic(syncer.sync_once, rounds=1, iterations=1)
    incremental_elapsed = benchmark.stats.stats.max
    assert not report.full_scan
    assert report.examined == 0
    assert report.total_synced == 0

    speedup = full_elapsed / max(incremental_elapsed, 1e-9)
    print(
        f"\nquiescent round over {NUM_JOBS:,} jobs: "
        f"full scan {full_elapsed * 1e3:.1f}ms, "
        f"incremental {incremental_elapsed * 1e3:.3f}ms "
        f"({speedup:,.0f}x)"
    )
    assert speedup >= MIN_SPEEDUP


def test_single_change_incremental_round(benchmark):
    store, service, syncer = build_fleet()
    syncer.sync_once()  # quiescent incremental round; feed now empty
    service.patch(
        "job-025000", ConfigLevel.PROVISIONER,
        {"package": {"name": "stream_engine", "version": "2.0"}},
    )

    report = benchmark.pedantic(syncer.sync_once, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.max
    print(
        f"\n1-of-{NUM_JOBS:,} change synced in {elapsed * 1e3:.3f}ms "
        f"(examined {report.examined} job)"
    )
    assert report.examined == 1
    assert report.simple_synced == ["job-025000"]


def test_incremental_matches_full_scan_outcome():
    """Equivalence smoke check at benchmark scale (the exhaustive proof is
    the property suite in tests/jobs/test_incremental_equivalence.py)."""
    store_a, service_a, syncer_a = build_fleet(num_jobs=2_000)
    store_b, service_b, syncer_b = build_fleet(
        num_jobs=2_000, incremental=False
    )
    for service in (service_a, service_b):
        for index in range(0, 2_000, 7):
            service.patch(
                f"job-{index:06d}", ConfigLevel.PROVISIONER,
                {"package": {"name": "stream_engine", "version": "3.1"}},
            )
    report_a = syncer_a.sync_once()
    report_b = syncer_b.sync_once()
    assert report_a.simple_synced == report_b.simple_synced
    assert store_a.dump_snapshot() == store_b.dump_snapshot()
