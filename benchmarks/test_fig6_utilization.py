"""Fig. 6 — CPU and memory utilization stay uniform across hosts.

The paper measures one production cluster (>600 hosts) for a week: p5/p50/
p95 of per-host CPU (6a) and memory (6b) utilization nearly coincide, and
the number of tasks per host stays in a narrow range (6c, ~150–230), with
deliberate headroom kept free for spikes.

Scaled here to 16 hosts / ~750 tasks over 3 simulated days; the shape under
test is the *closeness* of the percentiles and the boundedness of the
tasks-per-host spread, not the absolute host count.
"""

from repro.analysis import Table
from repro.metrics.aggregate import percentile
from repro.workloads import ScubaFleet

from benchmarks.simharness import (
    build_platform,
    host_cpu_percentiles,
    provision_scuba_fleet,
)

DAYS = 3


def run_experiment_fn():
    platform = build_platform(
        num_hosts=16, seed=6, containers_per_host=2, num_shards=512,
        step_interval=60.0, stats_interval=600.0, heartbeat_interval=30.0,
    )
    fleet = ScubaFleet(num_jobs=600, seed=6)
    provision_scuba_fleet(platform, fleet, partitions_per_category=4)

    platform.run_for(hours=2)  # settle: schedule + first load reports

    cpu_samples = []   # (day, p5, p50, p95)
    mem_samples = []
    for sample_index in range(DAYS * 6):  # every 4 hours
        platform.run_for(hours=4)
        day = platform.now / 86400.0
        cpu_samples.append((day,) + host_cpu_percentiles(platform))
        usage = platform.host_utilization()
        mems = [entry["mem_util"] for entry in usage.values()]
        mem_samples.append(
            (day, percentile(mems, 5), percentile(mems, 50),
             percentile(mems, 95))
        )
    usage = platform.host_utilization()
    tasks_per_host = [entry["tasks"] for entry in usage.values()]
    return cpu_samples, mem_samples, tasks_per_host


def test_fig6_cluster_utilization(experiment):
    cpu_samples, mem_samples, tasks_per_host = experiment(run_experiment_fn)

    table = Table(["day", "cpu p5", "cpu p50", "cpu p95",
                   "mem p5", "mem p50", "mem p95"])
    for cpu, mem in zip(cpu_samples, mem_samples):
        table.add_row(f"{cpu[0]:.2f}", cpu[1], cpu[2], cpu[3],
                      mem[1], mem[2], mem[3])
    print("\n" + table.render())
    print(f"\ntasks per host: min={min(tasks_per_host):.0f} "
          f"max={max(tasks_per_host):.0f} (paper: ~150-230 on big hosts)")

    # Fig 6a/6b: percentiles nearly coincide at every sample.
    for day, p5, p50, p95 in cpu_samples:
        assert p95 - p5 < 0.10, f"cpu spread too wide on day {day:.2f}"
    for day, p5, p50, p95 in mem_samples:
        assert p95 - p5 < 0.10, f"mem spread too wide on day {day:.2f}"

    # Headroom: hosts are never run hot (the paper deliberately keeps
    # room to absorb simultaneous spikes).
    assert max(p95 for __, __, __, p95 in cpu_samples) < 0.85

    # Fig 6c: tasks per host inside a modest range (paper ~1.5x).
    assert max(tasks_per_host) / max(1.0, min(tasks_per_host)) < 2.0
