"""Algorithm 2 ablation — reactive vs proactive scaling convergence.

The paper's motivation for the proactive redesign (section V-A): the
reactive scaler "sometimes took too long for a single job to converge to a
stable state due to lack of accurate estimation on required resources".
This bench runs the same traffic step (capacity suddenly 8x short) under
both generations and reports rounds-to-converge and total task-restarts
(churn). It also times one decision round over a large fleet.
"""

from repro import JobSpec, SLO
from repro.analysis import Table
from repro.scaler import (
    AutoScalerConfig,
    ReactiveAutoScaler,
    ReactiveConfig,
    ResourceEstimator,
    SymptomDetector,
)
from repro.workloads import TrafficDriver

from benchmarks.simharness import build_platform

RATE_MB = 30.0  # demand: 15 single-thread tasks at P=2


def run_convergence(reactive: bool):
    platform = build_platform(
        num_hosts=6, seed=55, num_shards=64, step_interval=30.0,
        with_scaler=not reactive,
        scaler_config=None if reactive else AutoScalerConfig(interval=120.0),
    )
    if reactive:
        platform.scaler = ReactiveAutoScaler(
            platform.engine, platform.job_service, platform.metrics,
            platform.scribe, config=ReactiveConfig(interval=120.0),
        )
        platform.scaler.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2,
                rate_per_thread_mb=2.0, task_count_limit=64,
                slo=SLO(max_lag_seconds=90.0, recovery_seconds=1800.0)),
        partitions=64,
    )
    platform.run_for(minutes=4)
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    driver.add_source("cat", lambda t: RATE_MB)
    driver.start()

    start = platform.now
    converged_at = None
    while platform.now - start < 4 * 3600.0:
        platform.run_for(minutes=10)
        config = platform.job_service.expected_config("job")
        capacity = config["task_count"] * 2.0 * config.get(
            "threads_per_task", 1
        )
        lag = platform.metrics.latest("job", "time_lagged") or 0.0
        if capacity >= RATE_MB and lag < 90.0 and converged_at is None:
            converged_at = platform.now - start
    config = platform.job_service.expected_config("job")
    thread_units = config["task_count"] * config.get("threads_per_task", 1)
    num_actions = len(platform.scaler.actions)
    return num_actions, thread_units, converged_at


def test_reactive_vs_proactive_convergence(experiment):
    def run():
        return run_convergence(reactive=True), run_convergence(reactive=False)

    reactive_result, proactive_result = experiment(run)
    ideal_units = RATE_MB / 2.0  # 15 busy threads cover the demand

    table = Table(["generation", "actions", "final thread-units",
                   "overshoot", "converged (min)"])
    for name, (actions, units, when) in (
        ("reactive (Algorithm 2)", reactive_result),
        ("proactive (estimates)", proactive_result),
    ):
        table.add_row(
            name, actions, units, f"{units / ideal_units:.1f}x",
            "never" if when is None else f"{when / 60:.0f}",
        )
    print("\n" + table.render())

    __, reactive_units, reactive_time = reactive_result
    __, pro_units, pro_time = proactive_result
    assert pro_time is not None, "the proactive scaler must converge"
    assert reactive_time is not None, "doubling eventually converges too"
    # The paper's motivating flaw: without estimates, fixed-factor growth
    # badly overshoots the needed capacity (wasted resources / churn),
    # while the estimate-driven scaler lands close to the ideal.
    assert pro_units / ideal_units < 1.6, "proactive lands near the ideal"
    assert reactive_units / ideal_units > pro_units / ideal_units, (
        "reactive overshoots more than proactive"
    )


def test_decision_round_throughput(benchmark):
    """One scaler evaluation round over 10 K job snapshots."""
    from tests.scaler.helpers import make_snapshot

    detector = SymptomDetector()
    estimator = ResourceEstimator()
    snapshots = [
        make_snapshot(job_id=f"job-{i}", input_rate_mb=float(i % 17))
        for i in range(10_000)
    ]

    def one_round():
        for snapshot in snapshots:
            symptoms = detector.detect(snapshot)
            estimator.estimate(snapshot, rate_per_thread=2.0)
            assert symptoms is not None

    benchmark.pedantic(one_round, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.max
    print(f"\n10,000 job evaluations in {elapsed:.2f}s")
    assert elapsed < 10.0
