"""Fig. 5 — CPU and memory usage CDFs of Scuba Tailer tasks.

Paper observations regenerated here:
  (a) over 80 % of tasks consume less than one CPU thread; a small
      percentage need over four;
  (b) every task consumes at least ~400 MB; over 99 % under 2 GB.
"""

from repro.analysis import format_cdf
from repro.metrics.aggregate import fraction_below, percentile
from repro.workloads import ScubaFleet

FLEET_SIZE = 20_000  # ~120K tasks in production; scaled fleet, same shape


def test_fig5_footprint_cdfs(experiment):
    def build():
        fleet = ScubaFleet(FLEET_SIZE, seed=42)
        return fleet.task_footprints()

    cpus, memories = experiment(build)

    print("\n" + format_cdf("Fig 5a: task CPU usage (cores)", cpus))
    print("\n" + format_cdf("Fig 5b: task memory (GB)", memories))

    under_one_core = fraction_below(cpus, 1.0)
    over_four = 1.0 - fraction_below(cpus, 4.0)
    min_memory = min(memories)
    under_two_gb = fraction_below(memories, 2.0)

    print(f"\ntasks < 1 core : {under_one_core:.1%}  (paper: >80%)")
    print(f"tasks > 4 cores: {over_four:.2%}   (paper: small percentage)")
    print(f"min memory     : {min_memory:.2f} GB (paper: ~0.4 GB)")
    print(f"tasks < 2 GB   : {under_two_gb:.2%}  (paper: >99%)")

    assert under_one_core > 0.80
    assert 0.0 < over_four < 0.05
    assert 0.39 <= min_memory <= 0.45
    assert under_two_gb > 0.99
    # The paper also notes p50 memory well under 1 GB.
    assert percentile(memories, 50) < 1.0
