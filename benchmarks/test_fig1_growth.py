"""Fig. 1 — growth of the Scuba Tailer service over one year.

The paper shows input traffic roughly doubling over 12 months with the
managed task count growing alongside (sub-linearly, since the auto scaler
right-sizes jobs rather than scaling them with raw traffic).

The year is compressed: each "month" is simulated as a one-hour steady
window with traffic scaled by the growth trend, and the Auto Scaler's
steady-state sizing gives the task count for that month.
"""

import math

from repro.analysis import Table
from repro.scaler import ResourceEstimator
from repro.scaler.snapshot import JobSnapshot
from repro.types import Priority
from repro.workloads import ScubaFleet

MONTHS = 12
FLEET_SIZE = 2_000


def month_factor(month: int) -> float:
    """Traffic multiplier: doubles over 12 months (Fig. 1's shape)."""
    return 2.0 ** (month / 12.0)


def test_fig1_yearly_growth(experiment):
    def run():
        fleet = ScubaFleet(FLEET_SIZE, seed=1)
        estimator = ResourceEstimator()
        rows = []
        for month in range(MONTHS + 1):
            factor = month_factor(month)
            traffic = fleet.total_rate_mb() * factor
            tasks = 0
            for profile in fleet.profiles:
                snapshot = JobSnapshot(
                    job_id=profile.job_id, time=0.0,
                    task_count=profile.task_count,
                    threads=profile.threads_per_task,
                    task_count_limit=1024,
                    memory_per_task_gb=1.0, cpu_per_task=1.0,
                    stateful=False, state_key_cardinality=0,
                    priority=Priority.NORMAL,
                    slo_lag_seconds=90.0, slo_recovery_seconds=3600.0,
                    input_rate_mb=profile.base_rate_mb * factor,
                    processing_rate_mb=profile.base_rate_mb * factor,
                    backlog_mb=0.0, time_lagged=0.0, task_rate_stdev=0.0,
                    oom_recently=False, running_tasks=profile.task_count,
                )
                estimate = estimator.estimate(snapshot, rate_per_thread=2.0)
                tasks += estimate.steady_task_count
            rows.append((month, traffic, tasks))
        return rows

    rows = experiment(run)
    table = Table(["month", "traffic (MB/s)", "task count"])
    for month, traffic, tasks in rows:
        table.add_row(month, traffic, tasks)
    print("\n" + table.render())

    first_traffic, first_tasks = rows[0][1], rows[0][2]
    last_traffic, last_tasks = rows[-1][1], rows[-1][2]
    print(f"\ntraffic growth: {last_traffic / first_traffic:.2f}x "
          f"(paper: ~2x over a year)")
    print(f"task growth   : {last_tasks / first_tasks:.2f}x")

    assert last_traffic / first_traffic == math.pow(2.0, 1.0)
    assert last_tasks > first_tasks, "task count grows with traffic"
    assert last_tasks / first_tasks < last_traffic / first_traffic * 1.2, (
        "task growth tracks traffic, not faster"
    )
    # Monotone growth month over month, like the figure.
    traffics = [row[1] for row in rows]
    assert traffics == sorted(traffics)
