"""Fig. 9 — cluster-level scaling during a storm (disaster drill).

The paper's storm redirects a datacenter's traffic: the receiving cluster
sees ~16 % more traffic at peak, the Auto Scaler raises the total task
count by only ~8 % (vertical scaling absorbs part of the surge first), and
~99.9 % of jobs stay within their SLOs; after the storm the task count
returns to normal.

Scaled here: a 40-job cluster over ~40 hours with a diurnal base load and
a storm through the second day's peak. Half the jobs still have thread
headroom (vertical absorbs their surge); the other half run at the thread
limit (their surge forces horizontal scaling) — which is what produces a
task-count increase well below the traffic increase.
"""

from repro import JobSpec
from repro.analysis import Table
from repro.scaler import AutoScalerConfig
from repro.workloads import DiurnalPattern, StormSchedule, TrafficDriver

from benchmarks.simharness import build_platform, total_expected_tasks

NUM_JOBS = 40
DAY = 86400.0
STORM_START, STORM_END = 1.25 * DAY, 1.75 * DAY
HORIZON_HOURS = 44


def run_experiment_fn():
    platform = build_platform(
        num_hosts=10, seed=9, containers_per_host=4, num_shards=256,
        stats_interval=300.0,
        with_scaler=True,
        scaler_config=AutoScalerConfig(interval=300.0, downscale_after=7200.0),
    )
    driver = TrafficDriver(platform.engine, platform.scribe, tick=60.0)
    for index in range(NUM_JOBS):
        # Base rates spread from 5 to 10 MB/s. After the scaler's initial
        # vertical pass every job caps at 3 tasks x 2 threads x 2 MB/s =
        # 12 MB/s, so at the normal diurnal peak (1.25x) jobs run at
        # 52-104 % of capacity; the storm's extra 16 % pushes only the
        # busiest fraction over the line — those scale horizontally,
        # which is exactly Fig. 9's "task growth well below traffic
        # growth" shape.
        base = 5.0 + 5.0 * index / NUM_JOBS
        pattern = DiurnalPattern(
            base, amplitude=0.25, rng=platform.engine.rng.fork(f"j{index}")
        )
        storm = StormSchedule(pattern, STORM_START, STORM_END, surge=0.16)
        platform.provision(
            JobSpec(job_id=f"job-{index:02d}", input_category=f"cat-{index:02d}",
                    task_count=3, threads_per_task=1,
                    rate_per_thread_mb=2.0, task_count_limit=64),
            partitions=64,
        )
        driver.add_source(f"cat-{index:02d}", storm)
    driver.start()

    samples = []  # (hour, traffic, tasks, in_storm)
    while platform.now < HORIZON_HOURS * 3600.0:
        platform.run_for(hours=2)
        traffic = sum(
            platform.metrics.latest(f"job-{i:02d}", "input_rate_mb") or 0.0
            for i in range(NUM_JOBS)
        )
        tasks = total_expected_tasks(platform)
        in_storm = STORM_START <= platform.now < STORM_END
        samples.append((platform.now / 3600.0, traffic, tasks, in_storm))

    in_slo = sum(
        1 for i in range(NUM_JOBS)
        if (platform.metrics.latest(f"job-{i:02d}", "time_lagged") or 0.0)
        < 90.0
    )
    return samples, in_slo


def test_fig9_storm(experiment):
    samples, in_slo = experiment(run_experiment_fn)

    table = Table(["hour", "traffic MB/s", "tasks", "storm"])
    for hour, traffic, tasks, in_storm in samples:
        table.add_row(f"{hour:.0f}", traffic, tasks, "*" if in_storm else "")
    print("\n" + table.render())

    normal_peak = max(t for h, t, n, s in samples if not s)
    storm_peak = max(t for h, t, n, s in samples if s)
    pre_storm_tasks = [n for h, t, n, s in samples if not s and h <= 30][-1]
    storm_tasks = max(n for h, t, n, s in samples if s)
    post_storm_tasks = samples[-1][2]

    traffic_increase = storm_peak / normal_peak - 1
    task_increase = storm_tasks / pre_storm_tasks - 1
    print(f"\ntraffic increase at peak : {traffic_increase:.1%} (paper ~16%)")
    print(f"task count increase      : {task_increase:.1%} (paper ~8%)")
    print(f"jobs within SLO          : {in_slo}/{NUM_JOBS} (paper ~99.9%)")
    print(f"tasks after storm        : {post_storm_tasks} "
          f"(pre-storm {pre_storm_tasks})")

    assert 0.10 < traffic_increase < 0.22, "the storm surge is ~16%"
    assert 0.0 < task_increase < traffic_increase, (
        "task growth stays below traffic growth (vertical-first scaling)"
    )
    assert in_slo >= NUM_JOBS - 1, "at most one job out of SLO"
    assert post_storm_tasks <= storm_tasks, (
        "task count returns toward normal after the storm"
    )
