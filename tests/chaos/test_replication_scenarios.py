"""Leader-failover proof suite: the two replication chaos scenarios.

The acceptance bar from the issue: ``leader-crash-mid-plan`` completes
with zero lost or duplicated plan actions, and failover MTTR strictly
below the 40-second single-instance reboot clock. Golden MTTR and
timeline-shape assertions freeze the recovery trajectory per seed so a
regression in election or catch-up timing cannot land silently.
"""

import json

import pytest

from repro.chaos import build_platform, get_scenario, run_scenario

#: The paper's single-instance recovery budget the replicated control
#: plane must beat: a Job Store reboot costs ~40 s of write downtime.
REBOOT_CLOCK_SECONDS = 40.0


@pytest.fixture(scope="module")
def leader_crash_result():
    return run_scenario("leader-crash-mid-plan", seed=0)


@pytest.fixture(scope="module")
def follower_lag_result():
    return run_scenario("follower-lag-snapshot-catchup", seed=0)


# ----------------------------------------------------------------------
# leader-crash-mid-plan
# ----------------------------------------------------------------------
def test_leader_crash_converges_under_reboot_clock(leader_crash_result):
    result = leader_crash_result
    assert result.converged, (
        result.final_report and result.final_report.violations()
    )
    assert result.max_mttr is not None
    assert result.max_mttr < REBOOT_CLOCK_SECONDS


def test_leader_crash_golden_mttr(leader_crash_result):
    # Golden per-seed recovery: fault clears at t=478 s, the rejoined
    # replica replays the full log on the next catch-up tick, and the
    # first 5 s convergence sample closes the clock.
    assert leader_crash_result.mttr == {"replica-crash:leader@58s": 2.0}


def test_leader_crash_golden_timeline(leader_crash_result):
    timeline = leader_crash_result.timeline_text
    # The failover story, in order, with golden timestamps (seed 0):
    # patch -> crash -> lease lapses -> election -> the pending plan
    # runs on the new leader -> old leader rejoins via snapshot.
    for needle in (
        "355.0",  "oncall-patch:chaos/job-0@55s",
        "358.0",  "leader-lost",
        "369.0",  "leader-elected",
        "390.0",  "sync-plan",
        "478.0",  "replica-rejoin",
    ):
        assert needle in timeline, f"missing {needle!r}"
    # Election happened once, term 2, after the 10 s lease lapsed.
    assert "replica-1 term 2" in timeline
    # The log was never trimmed, so the rejoined replica rebuilt by full
    # replay — no snapshot transfer on this path (contrast with the
    # follower-lag scenario, where the trimmed horizon forces one).
    assert "snapshot-install" not in timeline


def test_leader_crash_invariants_no_dup_no_orphan_no_missing(
    leader_crash_result,
):
    report = leader_crash_result.final_report
    assert report is not None
    assert report.duplicates == []
    assert report.orphans == []
    assert report.missing == []
    assert report.lagging_replicas == []
    assert not report.leaderless


def test_leader_crash_plan_applies_exactly_once():
    """Zero lost, zero duplicated plan actions across the failover.

    The oncall patch (task_count=4) lands 3 s before the leader dies;
    the plan must execute exactly once — on the new leader — so the
    command log contains exactly one running-config commit carrying the
    patched task count, and exactly one CAS write of the patch itself.
    """
    platform = build_platform(seed=0, replication=True)
    platform.run_for(seconds=300.0)
    platform.chaos.schedule(get_scenario("leader-crash-mid-plan"))
    platform.run_for(seconds=960.0)

    group = platform.replication
    commands = [
        json.loads(payload) for __, payload in group.log.read_from(0)
    ]
    patched_commits = [
        c for c in commands
        if c["op"] == "commit_running"
        and c["args"]["job_id"] == "chaos/job-0"
        and c["args"]["config"].get("task_count") == 4
    ]
    assert len(patched_commits) == 1
    oncall_writes = [
        c for c in commands
        if c["op"] == "write_expected"
        and c["args"]["job_id"] == "chaos/job-0"
        and c["args"]["level"] == "ONCALL"
    ]
    assert len(oncall_writes) == 1
    # And the cluster actually runs the patched plan, exactly once each.
    assert platform.tasks_of_job("chaos/job-0") == [
        "chaos/job-0:0", "chaos/job-0:1", "chaos/job-0:2", "chaos/job-0:3",
    ]


def test_failover_beats_reboot_clock_end_to_end():
    """The leaderless window itself (crash -> promotion) is the write
    outage replication exists to shrink; it must beat the 40 s reboot."""
    platform = build_platform(seed=0, replication=True)
    platform.run_for(seconds=300.0)
    platform.chaos.schedule(get_scenario("leader-crash-mid-plan"))
    platform.run_for(seconds=960.0)
    group = platform.replication
    assert len(group.failovers) == 1
    __, leaderless = group.failovers[0]
    assert 0.0 < leaderless < REBOOT_CLOCK_SECONDS
    # Lease timeout (10 s) + at most one heartbeat tick (3 s).
    assert leaderless <= group.lease_timeout + group.heartbeat_interval


# ----------------------------------------------------------------------
# follower-lag-snapshot-catchup
# ----------------------------------------------------------------------
def test_follower_lag_converges(follower_lag_result):
    result = follower_lag_result
    assert result.converged, (
        result.final_report and result.final_report.violations()
    )
    assert result.max_mttr is not None
    assert result.max_mttr < REBOOT_CLOCK_SECONDS


def test_follower_lag_golden_mttr(follower_lag_result):
    # Golden per-seed: the rejoined follower snapshots inside the same
    # catch-up tick the clear lands on, so the clock closes immediately.
    assert follower_lag_result.mttr == {"replica-crash:replica-2@30s": 0.0}


def test_follower_lag_golden_timeline(follower_lag_result):
    timeline = follower_lag_result.timeline_text
    for needle in (
        "330.0",  "replica-down",
        "500.0",  "repl-log-trim@200s",
        "630.0",  "replica-rejoin",
        "snapshot-install",
    ):
        assert needle in timeline, f"missing {needle!r}"
    # The leader never moved: no election in this scenario.
    assert "leader-elected" not in timeline
    assert "leader-lost" not in timeline


def test_follower_lag_rejoin_needs_snapshot_not_log():
    """The trim pushed the horizon past the downed follower, so catch-up
    must go through snapshot transfer — and end byte-identical."""
    platform = build_platform(seed=0, replication=True)
    platform.run_for(seconds=300.0)
    platform.chaos.schedule(get_scenario("follower-lag-snapshot-catchup"))
    platform.run_for(seconds=960.0)
    group = platform.replication
    installs = [e for e in group.events if e.kind == "snapshot-install"]
    assert len(installs) == 1
    assert "replica-2" in installs[0].detail
    assert group.in_sync
    assert group.replica_snapshot("replica-2") == (
        platform.job_store.dump_snapshot()
    )


def test_follower_lag_invariants(follower_lag_result):
    report = follower_lag_result.final_report
    assert report is not None
    assert report.duplicates == []
    assert report.orphans == []
    assert report.missing == []
    assert report.lagging_replicas == []
    assert not report.leaderless
