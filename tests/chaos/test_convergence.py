"""Unit tests for the convergence checker's invariants."""

from repro import JobSpec, PlatformConfig, Turbine
from repro.chaos import ConvergenceChecker


def small_platform(seed=0):
    platform = Turbine.create(
        num_hosts=2, seed=seed,
        config=PlatformConfig(num_shards=8, containers_per_host=2),
    )
    platform.start()
    platform.provision(
        JobSpec(job_id="job", input_category="cat", task_count=2)
    )
    platform.run_for(minutes=5)
    return platform


def test_steady_state_converges():
    platform = small_platform()
    report = ConvergenceChecker(platform).check()
    assert report.converged, report.violations()
    assert report.safety_ok
    assert report.violations() == {}


def test_store_outage_blocks_convergence():
    platform = small_platform()
    platform.job_store.fail()
    report = ConvergenceChecker(platform).check()
    assert not report.converged
    assert not report.store_visible
    assert "store_visible" in report.violations()
    # Safety is still checkable without the store.
    assert report.safety_ok
    platform.job_store.recover()
    assert ConvergenceChecker(platform).check().converged


def test_unapplied_patch_is_divergence():
    from repro.jobs.configs import ConfigLevel

    platform = small_platform()
    platform.job_service.patch("job", ConfigLevel.ONCALL, {"task_count": 4})
    report = ConvergenceChecker(platform).check()
    assert report.diverged == ["job"]
    assert not report.converged
    platform.run_for(minutes=3)   # syncer applies it; managers start tasks
    assert ConvergenceChecker(platform).check().converged


def test_dead_container_yields_missing_and_unplaced():
    platform = small_platform()
    platform.cluster.fail_host("host-0")
    report = ConvergenceChecker(platform).check()
    # Shards still assigned to the dead containers, and (if any of the
    # job's tasks lived there) specs without a running task.
    assert report.unplaced_shards
    assert not report.converged
    platform.run_for(minutes=5)   # failover + reconcile
    assert ConvergenceChecker(platform).check().converged


def test_assert_safety_raises_on_duplicate():
    platform = small_platform()
    # Copy one running task's entry into a second manager's table.
    owner = next(
        manager for manager in platform.task_managers.values()
        if manager.tasks
    )
    other = next(
        manager for manager in platform.task_managers.values()
        if manager is not owner
    )
    task_id, task = next(iter(owner.tasks.items()))
    other.tasks[task_id] = task
    checker = ConvergenceChecker(platform)
    report = checker.check()
    assert task_id in report.duplicates
    try:
        checker.assert_safety()
    except AssertionError as error:
        assert task_id in str(error)
    else:
        raise AssertionError("assert_safety should have raised")
